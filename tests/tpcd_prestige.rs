//! The §2.1 TPC-D motivation: "if a query matches two parts … the one
//! with more orders would get a higher prestige."

use banks_core::Banks;
use banks_datagen::tpcd::{generate, TpcdConfig};
use banks_storage::Value;

#[test]
fn widget_query_ranks_popular_part_first() {
    for seed in [1u64, 2, 9] {
        let dataset = generate(TpcdConfig::tiny(seed)).unwrap();
        let banks = Banks::new(dataset.db.clone()).unwrap();
        let answers = banks.search("widget").unwrap();
        assert!(answers.len() >= 2, "seed {seed}: both widgets match");
        let node_of = |key: &str| {
            let rid = dataset
                .db
                .relation("Part")
                .unwrap()
                .lookup_pk(&[Value::text(key)])
                .unwrap();
            banks.tuple_graph().node(rid).unwrap()
        };
        let popular = node_of(&dataset.planted.popular_widget);
        let obscure = node_of(&dataset.planted.obscure_widget);
        let rank = |n| answers.iter().position(|a| a.tree.root == n);
        let (rp, ro) = (rank(popular), rank(obscure));
        assert!(
            rp.is_some() && ro.is_some() && rp < ro,
            "seed {seed}: popular at {rp:?}, obscure at {ro:?}"
        );
        assert_eq!(rp, Some(0), "seed {seed}: popular widget on top");
    }
}

#[test]
fn multi_keyword_query_connects_part_to_supplier() {
    let dataset = generate(TpcdConfig::tiny(1)).unwrap();
    let banks = Banks::new(dataset.db.clone()).unwrap();
    // Connect the popular widget with a customer through orders/lineitems.
    let answers = banks.search("widget anodized").unwrap();
    assert!(!answers.is_empty());
    // The top answer should be the popular widget itself (it contains both
    // tokens in its name).
    let rid = banks.tuple_graph().rid(answers[0].tree.root);
    assert_eq!(dataset.db.table(rid.relation).schema().name, "Part");
    assert!(answers[0].tree.edges.is_empty());
}
