//! The WAL replication feed (`GET /replication/wal`) against the local
//! log it streams from.
//!
//! * A property test proving the feed is the **on-disk format
//!   verbatim**: for random batch streams with a compaction in the
//!   middle of the tail, every HTTP body is byte-identical to the
//!   corresponding `wal.log` suffix, the decoded frames reproduce the
//!   applied batches exactly, and a `from_epoch` that compaction ran
//!   past answers `410 Gone`.
//! * Protocol edges over a live server: missing `from_epoch` is a
//!   `400`, a caught-up poll returns an empty `200` stamped with
//!   `X-Banks-Epoch`, and a long poll parks until a write lands.

use banks_core::{Banks, BanksConfig};
use banks_datagen::dblp::{generate, DblpConfig};
use banks_datagen::rng::Rng;
use banks_ingest::{DeltaBatch, SnapshotPublisher, TupleOp};
use banks_persist::{scan_frames, PersistOptions, PersistentStore};
use banks_server::{BanksServer, IngestEndpoint, QueryService, ServerConfig, ServiceConfig};
use banks_storage::Value;
use banks_util::http::{http_request, HttpResponse};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "banks_wal_stream_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable leader over `dir`, replication endpoints enabled —
/// mirroring `banks serve --data-dir`.
fn leader(
    dir: &Path,
    seed: u64,
) -> (
    Arc<QueryService>,
    BanksServer,
    Arc<IngestEndpoint>,
    Arc<PersistentStore>,
) {
    let config = BanksConfig::default();
    let (store, recovery) =
        PersistentStore::open(dir, &config, PersistOptions::default()).expect("open leader");
    assert!(recovery.banks.is_none(), "tests start on fresh directories");
    let dataset = generate(DblpConfig::tiny(seed % 17 + 1)).expect("datagen");
    let banks = Arc::new(Banks::new(dataset.db.clone()).expect("banks"));
    store.save_snapshot(&banks, 0).expect("initial bundle");
    let service = Arc::new(QueryService::with_epoch(
        Arc::clone(&banks),
        0,
        ServiceConfig::default(),
    ));
    let mut publisher = SnapshotPublisher::with_epoch(banks, 0);
    publisher.set_durability_hook(store.wal_hook());
    let ingest =
        IngestEndpoint::with_publisher(Arc::clone(&service), publisher, Some(Arc::clone(&store)));
    let server = BanksServer::bind_full(
        Arc::clone(&service),
        Some(Arc::clone(&ingest)),
        Some(Arc::clone(&store)),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind leader");
    (service, server, ingest, store)
}

/// Deterministic batch stream: fresh authors plus occasional renames of
/// earlier ones — enough op-shape variety to exercise the frame codec.
fn next_batch(rng: &mut Rng, serial: &mut usize) -> DeltaBatch {
    let mut ops = Vec::new();
    for _ in 0..rng.range(1, 4) {
        let id = format!("wal-{}", *serial);
        *serial += 1;
        ops.push(TupleOp::Insert {
            relation: "Author".into(),
            values: vec![Value::text(&id), Value::text(format!("Wal Author {id}"))],
        });
    }
    if *serial > 1 && rng.chance(0.4) {
        let pick = rng.range(0, *serial - 1);
        ops.push(TupleOp::Update {
            relation: "Author".into(),
            key: vec![Value::text(format!("wal-{pick}"))],
            set: vec![(
                "AuthorName".into(),
                Value::text(format!("Renamed wal-{pick}")),
            )],
        });
    }
    DeltaBatch { ops }
}

fn feed(addr: std::net::SocketAddr, from_epoch: u64, wait_ms: u64) -> HttpResponse {
    http_request(
        &addr.to_string(),
        "GET",
        &format!("/replication/wal?from_epoch={from_epoch}&wait_ms={wait_ms}"),
        None,
        Duration::from_secs(10),
    )
    .expect("wal feed request")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every feed body is the exact byte suffix of `wal.log`, before and
    /// after a compaction in the middle of the tail, and the decoded
    /// frames replay the applied batch stream verbatim.
    #[test]
    fn streamed_frames_are_byte_identical_to_the_local_wal(
        seed in 0u64..1_000_000,
        batches in 2usize..6,
    ) {
        let dir = tmp_dir(&format!("prop_{seed}_{batches}"));
        let (service, server, ingest, store) = leader(&dir, seed);
        let addr = server.local_addr();
        let wal_path = dir.join("wal.log");
        let mut rng = Rng::new(seed);
        let mut serial = 0usize;
        let mut applied: Vec<DeltaBatch> = Vec::new();

        // First half of the stream, then a feed read from genesis.
        let mid = 1 + (seed as usize) % (batches - 1).max(1);
        for _ in 0..mid {
            let batch = next_batch(&mut rng, &mut serial);
            ingest.ingest(&batch, None).expect("leader ingest");
            applied.push(batch);
        }
        let first = feed(addr, 0, 0);
        prop_assert_eq!(first.status, 200);
        prop_assert_eq!(first.header("x-banks-epoch"), Some(&*mid.to_string()));
        // Byte-identical to the whole log (nothing compacted yet).
        prop_assert_eq!(&first.body, &std::fs::read(&wal_path).unwrap());
        let scan = scan_frames(&first.body).expect("decode feed");
        prop_assert_eq!(scan.torn_bytes, 0);
        prop_assert_eq!(scan.frames.len(), mid);

        // Compaction in the middle of the tail: the leader rolls a
        // snapshot at `mid` and prunes every frame the bundle covers.
        store
            .save_snapshot(&service.banks(), mid as u64)
            .expect("mid-stream compaction");

        // Second half, then a feed read from the compaction point.
        for _ in mid..batches {
            let batch = next_batch(&mut rng, &mut serial);
            ingest.ingest(&batch, None).expect("leader ingest");
            applied.push(batch);
        }
        let second = feed(addr, mid as u64, 0);
        prop_assert_eq!(second.status, 200);
        prop_assert_eq!(second.header("x-banks-epoch"), Some(&*batches.to_string()));
        prop_assert_eq!(&second.body, &std::fs::read(&wal_path).unwrap());

        // The two bodies concatenated decode to the applied stream,
        // epochs 1..=batches in order, batches bit-for-bit equal.
        let mut stream = first.body.clone();
        stream.extend_from_slice(&second.body);
        let scan = scan_frames(&stream).expect("decode concatenated feeds");
        prop_assert_eq!(scan.torn_bytes, 0);
        prop_assert_eq!(scan.valid_bytes, stream.len() as u64);
        prop_assert_eq!(scan.frames.len(), batches);
        for (i, frame) in scan.frames.iter().enumerate() {
            prop_assert_eq!(frame.epoch, i as u64 + 1);
            prop_assert_eq!(&frame.batch, &applied[i]);
        }

        // Frames at or before the compaction point are gone for good.
        let gone = feed(addr, 0, 0);
        prop_assert_eq!(gone.status, 410);
        prop_assert_eq!(gone.header("x-banks-epoch"), Some(&*batches.to_string()));
        prop_assert!(gone.text().contains("re-bootstrap"), "{}", gone.text());

        // A caught-up reader gets an empty 200, not an error.
        let caught_up = feed(addr, batches as u64, 0);
        prop_assert_eq!(caught_up.status, 200);
        prop_assert!(caught_up.body.is_empty());

        server.shutdown();
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn feed_protocol_edges() {
    let dir = tmp_dir("edges");
    let (_service, server, ingest, store) = leader(&dir, 3);
    let addr = server.local_addr();

    // from_epoch is required.
    let resp = http_request(
        &addr.to_string(),
        "GET",
        "/replication/wal",
        None,
        Duration::from_secs(5),
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("from_epoch"), "{}", resp.text());

    // The snapshot endpoint serves the newest bundle, epoch-stamped.
    let bundle = http_request(
        &addr.to_string(),
        "GET",
        "/replication/snapshot",
        None,
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(bundle.status, 200);
    assert_eq!(bundle.header("x-banks-epoch"), Some("0"));
    assert!(!bundle.body.is_empty());

    // A long poll parks until a write lands, then ships the new frame.
    let poller = std::thread::spawn(move || feed(addr, 0, 5_000));
    std::thread::sleep(Duration::from_millis(100));
    ingest
        .ingest(
            &DeltaBatch {
                ops: vec![TupleOp::Insert {
                    relation: "Author".into(),
                    values: vec![Value::text("poll-1"), Value::text("Polled Author")],
                }],
            },
            None,
        )
        .expect("ingest during poll");
    let resp = poller.join().expect("poller thread");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-banks-epoch"), Some("1"));
    let scan = scan_frames(&resp.body).expect("decode long-poll body");
    assert_eq!(scan.frames.len(), 1);
    assert_eq!(scan.frames[0].epoch, 1);

    server.shutdown();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
