//! Backward vs forward search (§3 vs §7): the approximation must agree
//! with the exhaustive algorithm on clear-cut queries and must be cheaper
//! on metadata-heavy ones.

use banks_core::{Banks, SearchStrategy};
use banks_datagen::dblp::{generate, DblpConfig};
use banks_eval::workload::dblp_eval_config;

fn banks(seed: u64) -> Banks {
    let dataset = generate(DblpConfig::tiny(seed)).unwrap();
    Banks::with_config(dataset.db, dblp_eval_config()).unwrap()
}

#[test]
fn strategies_agree_on_top_answer_for_selective_queries() {
    let banks = banks(1);
    for query in ["soumen sunita", "seltzer sunita", "gray transaction"] {
        let bwd = banks
            .search_with(query, SearchStrategy::Backward, banks.config())
            .unwrap();
        let fwd = banks
            .search_with(query, SearchStrategy::Forward, banks.config())
            .unwrap();
        assert!(!bwd.answers.is_empty(), "{query}: backward empty");
        assert!(!fwd.answers.is_empty(), "{query}: forward empty");
        assert_eq!(
            bwd.answers[0].tree.signature(),
            fwd.answers[0].tree.signature(),
            "{query}: top answers disagree"
        );
    }
}

#[test]
fn forward_search_spawns_fewer_iterators_on_metadata_queries() {
    let banks = banks(2);
    // "author" matches every Author tuple plus the AuthorId columns.
    let bwd = banks
        .search_with("author sunita", SearchStrategy::Backward, banks.config())
        .unwrap();
    let fwd = banks
        .search_with("author sunita", SearchStrategy::Forward, banks.config())
        .unwrap();
    assert!(
        fwd.stats.iterators * 10 < bwd.stats.iterators,
        "forward {} vs backward {} iterators",
        fwd.stats.iterators,
        bwd.stats.iterators
    );
    assert!(!fwd.answers.is_empty());
    // Both find the intuitive answer: the Sunita tuple itself.
    let top_is_single =
        |answers: &[banks_core::Answer]| answers.first().is_some_and(|a| a.tree.edges.is_empty());
    assert!(top_is_single(&bwd.answers));
    assert!(top_is_single(&fwd.answers));
}

#[test]
fn forward_respects_excluded_roots_too() {
    let banks = banks(3);
    let outcome = banks
        .search_with("soumen sunita", SearchStrategy::Forward, banks.config())
        .unwrap();
    for a in &outcome.answers {
        let rid = banks.tuple_graph().rid(a.tree.root);
        let name = banks.db().table(rid.relation).schema().name.clone();
        assert!(name != "Writes" && name != "Cites");
    }
}
