//! EXP-F5 shape assertions: the qualitative conclusions of §5.3 must hold
//! on the synthetic corpus across seeds.

use banks_datagen::dblp::{generate, DblpConfig};
use banks_eval::fig5::{cell, run_fig5, run_heap_sweep, LAMBDAS};

#[test]
fn lambda_02_with_log_edges_is_best_and_lambda_1_is_worst() {
    for seed in [1u64, 5] {
        let dataset = generate(DblpConfig::tiny(seed)).unwrap();
        let report = run_fig5(&dataset, false);
        let best = cell(&report, 0.2, true).unwrap().avg_scaled_error;
        let worst = LAMBDAS
            .iter()
            .flat_map(|&l| [cell(&report, l, false), cell(&report, l, true)])
            .flatten()
            .map(|c| c.avg_scaled_error)
            .fold(0.0f64, f64::max);
        // λ=0.2 + log is never beaten…
        for c in &report.cells {
            assert!(
                best <= c.avg_scaled_error + 1e-9,
                "seed {seed}: λ=0.2+log ({best:.2}) beaten by λ={} log={} ({:.2})",
                c.lambda,
                c.edge_log,
                c.avg_scaled_error
            );
        }
        // …and ignoring edge weights (λ=1) is the worst setting.
        let lambda1 = cell(&report, 1.0, true).unwrap().avg_scaled_error;
        assert!(
            (lambda1 - worst).abs() < 1e-9,
            "seed {seed}: λ=1 ({lambda1:.2}) is not the maximum ({worst:.2})"
        );
        assert!(
            lambda1 > best + 5.0,
            "seed {seed}: λ=1 must be clearly worse than the best setting"
        );
    }
}

#[test]
fn side_claims_mode_and_node_log_have_small_impact_at_good_lambdas() {
    let dataset = generate(DblpConfig::tiny(1)).unwrap();
    let report = run_fig5(&dataset, true);
    // At the operating range (λ ≤ 0.5) the combination mode and node-log
    // deltas stay small; the paper reports "almost no impact".
    for c in &report.cells {
        if c.lambda <= 0.5 && c.multiplicative {
            let additive = report
                .cells
                .iter()
                .find(|o| o.lambda == c.lambda && !o.multiplicative && !o.node_log && !o.edge_log)
                .unwrap();
            assert!(
                (c.avg_scaled_error - additive.avg_scaled_error).abs() <= 5.0,
                "λ={}: mode delta too large ({:.2} vs {:.2})",
                c.lambda,
                c.avg_scaled_error,
                additive.avg_scaled_error
            );
        }
    }
}

#[test]
fn heap_sweep_small_buffers_suffice() {
    // §3: "we have found it works well even with a reasonably small heap
    // size" — at the paper-best parameters the default heap (30) must be
    // error-free on the workload and tiny buffers must not be worse than
    // ~a swap or two.
    let dataset = generate(DblpConfig::tiny(1)).unwrap();
    let rows = run_heap_sweep(&dataset, &[1, 5, 30, 100]);
    let at = |size: usize| {
        rows.iter()
            .find(|r| r.heap_size == size)
            .unwrap()
            .avg_scaled_error
    };
    assert_eq!(at(30), 0.0, "default heap must reproduce ideal rankings");
    assert!(at(100) <= at(1) + 1e-9, "bigger buffers never hurt");
    assert!(at(1) <= 25.0, "even heap=1 stays far from worst-case error");
}

#[test]
fn report_serializes_to_json() {
    let dataset = generate(DblpConfig::tiny(2)).unwrap();
    let report = run_fig5(&dataset, false);
    let json = banks_util::json::to_string_pretty(&report);
    assert!(json.contains("avg_scaled_error"));
    assert!(json.contains("per_query"));
}
