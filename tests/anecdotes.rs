//! EXP-A1…A6: every §5.1 anecdote must reproduce across seeds — the
//! planted entities guarantee the structure, so seed changes only the
//! synthetic noise around them.

use banks_eval::run_anecdotes;

#[test]
fn anecdotes_reproduce_across_seeds() {
    for seed in [1u64, 2, 3, 13] {
        let outcomes = run_anecdotes(seed);
        assert_eq!(outcomes.len(), 6);
        for o in &outcomes {
            assert!(
                o.passed,
                "seed {seed}: anecdote {} (\"{}\") failed; top answers:\n{}",
                o.id,
                o.query,
                o.top.join("---\n")
            );
        }
    }
}

#[test]
fn anecdote_outputs_render_figure2_style() {
    let outcomes = run_anecdotes(1);
    // A5 is the Figure 2 query: its rendering must show the paper root
    // with indented Writes and starred Author leaves.
    let a5 = outcomes.iter().find(|o| o.id == "A5").expect("A5 present");
    let rendering = &a5.top[0];
    assert!(rendering.contains("Paper(ChakrabartiSD98"));
    assert!(rendering.contains("*Author(S"));
    assert!(rendering.lines().count() >= 5);
}
