//! Persistence: a whole database survives a CSV dump/reload round trip,
//! and the reloaded instance answers queries identically.

use banks_core::Banks;
use banks_datagen::dblp::{dblp_schema, generate, DblpConfig};
use banks_eval::workload::{dblp_eval_config, dblp_workload};
use banks_storage::csv::{load_csv_into, table_to_csv};

#[test]
fn full_database_roundtrip_preserves_search_results() {
    let dataset = generate(DblpConfig::tiny(1)).unwrap();

    // Dump every relation, reload into a fresh catalog with the same
    // schema. Relation order respects foreign keys (Author/Paper before
    // Writes/Cites), matching catalog order.
    let mut reloaded = dblp_schema().unwrap();
    for table in dataset.db.relations() {
        let csv = table_to_csv(table);
        let n = load_csv_into(&mut reloaded, &table.schema().name, &csv).unwrap();
        assert_eq!(n, table.len(), "{} row count", table.schema().name);
    }
    assert_eq!(reloaded.total_tuples(), dataset.db.total_tuples());
    assert_eq!(reloaded.link_count(), dataset.db.link_count());

    // Both instances must return identical rankings for the workload.
    let original = Banks::with_config(dataset.db.clone(), dblp_eval_config()).unwrap();
    let restored = Banks::with_config(reloaded, dblp_eval_config()).unwrap();
    for query in dblp_workload(&dataset.planted) {
        let a = original.search(query.text).unwrap();
        let b = restored.search(query.text).unwrap();
        assert_eq!(a.len(), b.len(), "{}", query.id);
        for (x, y) in a.iter().zip(&b) {
            assert!(
                (x.relevance - y.relevance).abs() < 1e-12,
                "{}: relevance drift",
                query.id
            );
            // Rids (and thus node ids) are assigned in insertion order,
            // which the CSV dump preserves, so trees must be identical.
            assert_eq!(x.tree.signature(), y.tree.signature(), "{}", query.id);
        }
    }
}

#[test]
fn thesis_database_roundtrip() {
    use banks_datagen::thesis::{generate as gen_thesis, thesis_schema, ThesisConfig};
    let dataset = gen_thesis(ThesisConfig::tiny(4)).unwrap();
    let mut reloaded = thesis_schema().unwrap();
    for table in dataset.db.relations() {
        let csv = table_to_csv(table);
        load_csv_into(&mut reloaded, &table.schema().name, &csv).unwrap();
    }
    assert_eq!(reloaded.total_tuples(), dataset.db.total_tuples());
    let banks = Banks::new(reloaded).unwrap();
    let answers = banks.search("sudarshan aditya").unwrap();
    assert!(!answers.is_empty());
}
