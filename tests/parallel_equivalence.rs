//! Property tests for the intra-query parallel executor: at every
//! thread count the parallel backward expansion must be bit-for-bit
//! equivalent to the sequential kernel — answers, relevance bits, and
//! execution stats (pops, trees, duplicates, early-termination firing)
//! — across random query streams, both strategies, random result
//! limits, and an ingest-driven epoch/graph-size change mid-stream on
//! the same reused arena.

use banks_core::{Banks, BanksConfig, SearchArena, SearchOutcome, SearchStrategy};
use banks_datagen::dblp::{generate, DblpConfig};
use banks_ingest::{DeltaBatch, SnapshotPublisher, TupleOp};
use banks_storage::Value;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// The tiny corpus, generated once per process (corpus generation is the
/// expensive part, and the instance is immutable).
fn tiny_banks() -> &'static Arc<Banks> {
    static BANKS: OnceLock<Arc<Banks>> = OnceLock::new();
    BANKS.get_or_init(|| {
        let dataset = generate(DblpConfig::tiny(1)).expect("tiny corpus generates");
        Arc::new(Banks::new(dataset.db).expect("banks builds"))
    })
}

fn token_pool(banks: &Banks) -> Vec<String> {
    let mut tokens: Vec<String> = banks.text_index().tokens().map(|t| t.to_string()).collect();
    tokens.sort();
    tokens
}

fn assert_outcomes_bit_identical(a: &SearchOutcome, b: &SearchOutcome, context: &str) {
    // `SearchStats` equality covers exactly the execution-semantic
    // counters (environment counters like shard counts are excluded by
    // its `PartialEq`), so this asserts early-termination firing too.
    assert_eq!(a.stats, b.stats, "{context}: stats diverged");
    assert_eq!(
        a.stats.early_terminations, b.stats.early_terminations,
        "{context}: early-termination firing diverged"
    );
    assert_eq!(
        a.answers.len(),
        b.answers.len(),
        "{context}: answer count diverged"
    );
    for (x, y) in a.answers.iter().zip(&b.answers) {
        assert_eq!(x.tree, y.tree, "{context}: tree diverged");
        assert_eq!(
            x.relevance.to_bits(),
            y.relevance.to_bits(),
            "{context}: relevance bits diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N random queries: the sequential kernel (threads = 1) vs the
    /// parallel executor at 2 and 4 threads, all three on reused
    /// arenas, with a forced-parallel configuration
    /// (`parallel_min_origins = 0`) so even two-origin draws exercise
    /// the shard/merge pipeline — including after an ingest-driven
    /// epoch change grows the graph under the same arenas.
    #[test]
    fn parallel_equivalence(
        picks in proptest::collection::vec(
            (0usize..5000, 0usize..5000, 1usize..4, proptest::bool::ANY, 1usize..12),
            3..8,
        ),
        seed in 0u32..1000,
    ) {
        let base = tiny_banks();
        let tokens = token_pool(base);
        let mut seq_arena = SearchArena::new();
        let mut par_arenas = [SearchArena::new(), SearchArena::new()];

        let run_stream = |banks: &Banks,
                              seq_arena: &mut SearchArena,
                              par_arenas: &mut [SearchArena; 2],
                              salt: usize| {
            let mut engaged = 0usize;
            for &(i, j, n_terms, forward, limit) in &picks {
                let mut text = tokens[(i + salt) % tokens.len()].clone();
                if n_terms >= 2 {
                    text.push(' ');
                    text.push_str(&tokens[(j + salt) % tokens.len()]);
                }
                if n_terms >= 3 {
                    text.push(' ');
                    text.push_str(&tokens[(i + j + salt) % tokens.len()]);
                }
                let strategy = if forward { SearchStrategy::Forward } else { SearchStrategy::Backward };
                let mut config: BanksConfig = banks.config().clone();
                config.search.max_results = limit;
                let query = banks.parse(&text).unwrap();
                let sequential = banks
                    .search_parsed_in(&query, strategy, &config, seq_arena)
                    .unwrap();
                for (a, threads) in par_arenas.iter_mut().zip([2usize, 4]) {
                    let mut par_config = config.clone();
                    par_config.search.search_threads = threads;
                    par_config.search.parallel_min_origins = 0;
                    let parallel = banks
                        .search_parsed_in(&query, strategy, &par_config, a)
                        .unwrap();
                    engaged += parallel.stats.shards.min(1);
                    assert_outcomes_bit_identical(
                        &sequential,
                        &parallel,
                        &format!("query `{text}` ({strategy:?}, {threads} threads)"),
                    );
                }
            }
            engaged
        };
        let engaged = run_stream(base, &mut seq_arena, &mut par_arenas, 0);
        // Multi-term backward draws exist in nearly every stream; the
        // executor must actually have run in parallel for them.
        if picks.iter().any(|&(_, _, n, fwd, _)| n >= 2 && !fwd) {
            prop_assert!(engaged > 0, "no query engaged the parallel executor");
        }

        // Publish a delta (new author + paper + link) so the graph's
        // node count changes, then keep using the SAME arenas.
        let mut publisher = SnapshotPublisher::new(Arc::clone(base));
        let author_id = format!("ParProp{seed}");
        let paper_id = format!("parprop{seed}");
        let batch = DeltaBatch {
            ops: vec![
                TupleOp::Insert {
                    relation: "Author".into(),
                    values: vec![Value::text(&author_id), Value::text("Par Prop")],
                },
                TupleOp::Insert {
                    relation: "Paper".into(),
                    values: vec![
                        Value::text(&paper_id),
                        Value::text("Parallel Equivalence Under Epoch Change"),
                    ],
                },
                TupleOp::Insert {
                    relation: "Writes".into(),
                    values: vec![Value::text(&author_id), Value::text(&paper_id)],
                },
            ],
        };
        let published = publisher.publish(&batch, None).expect("publish succeeds");
        prop_assert!(
            published.banks.tuple_graph().node_count() > base.tuple_graph().node_count()
        );
        run_stream(&published.banks, &mut seq_arena, &mut par_arenas, 7);

        // The new tuples are reachable through a reused parallel arena.
        let mut config: BanksConfig = published.banks.config().clone();
        config.search.search_threads = 4;
        config.search.parallel_min_origins = 0;
        let query = published.banks.parse("equivalence epoch").unwrap();
        let outcome = published
            .banks
            .search_parsed_in(&query, SearchStrategy::Backward, &config, &mut par_arenas[1])
            .unwrap();
        prop_assert!(!outcome.answers.is_empty());
    }
}

/// Deterministic regression: the default cutover engages the parallel
/// executor on a real 3-keyword query and the result — including the
/// early-termination decision at top-1 — matches sequential bit for bit.
#[test]
fn three_keyword_query_parallel_at_default_cutover() {
    let banks = tiny_banks();
    let tokens = token_pool(banks);
    let mut arena = SearchArena::new();
    let mut engaged = 0usize;
    for i in 0..tokens.len().min(120) {
        let text = format!(
            "{} {} {}",
            tokens[i],
            tokens[(i * 17 + 3) % tokens.len()],
            tokens[(i * 29 + 11) % tokens.len()]
        );
        let query = banks.parse(&text).unwrap();
        for limit in [1usize, 10] {
            let mut seq = banks.config().clone();
            seq.search.max_results = limit;
            let sequential = banks
                .search_parsed_in(&query, SearchStrategy::Backward, &seq, &mut arena)
                .unwrap();
            let mut par = seq.clone();
            par.search.search_threads = 4; // default parallel_min_origins = 3
            let parallel = banks
                .search_parsed_in(&query, SearchStrategy::Backward, &par, &mut arena)
                .unwrap();
            engaged += parallel.stats.shards.min(1);
            assert_outcomes_bit_identical(&sequential, &parallel, &format!("`{text}` k={limit}"));
        }
    }
    assert!(
        engaged > 0,
        "no 3-keyword query crossed the default parallel cutover"
    );
}
