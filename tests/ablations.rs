//! Ablations of the design choices DESIGN.md calls out: indegree-scaled
//! backward edges (the §2.1 hub argument), prestige node weights, and
//! duplicate elimination.

use banks_core::{Banks, BanksConfig, NodeWeightMode};
use banks_datagen::thesis::{generate as gen_thesis, ThesisConfig};
use banks_graph::{Dijkstra, Direction};
use banks_storage::{ColumnType, Database, RelationSchema, Value};

/// Two departments, one large (8 students) one small (2 students): the
/// §2.1 hub scenario.
fn university() -> (Database, Vec<Value>) {
    let mut db = Database::new("uni");
    db.create_relation(
        RelationSchema::builder("Dept")
            .column("Id", ColumnType::Text)
            .primary_key(&["Id"])
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_relation(
        RelationSchema::builder("Student")
            .column("Id", ColumnType::Text)
            .column("Dept", ColumnType::Text)
            .primary_key(&["Id"])
            .foreign_key(&["Dept"], "Dept")
            .build()
            .unwrap(),
    )
    .unwrap();
    db.insert("Dept", vec![Value::text("big")]).unwrap();
    db.insert("Dept", vec![Value::text("small")]).unwrap();
    let mut students = Vec::new();
    for i in 0..8 {
        let id = format!("b{i}");
        db.insert("Student", vec![Value::text(&id), Value::text("big")])
            .unwrap();
        students.push(Value::text(id));
    }
    for i in 0..2 {
        let id = format!("s{i}");
        db.insert("Student", vec![Value::text(&id), Value::text("small")])
            .unwrap();
        students.push(Value::text(id));
    }
    (db, students)
}

/// Proximity between two co-department students, as the shortest forward
/// path distance student→dept→student.
fn pair_distance(db: &Database, config: &banks_core::GraphConfig, a: &str, b: &str) -> f64 {
    let tg = banks_core::TupleGraph::build(db, config).unwrap();
    let student = db.relation("Student").unwrap();
    let na = tg
        .node(student.lookup_pk(&[Value::text(a)]).unwrap())
        .unwrap();
    let nb = tg
        .node(student.lookup_pk(&[Value::text(b)]).unwrap())
        .unwrap();
    let mut dij = Dijkstra::new(tg.graph(), na, Direction::Forward);
    dij.by_ref().for_each(drop);
    dij.distance(nb).expect("connected")
}

#[test]
fn abl_backward_weights_dampen_hubs() {
    let (db, _) = university();
    // With eq. (1): the big department's backward edges weigh 8, the small
    // one's 2, so small-department students are "closer" to each other.
    let weighted = banks_core::GraphConfig::default();
    let big_pair = pair_distance(&db, &weighted, "b0", "b1");
    let small_pair = pair_distance(&db, &weighted, "s0", "s1");
    assert!(
        small_pair < big_pair,
        "hub damping: small {small_pair} vs big {big_pair}"
    );
    // Ablated (symmetric) graph: both pairs look equally close — the
    // failure mode the paper argues against.
    let symmetric = banks_core::GraphConfig {
        indegree_backward_weights: false,
        ..banks_core::GraphConfig::default()
    };
    let big_sym = pair_distance(&db, &symmetric, "b0", "b1");
    let small_sym = pair_distance(&db, &symmetric, "s0", "s1");
    assert_eq!(big_sym, small_sym, "symmetric graph loses the distinction");
}

#[test]
fn abl_uniform_node_weights_break_prestige_ranking() {
    // On the thesis database, "computer engineering" ranks the CSE
    // department first *because of* prestige; with uniform node weights
    // the department is just another single keyword-pair answer.
    let dataset = gen_thesis(ThesisConfig::tiny(1)).unwrap();
    let cse_key = Value::text(&dataset.planted.cse_dept);

    let with_prestige = Banks::new(dataset.db.clone()).unwrap();
    let answers = with_prestige.search("computer engineering").unwrap();
    let cse_rid = dataset
        .db
        .relation("Department")
        .unwrap()
        .lookup_pk(std::slice::from_ref(&cse_key))
        .unwrap();
    let cse_node = with_prestige.tuple_graph().node(cse_rid).unwrap();
    assert_eq!(answers[0].tree.root, cse_node, "prestige puts CSE first");
    let prestige_relevance = answers[0].relevance;

    let mut config = BanksConfig::default();
    config.graph.node_weight = NodeWeightMode::Uniform;
    let uniform = Banks::with_config(dataset.db.clone(), config).unwrap();
    let answers = uniform.search("computer engineering").unwrap();
    let cse_node = uniform
        .tuple_graph()
        .node(cse_rid)
        .expect("same insertion order");
    let cse_rank = answers.iter().position(|a| a.tree.root == cse_node);
    // CSE still matches both words (single-node answer, edge score 1), but
    // its relevance no longer towers over the others.
    if let Some(rank) = cse_rank {
        assert!(
            answers[rank].relevance <= prestige_relevance + 1e-9,
            "uniform weights must not increase CSE's relevance"
        );
    }
    let spread: Vec<f64> = answers.iter().map(|a| a.relevance).collect();
    assert!(
        spread.windows(2).all(|w| w[0] >= w[1] - 1e-9),
        "still ranked descending"
    );
}

#[test]
fn abl_duplicate_elimination_removes_rerooted_twins() {
    let dataset = banks_datagen::dblp::generate(banks_datagen::DblpConfig::tiny(1)).unwrap();
    let mut config = BanksConfig::default();
    config.search.deduplicate = false;
    let without = Banks::with_config(dataset.db.clone(), config).unwrap();
    let raw = without.search("soumen sunita").unwrap();
    let mut sigs: Vec<_> = raw.iter().map(|a| a.tree.signature()).collect();
    let before = sigs.len();
    sigs.sort();
    sigs.dedup();
    assert!(
        sigs.len() < before,
        "without dedup, rerooted duplicates appear ({before} answers, {} unique)",
        sigs.len()
    );

    let with = Banks::new(dataset.db.clone()).unwrap();
    let deduped = with.search("soumen sunita").unwrap();
    let mut sigs: Vec<_> = deduped.iter().map(|a| a.tree.signature()).collect();
    let before = sigs.len();
    sigs.sort();
    sigs.dedup();
    assert_eq!(sigs.len(), before, "dedup removes every twin");
}

#[test]
fn abl_authority_transfer_lifts_referenced_papers() {
    // §7 extension: with authority transfer, a paper cited by heavily
    // cited papers gains prestige relative to raw indegree.
    let dataset = banks_datagen::dblp::generate(banks_datagen::DblpConfig::tiny(2)).unwrap();
    let mut config = BanksConfig::default();
    config.graph.node_weight = NodeWeightMode::AuthorityTransfer {
        iterations: 4,
        damping: 0.5,
    };
    let banks = Banks::with_config(dataset.db.clone(), config).unwrap();
    // Graph builds and queries still work; transferred weights are finite.
    let answers = banks.search("transaction").unwrap();
    assert!(!answers.is_empty());
    for node in banks.tuple_graph().graph().nodes() {
        let w = banks.tuple_graph().graph().node_weight(node);
        assert!(w.is_finite() && w >= 0.0);
    }
}
