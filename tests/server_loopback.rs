//! Loopback integration tests for `banks-server`: start the HTTP server
//! on an ephemeral port, issue real TCP requests — including ≥ 8
//! concurrent clients — and check that ranked answers match the
//! single-threaded search path and that `/stats` accounts every
//! hit and miss exactly.

use banks_core::Banks;
use banks_datagen::dblp::{generate, DblpConfig};
use banks_eval::workload::{dblp_eval_config, dblp_workload};
use banks_server::{BanksServer, QueryService, ServerConfig, ServiceConfig};
use banks_util::json::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// One tiny corpus + server shared per test (each test builds its own so
/// `/stats` counters start from zero).
struct Fixture {
    banks: Arc<Banks>,
    service: Arc<QueryService>,
    server: BanksServer,
}

fn fixture() -> Fixture {
    let dataset = generate(DblpConfig::tiny(1)).expect("datagen");
    let banks =
        Arc::new(Banks::with_config(dataset.db.clone(), dblp_eval_config()).expect("banks builds"));
    let service = Arc::new(QueryService::new(
        Arc::clone(&banks),
        ServiceConfig::default(),
    ));
    let server = BanksServer::bind(
        Arc::clone(&service),
        ServerConfig {
            workers: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    Fixture {
        banks,
        service,
        server,
    }
}

/// Minimal HTTP/1.1 client: one GET, returns (status_code, body).
fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// URL-encode just enough for query text (spaces).
fn encode(q: &str) -> String {
    q.replace(' ', "+")
}

#[test]
fn health_node_and_error_routes() {
    let fx = fixture();
    let addr = fx.server.local_addr();

    let (status, body) = http_get(addr, "/health");
    assert_eq!(status, 200);
    assert!(body.contains(r#""status":"ok""#));
    assert!(body.contains(r#""epoch":"#));

    let (status, body) = http_get(addr, "/node?id=0");
    assert_eq!(status, 200);
    assert!(body.contains(r#""id":0"#));
    assert!(body.contains(r#""relation":"#));
    assert!(body.contains(r#""prestige":"#));

    let node_count = fx.banks.tuple_graph().node_count();
    let (status, _) = http_get(addr, &format!("/node?id={node_count}"));
    assert_eq!(status, 404);

    assert_eq!(http_get(addr, "/node?id=xyz").0, 400);
    assert_eq!(http_get(addr, "/search").0, 400, "missing q");
    assert_eq!(http_get(addr, "/search?q=mohan&strategy=sideways").0, 400);
    assert_eq!(http_get(addr, "/search?q=mohan&limit=0").0, 400);
    assert_eq!(http_get(addr, "/nope").0, 404);

    // Non-GET is rejected.
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /search HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 405"), "{response}");
}

#[test]
fn search_results_match_single_threaded_path() {
    let fx = fixture();
    let addr = fx.server.local_addr();
    let dataset = generate(DblpConfig::tiny(1)).expect("datagen");

    for query in dblp_workload(&dataset.planted) {
        let direct = fx.banks.search(query.text).expect("direct search");
        let (status, body) = http_get(addr, &format!("/search?q={}", encode(query.text)));
        assert_eq!(status, 200, "query {}", query.id);
        assert!(
            body.contains(&format!(r#""count":{}"#, direct.len())),
            "{}: answer count must match the single-threaded path",
            query.id
        );
        // The top-ranked rendered tree must be byte-identical. Rendering
        // the expected tree through the JSON escaper makes the comparison
        // robust to escaping.
        if let Some(top) = direct.first() {
            let expected = Json::Str(fx.banks.render_answer(top)).compact();
            assert!(
                body.contains(&expected),
                "{}: top answer differs\nexpected fragment: {expected}\nbody: {body}",
                query.id
            );
            let expected_relevance = Json::Num(top.relevance).compact();
            assert!(
                body.contains(&format!(r#""relevance":{expected_relevance}"#)),
                "{}: top relevance differs",
                query.id
            );
        }
    }
}

#[test]
fn concurrent_clients_get_consistent_answers_and_exact_stats() {
    let fx = fixture();
    let addr = fx.server.local_addr();
    let dataset = generate(DblpConfig::tiny(1)).expect("datagen");
    let workload = dblp_workload(&dataset.planted);
    // 8 queries × 8 clients; every client issues every query.
    let queries: Vec<&str> = workload.iter().map(|q| q.text).take(8).collect();
    let clients = 8usize;

    let bodies: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let queries = queries.clone();
                scope.spawn(move || {
                    queries
                        .iter()
                        // Stagger start order so clients race different keys.
                        .cycle()
                        .skip(c)
                        .take(queries.len())
                        .map(|q| {
                            let (status, body) =
                                http_get(addr, &format!("/search?q={}", encode(q)));
                            assert_eq!(status, 200);
                            (q.to_string(), body)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut per_query: std::collections::BTreeMap<String, Vec<String>> = Default::default();
        for h in handles {
            for (q, body) in h.join().expect("client thread") {
                per_query.entry(q).or_default().push(body);
            }
        }
        per_query.into_values().collect()
    });

    // Every client saw the same ranked answers for the same query
    // (ignoring the volatile cached/elapsed fields).
    for versions in &bodies {
        let answers = |body: &str| {
            body.split_once(r#""answers":"#)
                .map(|(_, a)| a.to_string())
                .expect("answers field")
        };
        let first = answers(&versions[0]);
        for other in &versions[1..] {
            assert_eq!(
                first,
                answers(other),
                "clients must agree on ranked answers"
            );
        }
    }

    // The service executed each distinct query once; every other request
    // was a cache hit. /stats must account for all of them exactly.
    let total = (clients * queries.len()) as u64;
    let distinct = queries.len() as u64;
    let stats = fx.service.stats();
    assert_eq!(stats.queries, total);
    assert_eq!(stats.cache.hits + stats.cache.misses, total);
    assert_eq!(stats.cache.entries as u64, distinct);
    assert!(
        stats.cache.misses >= distinct,
        "each distinct query misses at least once"
    );
    // Racing clients may compute the same cold query concurrently, but
    // never more often than once per client.
    assert!(stats.cache.misses <= distinct * clients as u64);
    assert!(stats.cache.hits >= total - distinct * clients as u64);

    // And the HTTP view agrees with the in-process counters.
    let (status, body) = http_get(addr, "/stats");
    assert_eq!(status, 200);
    let stats_after = fx.service.stats();
    assert!(body.contains(&format!(r#""misses":{}"#, stats_after.cache.misses)));
    assert!(body.contains(&format!(r#""queries":{}"#, stats_after.queries)));
    assert!(body.contains(&format!(r#""entries":{}"#, stats_after.cache.entries)));
}

#[test]
fn repeated_query_is_served_from_cache() {
    let fx = fixture();
    let addr = fx.server.local_addr();

    let (_, cold) = http_get(addr, "/search?q=mohan");
    assert!(cold.contains(r#""cached":false"#));
    let (_, warm) = http_get(addr, "/search?q=mohan");
    assert!(warm.contains(r#""cached":true"#));
    // Normalization: different spacing/case/order, same cache entry.
    let (_, also_warm) = http_get(addr, "/search?q=++MOHAN++");
    assert!(also_warm.contains(r#""cached":true"#));

    let stats = fx.service.stats();
    assert_eq!(stats.cache.hits, 2);
    assert_eq!(stats.cache.misses, 1);

    // Graceful shutdown releases the port and joins all threads.
    fx.server.shutdown();
}
