//! Whole-cluster integration: a durable leader, two followers tailing
//! its WAL (`banks-replica`), and the routing front door
//! (`banks-router`) — all in one process, over real loopback HTTP.
//!
//! The scenario mirrors the deployment story end to end:
//!
//! 1. writes enter through the **router** and land on the leader;
//! 2. both followers converge to the leader's epoch and serve
//!    bit-identical ranked answers;
//! 3. one follower is killed mid-traffic — every in-flight and
//!    subsequent read still answers `200` (failover, not errors);
//! 4. the follower restarts from its **persisted** state (no snapshot
//!    re-download) and the router re-admits it into rotation.
//!
//! The killed follower sits behind a tiny test-owned TCP relay so its
//! advertised address survives the restart: the relay's listener is
//! never rebound (a follower that died seconds ago leaves TIME_WAIT
//! sockets that would make a plain std rebind flaky), while the real
//! follower comes back on a fresh port behind it.

use banks_core::{Banks, BanksConfig};
use banks_datagen::dblp::{generate, DblpConfig};
use banks_ingest::SnapshotPublisher;
use banks_persist::{PersistOptions, PersistentStore};
use banks_replica::{Replica, ReplicaConfig};
use banks_router::{Router, RouterConfig};
use banks_server::{BanksServer, IngestEndpoint, QueryService, ServerConfig, ServiceConfig};
use banks_util::http::{http_request, HttpResponse};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "banks_cluster_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable leader over `dir`, mirroring `banks serve --data-dir`.
fn leader(dir: &Path) -> (Arc<QueryService>, BanksServer, Arc<IngestEndpoint>) {
    let config = BanksConfig::default();
    let (store, recovery) =
        PersistentStore::open(dir, &config, PersistOptions::default()).expect("open leader");
    let (banks, epoch) = match recovery.banks {
        Some(banks) => (banks, recovery.epoch),
        None => {
            let dataset = generate(DblpConfig::tiny(7)).expect("datagen");
            let banks = Arc::new(Banks::new(dataset.db.clone()).expect("banks"));
            store.save_snapshot(&banks, 0).expect("initial bundle");
            (banks, 0)
        }
    };
    let service = Arc::new(QueryService::with_epoch(
        Arc::clone(&banks),
        epoch,
        ServiceConfig::default(),
    ));
    let mut publisher = SnapshotPublisher::with_epoch(banks, epoch);
    publisher.set_durability_hook(store.wal_hook());
    let ingest = IngestEndpoint::with_publisher(Arc::clone(&service), publisher, Some(store));
    let server = BanksServer::bind_full(
        Arc::clone(&service),
        Some(Arc::clone(&ingest)),
        ingest.store().cloned(),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind leader");
    (service, server, ingest)
}

/// A follower over `dir`, mirroring `banks serve --follow --data-dir`.
fn follower(dir: &Path, leader_addr: SocketAddr) -> (Replica, BanksServer) {
    let replica = Replica::start(
        ReplicaConfig {
            leader: leader_addr.to_string(),
            data_dir: dir.to_path_buf(),
            poll_wait_ms: 500,
            retry_backoff: Duration::from_millis(20),
            ..ReplicaConfig::default()
        },
        ServiceConfig::default(),
    )
    .expect("follower start");
    let server = BanksServer::bind_full(
        replica.service(),
        None,
        Some(replica.store()),
        ServerConfig {
            workers: 2,
            leader_hint: Some(leader_addr.to_string()),
            ..ServerConfig::default()
        },
    )
    .expect("bind follower");
    (replica, server)
}

/// A one-connection-at-a-time TCP relay with a stable public address
/// and a swappable target. `set_target(None)` is the kill switch:
/// accepted connections are dropped on the floor, which the router
/// sees as a dead backend.
struct Relay {
    addr: SocketAddr,
    target: Arc<Mutex<Option<SocketAddr>>>,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Relay {
    fn new(target: SocketAddr) -> Relay {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind relay");
        let addr = listener.local_addr().expect("relay addr");
        let target = Arc::new(Mutex::new(Some(target)));
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let target = Arc::clone(&target);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(mut down) = conn else { continue };
                    let Some(to) = *target.lock().expect("relay target") else {
                        continue; // kill switch: drop the connection
                    };
                    let Ok(mut up) = TcpStream::connect(to) else {
                        continue;
                    };
                    std::thread::spawn(move || {
                        let (Ok(mut up_rx), Ok(mut down_rx)) = (up.try_clone(), down.try_clone())
                        else {
                            return;
                        };
                        let forward = std::thread::spawn(move || {
                            let _ = std::io::copy(&mut down_rx, &mut up);
                            let _ = up.shutdown(Shutdown::Write);
                        });
                        let _ = std::io::copy(&mut up_rx, &mut down);
                        let _ = down.shutdown(Shutdown::Write);
                        let _ = forward.join();
                    });
                }
            })
        };
        Relay {
            addr,
            target,
            shutdown,
            handle: Some(handle),
        }
    }

    fn set_target(&self, to: Option<SocketAddr>) {
        *self.target.lock().expect("relay target") = to;
    }

    fn stop(mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr); // wake the accept loop
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn get(addr: SocketAddr, target: &str) -> HttpResponse {
    http_request(
        &addr.to_string(),
        "GET",
        target,
        None,
        Duration::from_secs(30),
    )
    .expect("router GET")
}

fn post(addr: SocketAddr, target: &str, body: &str) -> HttpResponse {
    http_request(
        &addr.to_string(),
        "POST",
        target,
        Some(body.as_bytes()),
        Duration::from_secs(30),
    )
    .expect("router POST")
}

fn json_u64(body: &str, field: &str) -> Option<u64> {
    let idx = body.find(&format!("\"{field}\":"))?;
    let rest = &body[idx + field.len() + 3..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn ingest_body(id: &str) -> String {
    format!(
        r#"{{"ops":[{{"op":"insert","relation":"Author","values":["{id}","Clustered Author {id}"]}}]}}"#
    )
}

fn wait_for(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Ranked answers must be fingerprint-identical across two services:
/// same trees (by signature) in the same order with bit-equal scores.
fn assert_same_answers(a: &QueryService, b: &QueryService, q: &str) {
    let x = a.search(q, Default::default()).expect("search a");
    let y = b.search(q, Default::default()).expect("search b");
    assert_eq!(x.result.answers.len(), y.result.answers.len(), "{q}");
    for (p, r) in x.result.answers.iter().zip(&y.result.answers) {
        assert_eq!(p.tree.signature(), r.tree.signature(), "{q}");
        assert_eq!(p.relevance.to_bits(), r.relevance.to_bits(), "{q}");
    }
}

#[test]
fn cluster_converges_and_survives_a_follower_kill() {
    let leader_dir = tmp_dir("leader");
    let f1_dir = tmp_dir("f1");
    let f2_dir = tmp_dir("f2");

    let (leader_service, leader_server, _ingest) = leader(&leader_dir);
    let leader_addr = leader_server.local_addr();
    let (f1, f1_server) = follower(&f1_dir, leader_addr);
    let (f2, f2_server) = follower(&f2_dir, leader_addr);
    let relay = Relay::new(f1_server.local_addr());

    let router = Router::bind(RouterConfig {
        addr: "127.0.0.1:0".into(),
        leader: leader_addr.to_string(),
        followers: vec![relay.addr.to_string(), f2_server.local_addr().to_string()],
        workers: 2,
        probe_interval: Duration::from_millis(50),
        eject_after: 2,
        ..RouterConfig::default()
    })
    .expect("bind router");
    let front = router.local_addr();

    // Writes enter through the router and land on the leader.
    for i in 1..=3u64 {
        let resp = post(front, "/ingest", &ingest_body(&format!("cl-{i}")));
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert_eq!(json_u64(&resp.text(), "epoch"), Some(i));
    }
    assert_eq!(leader_service.epoch(), 3);

    // Both followers converge to the leader's epoch and to
    // fingerprint-identical ranked answers.
    wait_for("followers at epoch 3", || {
        f1.service().epoch() == 3 && f2.service().epoch() == 3
    });
    for q in ["clustered", "mohan", "clustered author"] {
        assert_same_answers(&leader_service, &f1.service(), q);
        assert_same_answers(&leader_service, &f2.service(), q);
    }

    // Read-your-writes through the full stack: ingest via the router,
    // then demand the new epoch on the very next read.
    let resp = post(front, "/ingest", &ingest_body("cl-4"));
    assert_eq!(json_u64(&resp.text(), "epoch"), Some(4));
    let resp = get(front, "/search?q=clustered&min_epoch=4");
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert!(json_u64(&resp.text(), "epoch").unwrap() >= 4);
    assert_eq!(json_u64(&resp.text(), "count"), Some(4), "{}", resp.text());
    wait_for("followers at epoch 4", || {
        f1.service().epoch() == 4 && f2.service().epoch() == 4
    });

    // Find a query whose rendezvous winner is follower 1, so the kill
    // provably faces traffic aimed at the dead backend (affinity could
    // otherwise happen to send every test query to follower 2).
    let forwarded_to_relay = || {
        router
            .stats()
            .backends
            .iter()
            .find(|b| b.url == relay.addr.to_string())
            .map(|b| b.forwarded)
            .unwrap_or(0)
    };
    let mut pinned = None;
    for i in 0..64 {
        let q = format!("clustered+{i}");
        let before = forwarded_to_relay();
        let resp = get(front, &format!("/search?q={q}"));
        assert_eq!(resp.status, 200, "{}", resp.text());
        if forwarded_to_relay() > before {
            pinned = Some(q);
            break;
        }
    }
    let pinned = pinned.expect("some query must route to follower 1");

    // Kill follower 1 mid-traffic. Every read during and after the kill
    // must still answer 200 — the router fails over, clients never see
    // the death.
    relay.set_target(None);
    f1_server.shutdown();
    f1.shutdown();
    let queries = ["clustered", "mohan", "clustered+author", "sunita", "soumen"];
    let resp = get(front, &format!("/search?q={pinned}"));
    assert_eq!(resp.status, 200, "pinned read during kill: {}", resp.text());
    for round in 0..6 {
        let q = queries[round % queries.len()];
        let resp = get(front, &format!("/search?q={q}"));
        assert_eq!(resp.status, 200, "read during kill: {}", resp.text());
    }
    wait_for("follower 1 ejection", || {
        router
            .stats()
            .backends
            .iter()
            .any(|b| b.url == relay.addr.to_string() && !b.healthy)
    });
    for q in &queries {
        let resp = get(front, &format!("/search?q={q}"));
        assert_eq!(resp.status, 200, "read after ejection: {}", resp.text());
    }

    // Restart follower 1 from its own directory: it resumes from the
    // persisted snapshot + WAL (no re-download) and catches up.
    let (f1b, f1b_server) = follower(&f1_dir, leader_addr);
    assert_eq!(
        f1b.stats().snapshots_downloaded,
        0,
        "restart must resume from persisted state, not re-download"
    );
    wait_for("restarted follower caught up", || {
        f1b.service().epoch() == 4
    });
    assert_same_answers(&leader_service, &f1b.service(), "clustered");

    // The router's prober re-admits the same registry entry.
    relay.set_target(Some(f1b_server.local_addr()));
    wait_for("follower 1 re-admission", || {
        router
            .stats()
            .backends
            .iter()
            .any(|b| b.url == relay.addr.to_string() && b.healthy && b.epoch == 4)
    });
    let stats = router.stats();
    let relayed = stats
        .backends
        .iter()
        .find(|b| b.url == relay.addr.to_string())
        .expect("relay backend");
    assert!(relayed.ejections >= 1, "{relayed:?}");
    assert!(relayed.readmissions >= 1, "{relayed:?}");
    // The pinned read either failed over mid-request or arrived after
    // the probes had already ejected follower 1 — both are the router
    // absorbing the death; `unavailable` is what clients would see.
    assert_eq!(stats.unavailable, 0, "no client-visible outage: {stats:?}");

    // Back in rotation: reads keep answering 200.
    for q in &queries {
        let resp = get(front, &format!("/search?q={q}"));
        assert_eq!(resp.status, 200, "read after re-admission: {}", resp.text());
    }

    router.shutdown();
    relay.stop();
    f1b_server.shutdown();
    f1b.shutdown();
    f2_server.shutdown();
    f2.shutdown();
    leader_server.shutdown();
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&f1_dir).ok();
    std::fs::remove_dir_all(&f2_dir).ok();
}

#[test]
fn router_error_surfaces_carry_retry_hints() {
    // A router with nothing behind it: reads exhaust the (empty) plan
    // and answer 503 with a Retry-After and a JSON error body.
    let router = Router::bind(RouterConfig {
        addr: "127.0.0.1:0".into(),
        leader: "127.0.0.1:1".into(), // nothing listens there
        followers: Vec::new(),
        workers: 1,
        probe_interval: Duration::from_secs(3600), // stay out of the way
        ..RouterConfig::default()
    })
    .expect("bind router");
    let front = router.local_addr();

    let resp = get(front, "/search?q=anything");
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert!(resp.text().contains(r#""error""#), "{}", resp.text());

    let resp = post(front, "/ingest", &ingest_body("nope"));
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert!(
        resp.text().contains("leader unreachable"),
        "{}",
        resp.text()
    );

    // The router's own health/stats endpoints always answer.
    let resp = get(front, "/health");
    assert_eq!(resp.status, 200);
    let resp = get(front, "/stats");
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains(r#""backends""#), "{}", resp.text());

    router.shutdown();
}
