//! Concurrent live-ingestion loopback test: a real HTTP server, 8 query
//! clients hammering `/search` while a writer publishes epochs through
//! `POST /ingest`. Asserts: no panics, every response carries a valid
//! epoch, no stale-epoch cache hits (epochs observed by one client never
//! go backwards), and exact `/stats` accounting under publication churn.

use banks_core::Banks;
use banks_datagen::dblp::{generate, DblpConfig};
use banks_server::{BanksServer, IngestEndpoint, QueryService, ServerConfig, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

struct Fixture {
    service: Arc<QueryService>,
    server: BanksServer,
}

fn fixture() -> Fixture {
    let dataset = generate(DblpConfig::tiny(1)).expect("datagen");
    let banks = Arc::new(Banks::new(dataset.db.clone()).expect("banks builds"));
    let service = Arc::new(QueryService::new(banks, ServiceConfig::default()));
    let ingest = IngestEndpoint::new(Arc::clone(&service));
    let server = BanksServer::bind_with_ingest(
        Arc::clone(&service),
        Some(ingest),
        ServerConfig {
            workers: 10,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    Fixture { service, server }
}

/// Minimal HTTP client: one request, returns (status, body).
fn http(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    http(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"),
    )
}

fn http_post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        ),
    )
}

/// Extract `"field":<u64>` from a flat JSON body.
fn json_u64(body: &str, field: &str) -> Option<u64> {
    let idx = body.find(&format!("\"{field}\":"))?;
    let rest = &body[idx + field.len() + 3..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn insert_batch(tag: &str) -> String {
    // Referencing nothing: a standalone author is always valid.
    format!(
        r#"{{"ops":[{{"op":"insert","relation":"Author","values":["ingest-{tag}","Ingested Author {tag}"]}}]}}"#
    )
}

#[test]
fn eight_clients_query_while_a_writer_publishes_epochs() {
    let fx = fixture();
    let addr = fx.server.local_addr();
    let clients = 8usize;
    let queries_per_client = 30usize;
    let queries = ["mohan", "sudarshan", "transaction", "mohan sudarshan"];

    let published = std::thread::scope(|scope| {
        let reader_handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut last_epoch = 0u64;
                    for i in 0..queries_per_client {
                        let q = queries[(c + i) % queries.len()];
                        let (status, body) =
                            http_get(addr, &format!("/search?q={}", q.replace(' ', "+")));
                        assert_eq!(status, 200, "client {c} query {i}");
                        // Every response carries a valid epoch…
                        let epoch = json_u64(&body, "epoch")
                            .unwrap_or_else(|| panic!("client {c}: no epoch in {body:.200}"));
                        // …and epochs observed by one client never go
                        // backwards: serving a stale cached entry after
                        // a newer epoch was observed would violate this.
                        assert!(
                            epoch >= last_epoch,
                            "client {c}: epoch went backwards ({epoch} < {last_epoch})"
                        );
                        last_epoch = epoch;
                    }
                    last_epoch
                })
            })
            .collect();

        // Writer: publish epochs while the readers run.
        let writer = scope.spawn(|| {
            let mut epochs = Vec::new();
            for round in 0..6 {
                let (status, body) = http_post(
                    addr,
                    &format!("/ingest?ts=t{round}"),
                    &insert_batch(&format!("w{round}")),
                );
                assert_eq!(status, 200, "publish {round}: {body}");
                let epoch = json_u64(&body, "epoch").expect("ingest response has epoch");
                epochs.push(epoch);
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            epochs
        });

        for h in reader_handles {
            h.join().expect("reader client must not panic");
        }
        writer.join().expect("writer must not panic")
    });

    // The writer saw strictly increasing epochs 1..=6.
    assert_eq!(published, vec![1, 2, 3, 4, 5, 6]);

    // Quiesced: a repeat query serves the final epoch, and its repeat is
    // a cache hit on that same epoch.
    let (_, cold) = http_get(addr, "/search?q=mohan");
    assert_eq!(json_u64(&cold, "epoch"), Some(6));
    let (_, warm) = http_get(addr, "/search?q=mohan");
    assert_eq!(json_u64(&warm, "epoch"), Some(6));
    assert!(warm.contains(r#""cached":true"#), "{warm}");
    // The tuples ingested mid-run are searchable now.
    let (status, body) = http_get(addr, "/search?q=ingested");
    assert_eq!(status, 200);
    assert!(json_u64(&body, "count").unwrap() >= 1, "{body:.200}");

    // Stats: epoch, caller timestamp, exact hit/miss accounting, and
    // per-epoch invalidation counts present.
    let stats = fx.service.stats();
    assert_eq!(stats.epoch, 6);
    assert_eq!(stats.last_publish.as_deref(), Some("t5"));
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        stats.queries,
        "every lookup accounted under churn"
    );
    let invalidated: u64 = stats.invalidations_by_epoch.iter().map(|&(_, n)| n).sum();
    assert_eq!(invalidated, stats.cache.invalidations);
    let (_, stats_body) = http_get(addr, "/stats");
    assert!(stats_body.contains(r#""epoch":6"#), "{stats_body}");
    assert!(
        stats_body.contains(r#""last_publish":"t5""#),
        "{stats_body}"
    );
    assert!(stats_body.contains(r#""invalidations""#), "{stats_body}");

    // /epochs reports the full history with caller timestamps.
    let (status, epochs_body) = http_get(addr, "/epochs");
    assert_eq!(status, 200);
    assert!(epochs_body.contains(r#""epoch":6"#), "{epochs_body}");
    assert!(
        epochs_body.contains(r#""published_at":"t0""#),
        "{epochs_body}"
    );
    assert!(
        epochs_body.contains(r#""incremental":true"#),
        "{epochs_body}"
    );

    fx.server.shutdown();
}

#[test]
fn ingest_error_paths_over_http() {
    let fx = fixture();
    let addr = fx.server.local_addr();

    // Malformed JSON body.
    let (status, body) = http_post(addr, "/ingest", "{nope");
    assert_eq!(status, 400, "{body}");

    // Empty batch: malformed request (400), not a data conflict (409).
    let (status, body) = http_post(addr, "/ingest", r#"{"ops":[]}"#);
    assert_eq!(status, 400, "{body}");

    // Valid JSON, invalid op (dangling FK) → rejected, epoch unchanged.
    let (status, body) = http_post(
        addr,
        "/ingest",
        r#"{"ops":[{"op":"insert","relation":"Writes","values":["ghost","nope"]}]}"#,
    );
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("delta rejected"), "{body}");
    assert_eq!(fx.service.epoch(), 0);

    // Wrong method.
    let (status, _) = http_get(addr, "/ingest");
    assert_eq!(status, 405);

    // Unknown relation.
    let (status, _) = http_post(
        addr,
        "/ingest",
        r#"{"ops":[{"op":"delete","relation":"Nope","key":["x"]}]}"#,
    );
    assert_eq!(status, 409);

    // A good batch still lands after all those failures.
    let (status, body) = http_post(addr, "/ingest?ts=now", &insert_batch("ok"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(fx.service.epoch(), 1);

    fx.server.shutdown();
}

#[test]
fn read_only_server_disables_ingest() {
    let dataset = generate(DblpConfig::tiny(1)).expect("datagen");
    let banks = Arc::new(Banks::new(dataset.db.clone()).expect("banks builds"));
    let service = Arc::new(QueryService::new(banks, ServiceConfig::default()));
    let server = BanksServer::bind(Arc::clone(&service), ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let (status, body) = http_post(addr, "/ingest", &insert_batch("x"));
    assert_eq!(status, 503, "{body}");
    // /epochs still answers, with an empty history.
    let (status, body) = http_get(addr, "/epochs");
    assert_eq!(status, 200);
    assert!(body.contains(r#""epoch":0"#), "{body}");
    assert!(body.contains(r#""history":[]"#), "{body}");
    server.shutdown();
}
