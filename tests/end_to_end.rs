//! End-to-end pipeline: synthetic DBLP → indexes → graph → backward
//! expanding search → ranked connection trees, checked against the
//! workload's ideal answers.

use banks_core::{Banks, SearchStrategy};
use banks_datagen::dblp::{generate, DblpConfig};
use banks_eval::workload::{dblp_eval_config, dblp_workload};

fn banks_at(seed: u64) -> (Banks, Vec<banks_eval::WorkloadQuery>) {
    let dataset = generate(DblpConfig::tiny(seed)).expect("generation succeeds");
    let workload = dblp_workload(&dataset.planted);
    let banks = Banks::with_config(dataset.db, dblp_eval_config()).expect("banks builds");
    (banks, workload)
}

#[test]
fn every_workload_query_finds_its_first_ideal_near_the_top() {
    for seed in [1u64, 7, 42] {
        let (banks, workload) = banks_at(seed);
        for query in &workload {
            let answers = banks.search(query.text).expect("query runs");
            assert!(
                !answers.is_empty(),
                "seed {seed}: query {} returned nothing",
                query.id
            );
            let first_ideal_rank = answers
                .iter()
                .position(|a| query.ideals[0].matcher.matches(&banks, a));
            assert!(
                first_ideal_rank.is_some_and(|r| r < 3),
                "seed {seed}: query {} first ideal not in top 3 (rank {first_ideal_rank:?})",
                query.id
            );
        }
    }
}

#[test]
fn search_is_deterministic() {
    let (banks, workload) = banks_at(3);
    for query in &workload {
        let a = banks.search(query.text).expect("runs");
        let b = banks.search(query.text).expect("runs");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tree.signature(), y.tree.signature());
            assert_eq!(x.relevance, y.relevance);
        }
    }
}

#[test]
fn answers_are_valid_connection_trees() {
    let (banks, workload) = banks_at(5);
    let graph = banks.tuple_graph().graph();
    for query in &workload {
        let parsed = banks.parse(query.text).expect("parses");
        let n_terms = parsed.len();
        for answer in banks.search(query.text).expect("runs") {
            let tree = &answer.tree;
            // One keyword node per term.
            assert_eq!(tree.keyword_nodes.len(), n_terms, "{}", query.id);
            // Every edge exists in the graph with the recorded weight.
            for &(f, t, w) in &tree.edges {
                let gw = graph
                    .edge_weight(f, t)
                    .unwrap_or_else(|| panic!("{}: edge {f}->{t} not in graph", query.id));
                assert!((gw - w).abs() < 1e-9);
            }
            // Every keyword node is reachable from the root via tree edges.
            for &leaf in &tree.keyword_nodes {
                let mut reachable = vec![tree.root];
                let mut frontier = vec![tree.root];
                while let Some(v) = frontier.pop() {
                    for &(f, t, _) in &tree.edges {
                        if f == v && !reachable.contains(&t) {
                            reachable.push(t);
                            frontier.push(t);
                        }
                    }
                }
                assert!(
                    reachable.contains(&leaf),
                    "{}: keyword node {leaf} unreachable from root {}",
                    query.id,
                    tree.root
                );
            }
            // Relevance in [0,1] under the default (additive) scoring.
            assert!((0.0..=1.0).contains(&answer.relevance));
        }
    }
}

#[test]
fn no_duplicate_trees_in_any_result() {
    let (banks, workload) = banks_at(9);
    for query in &workload {
        let answers = banks.search(query.text).expect("runs");
        let mut sigs: Vec<_> = answers.iter().map(|a| a.tree.signature()).collect();
        let before = sigs.len();
        sigs.sort();
        sigs.dedup();
        assert_eq!(before, sigs.len(), "{} produced duplicates", query.id);
    }
}

#[test]
fn excluded_link_relations_never_root_answers() {
    let (banks, workload) = banks_at(11);
    for query in &workload {
        for answer in banks.search(query.text).expect("runs") {
            let rid = banks.tuple_graph().rid(answer.tree.root);
            let name = banks.db().table(rid.relation).schema().name.clone();
            assert!(
                name != "Writes" && name != "Cites",
                "{}: answer rooted at excluded relation {name}",
                query.id
            );
        }
    }
}

#[test]
fn forward_strategy_also_covers_the_workload() {
    let (banks, workload) = banks_at(1);
    for query in &workload {
        let outcome = banks
            .search_with(query.text, SearchStrategy::Forward, banks.config())
            .expect("runs");
        assert!(
            !outcome.answers.is_empty(),
            "forward search empty for {}",
            query.id
        );
    }
}
