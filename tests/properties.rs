//! Property-based tests spanning crates: storage mutation fuzzing, CSV
//! round-trips over adversarial values, tokenizer laws, tree-signature
//! invariance, and whole-pipeline search invariants on random corpora.

use banks_core::{Banks, ConnectionTree};
use banks_datagen::dblp::{generate, DblpConfig};
use banks_graph::NodeId;
use banks_storage::csv::{load_csv_into, table_to_csv};
use banks_storage::{ColumnType, Database, RelationSchema, Tokenizer, Value};
use proptest::prelude::*;

// ---------- storage mutation fuzzing -------------------------------------

/// A randomized mutation against a two-relation database.
#[derive(Debug, Clone)]
enum Op {
    InsertParent(u16),
    InsertChild { id: u16, parent: u16 },
    DeleteParent(u16),
    DeleteChild(u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..32).prop_map(Op::InsertParent),
        (0u16..64, 0u16..32).prop_map(|(id, parent)| Op::InsertChild { id, parent }),
        (0u16..32).prop_map(Op::DeleteParent),
        (0u16..64).prop_map(Op::DeleteChild),
    ]
}

fn fuzz_db() -> Database {
    let mut db = Database::new("fuzz");
    db.create_relation(
        RelationSchema::builder("Parent")
            .column("Id", ColumnType::Int)
            .primary_key(&["Id"])
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_relation(
        RelationSchema::builder("Child")
            .column("Id", ColumnType::Int)
            .column("Parent", ColumnType::Int)
            .primary_key(&["Id"])
            .foreign_key(&["Parent"], "Parent")
            .build()
            .unwrap(),
    )
    .unwrap();
    db
}

proptest! {
    /// Whatever sequence of inserts and deletes is applied — including
    /// rejected ones — the catalog's invariants hold: link counts match a
    /// full rescan, indegrees match back-references, no dangling foreign
    /// keys, and RESTRICT prevents deleting referenced tuples.
    #[test]
    fn storage_invariants_under_mutation(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut db = fuzz_db();
        for op in ops {
            match op {
                Op::InsertParent(id) => {
                    let _ = db.insert("Parent", vec![Value::Int(id as i64)]);
                }
                Op::InsertChild { id, parent } => {
                    let _ = db.insert(
                        "Child",
                        vec![Value::Int(id as i64), Value::Int(parent as i64)],
                    );
                }
                Op::DeleteParent(id) => {
                    if let Some(rid) = db.relation("Parent").unwrap().lookup_pk(&[Value::Int(id as i64)]) {
                        let referenced = !db.referencing(rid).is_empty();
                        let result = db.delete(rid);
                        prop_assert_eq!(result.is_err(), referenced, "RESTRICT semantics");
                    }
                }
                Op::DeleteChild(id) => {
                    if let Some(rid) = db.relation("Child").unwrap().lookup_pk(&[Value::Int(id as i64)]) {
                        db.delete(rid).unwrap();
                    }
                }
            }
        }
        // Invariant 1: every child's FK resolves (no dangling links).
        let mut resolved_links = 0usize;
        for (rid, _) in db.relation("Child").unwrap().scan() {
            prop_assert!(db.resolve_fk(rid, 0).unwrap().is_some());
            resolved_links += 1;
        }
        // Invariant 2: link_count equals the rescan.
        prop_assert_eq!(db.link_count(), resolved_links);
        // Invariant 3: Σ indegree over parents == link count.
        let indegree_sum: usize = db
            .relation("Parent")
            .unwrap()
            .scan()
            .map(|(rid, _)| db.indegree(rid))
            .sum();
        prop_assert_eq!(indegree_sum, resolved_links);
        // Invariant 4: back-references point at live tuples that really
        // reference the target.
        for (rid, _) in db.relation("Parent").unwrap().scan() {
            for backref in db.referencing(rid) {
                let resolved = db.resolve_fk(backref.from, backref.fk_index).unwrap();
                prop_assert_eq!(resolved, Some(rid));
            }
        }
    }

    /// CSV round-trips survive adversarial text: quotes, commas, newlines,
    /// unicode, empty strings, and NULLs.
    #[test]
    fn csv_roundtrip_adversarial_values(
        rows in proptest::collection::vec(
            (any::<Option<String>>(), any::<Option<i64>>()),
            0..25
        )
    ) {
        let schema = || {
            let mut db = Database::new("t");
            db.create_relation(
                RelationSchema::builder("T")
                    .column("Id", ColumnType::Int)
                    .nullable_column("Text", ColumnType::Text)
                    .nullable_column("Num", ColumnType::Int)
                    .primary_key(&["Id"])
                    .build()
                    .unwrap(),
            )
            .unwrap();
            db
        };
        let mut db = schema();
        for (i, (text, num)) in rows.iter().enumerate() {
            db.insert(
                "T",
                vec![
                    Value::Int(i as i64),
                    text.clone().map(Value::Text).unwrap_or(Value::Null),
                    num.map(Value::Int).unwrap_or(Value::Null),
                ],
            )
            .unwrap();
        }
        let csv = table_to_csv(db.relation("T").unwrap());
        let mut reloaded = schema();
        let n = load_csv_into(&mut reloaded, "T", &csv).unwrap();
        prop_assert_eq!(n, rows.len());
        for (rid, tuple) in db.relation("T").unwrap().scan() {
            let key = vec![tuple.values()[0].clone()];
            let rid2 = reloaded.relation("T").unwrap().lookup_pk(&key).unwrap();
            prop_assert_eq!(
                db.tuple(rid).unwrap().values(),
                reloaded.tuple(rid2).unwrap().values()
            );
        }
    }

    /// Tokenizer laws: lowercase alphanumeric output, and re-tokenizing
    /// the joined tokens is the identity.
    #[test]
    fn tokenizer_laws(text in ".{0,120}") {
        let tokenizer = Tokenizer::new();
        let tokens = tokenizer.tokenize(&text);
        for t in &tokens {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(char::is_alphanumeric), "{t:?}");
            prop_assert_eq!(t.to_lowercase(), t.clone());
        }
        let rejoined = tokenizer.tokenize(&tokens.join(" "));
        prop_assert_eq!(rejoined, tokens);
    }

    /// Tree signatures are invariant under edge-direction flips and root
    /// relabeling — the §3 duplicate definition ("isomorphic modulo
    /// direction … even if the roots were different").
    #[test]
    fn tree_signature_direction_invariance(
        edges in proptest::collection::vec((0u32..12, 0u32..12, 1u32..5), 1..12),
        flips in proptest::collection::vec(any::<bool>(), 12),
        root_a in 0u32..12,
        root_b in 0u32..12,
    ) {
        let fwd: Vec<(NodeId, NodeId, f64)> = edges
            .iter()
            .map(|&(f, t, w)| (NodeId(f), NodeId(t), w as f64))
            .collect();
        let flipped: Vec<(NodeId, NodeId, f64)> = edges
            .iter()
            .zip(flips.iter().cycle())
            .map(|(&(f, t, w), &flip)| {
                if flip {
                    (NodeId(t), NodeId(f), w as f64)
                } else {
                    (NodeId(f), NodeId(t), w as f64)
                }
            })
            .collect();
        let a = ConnectionTree::new(NodeId(root_a), vec![], fwd);
        let b = ConnectionTree::new(NodeId(root_b), vec![], flipped);
        // Self-loops flip onto themselves; general edges flip direction —
        // either way the undirected signature is unchanged.
        prop_assert_eq!(a.signature(), b.signature());
    }
}

// ---------- whole-pipeline invariants on random corpora -------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Any two-token query built from indexed tokens returns valid,
    /// deduplicated, relevance-bounded answers on a random tiny corpus.
    #[test]
    fn random_queries_never_violate_answer_invariants(
        seed in 0u64..500,
        pick_a in 0usize..5000,
        pick_b in 0usize..5000,
    ) {
        let dataset = generate(DblpConfig::tiny(seed)).unwrap();
        let banks = Banks::new(dataset.db.clone()).unwrap();
        let mut tokens: Vec<String> = banks
            .text_index()
            .tokens()
            .map(|t| t.to_string())
            .collect();
        tokens.sort();
        let a = &tokens[pick_a % tokens.len()];
        let b = &tokens[pick_b % tokens.len()];
        let answers = banks.search(&format!("{a} {b}")).unwrap();
        let mut sigs = Vec::new();
        for answer in &answers {
            prop_assert!((0.0..=1.0).contains(&answer.relevance));
            prop_assert_eq!(answer.tree.keyword_nodes.len(), 2);
            sigs.push(answer.tree.signature());
            // Tree weight equals the sum of its edge weights.
            let sum: f64 = answer.tree.edges.iter().map(|e| e.2).sum();
            prop_assert!((sum - answer.tree.weight).abs() < 1e-9);
        }
        let before = sigs.len();
        sigs.sort();
        sigs.dedup();
        prop_assert_eq!(before, sigs.len(), "duplicate answers for `{} {}`", a, b);
    }
}
