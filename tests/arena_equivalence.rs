//! Property tests for the zero-allocation search kernel: a reused
//! [`SearchArena`] must be bit-for-bit equivalent to fresh allocation —
//! across random query streams, both strategies, and an ingest-driven
//! epoch/graph-size change — and exact top-k early termination must never
//! drop (or reorder) an answer the exhaustive run would have emitted.

use banks_core::{Banks, BanksConfig, SearchArena, SearchOutcome, SearchStrategy};
use banks_datagen::dblp::{generate, DblpConfig};
use banks_ingest::{DeltaBatch, SnapshotPublisher, TupleOp};
use banks_storage::Value;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// The tiny corpus, generated once per process (corpus generation is the
/// expensive part, and the instance is immutable).
fn tiny_banks() -> &'static Arc<Banks> {
    static BANKS: OnceLock<Arc<Banks>> = OnceLock::new();
    BANKS.get_or_init(|| {
        let dataset = generate(DblpConfig::tiny(1)).expect("tiny corpus generates");
        Arc::new(Banks::new(dataset.db).expect("banks builds"))
    })
}

/// A deterministic pool of indexed tokens to build random queries from.
fn token_pool(banks: &Banks) -> Vec<String> {
    let mut tokens: Vec<String> = banks.text_index().tokens().map(|t| t.to_string()).collect();
    tokens.sort();
    tokens
}

fn assert_outcomes_bit_identical(a: &SearchOutcome, b: &SearchOutcome, context: &str) {
    assert_eq!(a.stats, b.stats, "{context}: stats diverged");
    assert_eq!(
        a.answers.len(),
        b.answers.len(),
        "{context}: answer count diverged"
    );
    for (x, y) in a.answers.iter().zip(&b.answers) {
        assert_eq!(x.tree, y.tree, "{context}: tree diverged");
        assert_eq!(
            x.relevance.to_bits(),
            y.relevance.to_bits(),
            "{context}: relevance bits diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N random queries through one reused arena produce bit-identical
    /// `SearchOutcome`s (answers, scores, stats) to fresh-allocation
    /// runs, under both strategies and random result limits — including
    /// after an ingest-driven epoch change grows the graph under the
    /// same arena.
    #[test]
    fn arena_reuse_equivalence(
        picks in proptest::collection::vec((0usize..5000, 0usize..5000, 1usize..4, proptest::bool::ANY, 1usize..12), 3..10),
        seed in 0u32..1000,
    ) {
        let base = tiny_banks();
        let tokens = token_pool(base);
        let mut arena = SearchArena::new();

        // Phase 1: the published base snapshot.
        let run_stream = |banks: &Banks, arena: &mut SearchArena, salt: usize| {
            for &(i, j, n_terms, forward, limit) in &picks {
                let mut text = tokens[(i + salt) % tokens.len()].clone();
                if n_terms >= 2 {
                    text.push(' ');
                    text.push_str(&tokens[(j + salt) % tokens.len()]);
                }
                if n_terms >= 3 {
                    text.push(' ');
                    text.push_str(&tokens[(i + j + salt) % tokens.len()]);
                }
                let strategy = if forward { SearchStrategy::Forward } else { SearchStrategy::Backward };
                let mut config: BanksConfig = banks.config().clone();
                config.search.max_results = limit;
                let query = banks.parse(&text).unwrap();
                let reused = banks.search_parsed_in(&query, strategy, &config, arena).unwrap();
                let fresh = banks
                    .search_parsed_in(&query, strategy, &config, &mut SearchArena::new())
                    .unwrap();
                assert_outcomes_bit_identical(&fresh, &reused, &format!("query `{text}` ({strategy:?})"));
            }
        };
        run_stream(base, &mut arena, 0);

        // Phase 2: publish a delta (new author + paper + link) so the
        // graph's node count changes, then keep using the SAME arena.
        let mut publisher = SnapshotPublisher::new(Arc::clone(base));
        let author_id = format!("ArenaProp{seed}");
        let paper_id = format!("arenaprop{seed}");
        let batch = DeltaBatch {
            ops: vec![
                TupleOp::Insert {
                    relation: "Author".into(),
                    values: vec![Value::text(&author_id), Value::text("Arena Prop")],
                },
                TupleOp::Insert {
                    relation: "Paper".into(),
                    values: vec![
                        Value::text(&paper_id),
                        Value::text("Arena Equivalence Under Epoch Change"),
                    ],
                },
                TupleOp::Insert {
                    relation: "Writes".into(),
                    values: vec![Value::text(&author_id), Value::text(&paper_id)],
                },
            ],
        };
        let published = publisher.publish(&batch, None).expect("publish succeeds");
        prop_assert!(published.banks.tuple_graph().node_count() > base.tuple_graph().node_count());
        run_stream(&published.banks, &mut arena, 7);

        // The new tuples are reachable through the reused arena too.
        let outcome = published.banks.search_outcome_in("equivalence epoch", &mut arena).unwrap();
        prop_assert!(!outcome.answers.is_empty());
    }

    /// Early termination is exact: against the exhaustive run
    /// (`early_termination: false`) the emitted answers are identical —
    /// same trees, same relevance bits, same order — so no answer the
    /// exhaustive run would have put in the top `max_results` is ever
    /// dropped. Random limits keep both the firing regime (small k, high
    /// cutoff) and the non-firing regime covered.
    #[test]
    fn early_termination_never_drops_answers(
        picks in proptest::collection::vec((0usize..5000, 0usize..5000, proptest::bool::ANY), 4..12),
        limit in 1usize..12,
    ) {
        let banks = tiny_banks();
        let tokens = token_pool(banks);
        let mut arena = SearchArena::new();
        let mut fired = 0usize;
        for &(i, j, three) in &picks {
            let mut text = format!("{} {}", tokens[i % tokens.len()], tokens[j % tokens.len()]);
            if three {
                text.push(' ');
                text.push_str(&tokens[(i * 31 + j) % tokens.len()]);
            }
            let query = banks.parse(&text).unwrap();
            let mut config: BanksConfig = banks.config().clone();
            config.search.max_results = limit;
            let early = banks
                .search_parsed_in(&query, SearchStrategy::Backward, &config, &mut arena)
                .unwrap();
            let mut exhaustive_config = config.clone();
            exhaustive_config.search.early_termination = false;
            let exhaustive = banks
                .search_parsed_in(&query, SearchStrategy::Backward, &exhaustive_config, &mut arena)
                .unwrap();
            prop_assert_eq!(exhaustive.stats.early_terminations, 0);
            prop_assert!(early.stats.pops <= exhaustive.stats.pops);
            fired += early.stats.early_terminations;
            // Answer-for-answer identical, ranking ties included.
            prop_assert_eq!(early.answers.len(), exhaustive.answers.len(), "count for `{}`", text);
            for (a, b) in early.answers.iter().zip(&exhaustive.answers) {
                prop_assert_eq!(&a.tree, &b.tree, "tree for `{}`", text);
                prop_assert_eq!(a.relevance.to_bits(), b.relevance.to_bits(), "score for `{}`", text);
            }
        }
        // Not asserted per-case (firing depends on the draw), but keep
        // the counter observable for debugging.
        let _ = fired;
    }
}

/// Deterministic (non-proptest) regression: the bound actually fires on a
/// top-1 query over the tiny corpus and saves work while returning the
/// identical answer.
#[test]
fn early_termination_fires_and_saves_pops_at_top1() {
    let banks = tiny_banks();
    let tokens = token_pool(banks);
    let mut arena = SearchArena::new();
    let mut fired = 0usize;
    let mut total = 0usize;
    for i in 0..tokens.len().min(300) {
        let text = format!("{} {}", tokens[i], tokens[(i * 17 + 3) % tokens.len()]);
        let query = banks.parse(&text).unwrap();
        let mut config = banks.config().clone();
        config.search.max_results = 1;
        let early = banks
            .search_parsed_in(&query, SearchStrategy::Backward, &config, &mut arena)
            .unwrap();
        let mut exhaustive_config = config.clone();
        exhaustive_config.search.early_termination = false;
        let exhaustive = banks
            .search_parsed_in(
                &query,
                SearchStrategy::Backward,
                &exhaustive_config,
                &mut arena,
            )
            .unwrap();
        assert_eq!(early.answers.len(), exhaustive.answers.len());
        for (a, b) in early.answers.iter().zip(&exhaustive.answers) {
            assert_eq!(a.tree.signature(), b.tree.signature());
            assert_eq!(a.relevance.to_bits(), b.relevance.to_bits());
        }
        if early.stats.early_terminations > 0 {
            fired += 1;
            assert!(
                early.stats.pops < exhaustive.stats.pops,
                "a fired bound must have saved pops for `{text}`"
            );
        }
        total += 1;
    }
    assert!(
        fired > 0,
        "the bound never fired across {total} top-1 queries — it has regressed into a no-op"
    );
}
