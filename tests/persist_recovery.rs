//! Crash-recovery integration tests for `banks-persist`.
//!
//! * A property test proving snapshot → WAL-replay reconstructs the
//!   in-memory post-ingest state **bit for bit**: epoch, tuples and
//!   their slots, graph node weights and edges, text-index postings,
//!   and ranked query results.
//! * A loopback "kill -9" simulation: a real HTTP server acks
//!   `POST /ingest` batches and is then torn down with **no** graceful
//!   snapshot; a second server recovered from the same `--data-dir`
//!   must serve the exact epoch and identical query results. (The CI
//!   recovery suite repeats this with a real `kill -9` against the
//!   `banks serve` binary.)
//! * Torn-tail behavior at the store level: a partial append past the
//!   last acked frame is truncated, never replayed, never fatal.

use banks_core::{Banks, BanksConfig};
use banks_datagen::dblp::{generate, DblpConfig};
use banks_datagen::rng::Rng;
use banks_ingest::{DeltaBatch, SnapshotPublisher, TupleOp};
use banks_persist::{PersistOptions, PersistentStore};
use banks_server::{BanksServer, IngestEndpoint, QueryService, ServerConfig, ServiceConfig};
use banks_storage::Value;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "banks_recovery_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic batch generator: inserts new authors writing existing
/// papers, renames previously inserted authors, and deletes previously
/// inserted links+authors — every op kind the delta log supports.
struct BatchGen {
    rng: Rng,
    paper_ids: Vec<String>,
    /// Authors inserted so far and still present: (id, has_link).
    minted: Vec<(String, bool)>,
    serial: usize,
}

impl BatchGen {
    fn new(seed: u64, banks: &Banks) -> BatchGen {
        let paper_ids = banks
            .db()
            .relation("Paper")
            .expect("dblp has Paper")
            .scan()
            .map(|(_, t)| t.values()[0].as_text().expect("text pk").to_string())
            .collect();
        BatchGen {
            rng: Rng::new(seed),
            paper_ids,
            minted: Vec::new(),
            serial: 0,
        }
    }

    fn next_batch(&mut self) -> DeltaBatch {
        let mut ops = Vec::new();
        for _ in 0..self.rng.range(1, 4) {
            let id = format!("rec-{}", self.serial);
            self.serial += 1;
            ops.push(TupleOp::Insert {
                relation: "Author".into(),
                values: vec![
                    Value::text(&id),
                    Value::text(format!("Recovered Author {id}")),
                ],
            });
            let linked = self.rng.chance(0.8);
            if linked {
                let paper = self.rng.pick(&self.paper_ids).clone();
                ops.push(TupleOp::Insert {
                    relation: "Writes".into(),
                    values: vec![Value::text(&id), Value::text(paper)],
                });
            }
            self.minted.push((id, linked));
        }
        // Rename one earlier author.
        if !self.minted.is_empty() && self.rng.chance(0.5) {
            let (id, _) = self.rng.pick(&self.minted).clone();
            ops.push(TupleOp::Update {
                relation: "Author".into(),
                key: vec![Value::text(&id)],
                set: vec![(
                    "AuthorName".into(),
                    Value::text(format!("Renamed {} v{}", id, self.serial)),
                )],
            });
        }
        // Delete one earlier author (links first — ops apply in order).
        if self.minted.len() > 1 && self.rng.chance(0.3) {
            let at = self.rng.range(0, self.minted.len());
            let (id, linked) = self.minted.remove(at);
            if linked {
                // The link's paper key is whatever it was inserted with;
                // deleting by the author side requires knowing the paper.
                // Deletes of linked authors are skipped — deleting only
                // unlinked ones keeps the generator stateless about
                // which paper each link used.
                self.minted.insert(at, (id, linked));
            } else {
                ops.push(TupleOp::Delete {
                    relation: "Author".into(),
                    key: vec![Value::text(&id)],
                });
            }
        }
        DeltaBatch { ops }
    }
}

/// Assert two systems are bit-for-bit interchangeable: database slots,
/// graph, text index, and ranked results.
fn assert_identical(live: &Banks, recovered: &Banks, queries: &[&str]) {
    // Tuples, slot-exact.
    assert_eq!(live.db().total_tuples(), recovered.db().total_tuples());
    assert_eq!(live.db().link_count(), recovered.db().link_count());
    for (a, b) in live.db().relations().zip(recovered.db().relations()) {
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.slot_count(), b.slot_count(), "{}", a.schema().name);
        let av: Vec<_> = a.scan().collect();
        let bv: Vec<_> = b.scan().collect();
        assert_eq!(av, bv, "slot drift in {}", a.schema().name);
    }
    // Graph: nodes, weights, edges — bit-exact (f64::to_bits).
    let (g, h) = (live.tuple_graph().graph(), recovered.tuple_graph().graph());
    assert_eq!(g.node_count(), h.node_count());
    assert_eq!(g.edge_count(), h.edge_count());
    for v in g.nodes() {
        assert_eq!(
            g.node_weight(v).to_bits(),
            h.node_weight(v).to_bits(),
            "node weight {v:?}"
        );
        let ge: Vec<_> = g.out_edges(v).map(|(t, w)| (t, w.to_bits())).collect();
        let he: Vec<_> = h.out_edges(v).map(|(t, w)| (t, w.to_bits())).collect();
        assert_eq!(ge, he, "out edges of {v:?}");
    }
    // Text index: every token's postings.
    assert_eq!(
        live.text_index().distinct_tokens(),
        recovered.text_index().distinct_tokens()
    );
    assert_eq!(
        live.text_index().posting_count(),
        recovered.text_index().posting_count()
    );
    for token in live.text_index().tokens() {
        assert_eq!(
            live.text_index().lookup(token),
            recovered.text_index().lookup(token),
            "postings for {token}"
        );
    }
    // Ranked results.
    for q in queries {
        let a = live.search(q).unwrap();
        let b = recovered.search(q).unwrap();
        assert_eq!(a.len(), b.len(), "{q}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tree.signature(), y.tree.signature(), "{q}");
            assert_eq!(x.relevance.to_bits(), y.relevance.to_bits(), "{q}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshot → WAL-replay equals the in-memory post-ingest state, for
    /// random batch streams and a random mid-stream snapshot roll.
    #[test]
    fn recovered_state_is_bit_identical(
        seed in 0u64..1_000_000,
        batches in 1usize..6,
        roll_at in 0usize..6,
    ) {
        let dir = tmp_dir(&format!("prop_{seed}_{batches}_{roll_at}"));
        let config = BanksConfig::default();
        let dataset = generate(DblpConfig::tiny(seed % 17 + 1)).expect("datagen");
        let base = Arc::new(Banks::new(dataset.db.clone()).expect("banks"));

        let live = {
            let (store, recovery) =
                PersistentStore::open(&dir, &config, PersistOptions::default()).unwrap();
            prop_assert!(recovery.banks.is_none());
            store.save_snapshot(&base, 0).unwrap();
            let mut publisher = SnapshotPublisher::with_epoch(Arc::clone(&base), 0);
            publisher.set_durability_hook(store.wal_hook());
            let mut generator = BatchGen::new(seed, &base);
            for i in 0..batches {
                let batch = generator.next_batch();
                let published = publisher.publish(&batch, None).unwrap();
                if i == roll_at {
                    // A mid-stream snapshot: recovery must combine
                    // bundle load + replay of the remaining frames.
                    store.save_snapshot(&published.banks, published.info.epoch).unwrap();
                }
            }
            prop_assert_eq!(publisher.epoch(), batches as u64);
            publisher.current()
            // store drops here — no graceful teardown beyond Drop.
        };

        let (_store, recovery) =
            PersistentStore::open(&dir, &config, PersistOptions::default()).unwrap();
        prop_assert_eq!(recovery.epoch, batches as u64);
        let recovered = recovery.banks.expect("recovered");
        assert_identical(&live, &recovered, &["recovered", "mohan", "author recovered"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Loopback crash simulation over real HTTP.
// ---------------------------------------------------------------------------

fn http(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    http(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"),
    )
}

fn http_post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        ),
    )
}

fn json_u64(body: &str, field: &str) -> Option<u64> {
    let idx = body.find(&format!("\"{field}\":"))?;
    let rest = &body[idx + field.len() + 3..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Build a durable server over `dir`, mirroring `banks serve --data-dir`.
fn durable_server(dir: &std::path::Path) -> (Arc<QueryService>, BanksServer, Arc<PersistentStore>) {
    let config = BanksConfig::default();
    let (store, recovery) =
        PersistentStore::open(dir, &config, PersistOptions::default()).expect("open store");
    let (banks, epoch) = match recovery.banks {
        Some(banks) => (banks, recovery.epoch),
        None => {
            let dataset = generate(DblpConfig::tiny(1)).expect("datagen");
            let banks = Arc::new(Banks::new(dataset.db.clone()).expect("banks"));
            store.save_snapshot(&banks, 0).expect("initial snapshot");
            (banks, 0)
        }
    };
    let service = Arc::new(QueryService::with_epoch(
        Arc::clone(&banks),
        epoch,
        ServiceConfig::default(),
    ));
    let mut publisher = SnapshotPublisher::with_epoch(banks, epoch);
    publisher.set_durability_hook(store.wal_hook());
    let ingest =
        IngestEndpoint::with_publisher(Arc::clone(&service), publisher, Some(Arc::clone(&store)));
    let server = BanksServer::bind_with_ingest(
        Arc::clone(&service),
        Some(ingest),
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    (service, server, store)
}

#[test]
fn acked_ingest_survives_ungraceful_death() {
    let dir = tmp_dir("loopback");

    // First life: ack two ingest batches over real HTTP, then die with
    // no graceful snapshot (exactly what kill -9 leaves behind: the
    // initial bundle + two WAL frames).
    let (mohan_before, ingested_before, epoch_before) = {
        let (_service, server, _store) = durable_server(&dir);
        let addr = server.local_addr();
        for (i, tag) in ["alpha", "beta"].iter().enumerate() {
            let body = format!(
                r#"{{"ops":[{{"op":"insert","relation":"Author","values":["wal-{tag}","Walled Author {tag}"]}}]}}"#
            );
            let (status, resp) = http_post(addr, &format!("/ingest?ts=t{i}"), &body);
            assert_eq!(status, 200, "{resp}");
            assert_eq!(json_u64(&resp, "epoch"), Some(i as u64 + 1));
        }
        // The acked writes are queryable and the WAL holds both frames.
        let (status, stats) = http_get(addr, "/stats");
        assert_eq!(status, 200);
        assert!(stats.contains(r#""persistence""#), "{stats}");
        assert_eq!(json_u64(&stats, "wal_batches"), Some(2), "{stats}");
        let (_, mohan) = http_get(addr, "/search?q=mohan");
        let (status, walled) = http_get(addr, "/search?q=walled");
        assert_eq!(status, 200);
        assert_eq!(json_u64(&walled, "count"), Some(2), "{walled}");
        let epoch = json_u64(&walled, "epoch").unwrap();
        assert_eq!(epoch, 2);
        server.shutdown();
        (mohan, walled, epoch)
        // store + service drop with no snapshot written.
    };

    // Second life: recovery must land on the exact epoch and serve
    // byte-identical answer sets.
    let (_service, server, store) = durable_server(&dir);
    let addr = server.local_addr();
    let stats = store.stats();
    assert_eq!(stats.recovered_epoch, Some(epoch_before));
    assert_eq!(stats.replayed_batches, 2);

    let (status, walled) = http_get(addr, "/search?q=walled");
    assert_eq!(status, 200);
    assert_eq!(json_u64(&walled, "epoch"), Some(epoch_before), "{walled}");
    assert_eq!(
        json_u64(&walled, "count"),
        json_u64(&ingested_before, "count"),
        "{walled}"
    );
    // The rendered connection trees — the full answer payload — match.
    let strip_volatile = |body: &str| {
        let at = body.find(r#""count""#).expect("count field");
        body[at..].to_string()
    };
    assert_eq!(strip_volatile(&walled), strip_volatile(&ingested_before));
    let (_, mohan) = http_get(addr, "/search?q=mohan");
    assert_eq!(strip_volatile(&mohan), strip_volatile(&mohan_before));

    // /stats reports the recovery.
    let (_, stats_body) = http_get(addr, "/stats");
    assert!(
        stats_body.contains(r#""recovered_epoch":2"#),
        "{stats_body}"
    );
    assert!(
        stats_body.contains(r#""replayed_batches":2"#),
        "{stats_body}"
    );

    server.shutdown();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// WAL append faults (only with `--features fault-injection`): the ack
// contract at the store level. An ack is never lost; a failed ack is
// never applied — not in memory, not on disk, not after recovery.
// ---------------------------------------------------------------------------

#[cfg(feature = "fault-injection")]
mod wal_faults {
    use super::*;
    use banks_util::fault::{self, FaultPoint};

    /// The fault registry is process-global; these tests must not overlap.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn author_batch(id: &str) -> DeltaBatch {
        DeltaBatch {
            ops: vec![TupleOp::Insert {
                relation: "Author".into(),
                values: vec![Value::text(id), Value::text(format!("Faulted Author {id}"))],
            }],
        }
    }

    /// A store + publisher pair over `dir`, seeded with the tiny corpus.
    fn durable_publisher(dir: &std::path::Path) -> (Arc<PersistentStore>, SnapshotPublisher) {
        let config = BanksConfig::default();
        let (store, recovery) =
            PersistentStore::open(dir, &config, PersistOptions::default()).expect("open store");
        let (banks, epoch) = match recovery.banks {
            Some(banks) => (banks, recovery.epoch),
            None => {
                let dataset = generate(DblpConfig::tiny(1)).expect("datagen");
                let banks = Arc::new(Banks::new(dataset.db.clone()).expect("banks"));
                store.save_snapshot(&banks, 0).expect("initial snapshot");
                (banks, 0)
            }
        };
        let mut publisher = SnapshotPublisher::with_epoch(banks, epoch);
        publisher.set_durability_hook(store.wal_hook());
        (store, publisher)
    }

    #[test]
    fn fsync_fault_fails_the_ack_and_leaves_no_trace() {
        let _guard = serial();
        fault::clear();
        let dir = tmp_dir("fsync_fault");
        {
            let (_store, mut publisher) = durable_publisher(&dir);
            publisher
                .publish(&author_batch("kept"), None)
                .expect("clean publish");

            fault::arm("wal.append.fsync", FaultPoint::ReturnErr, 1.0, 5);
            let err = publisher.publish(&author_batch("lost"), None);
            assert!(err.is_err(), "a failed fsync must fail the ack");
            // The failed publish is invisible in memory: epoch untouched,
            // the author absent from the serving snapshot.
            assert_eq!(publisher.epoch(), 1);
            assert!(publisher
                .current()
                .search("lost")
                .expect("search")
                .is_empty());
            fault::clear();

            // The writer rolled the partial frame back — the very next
            // append lands on a clean boundary and succeeds.
            publisher
                .publish(&author_batch("after"), None)
                .expect("post-fault publish");
            assert_eq!(publisher.epoch(), 2);
        }
        // Recovery agrees: the failed ack never happened.
        let (_store, recovery) =
            PersistentStore::open(&dir, &BanksConfig::default(), PersistOptions::default())
                .expect("reopen");
        assert_eq!(recovery.epoch, 2);
        let recovered = recovery.banks.expect("recovered");
        assert_eq!(recovered.search("kept").expect("search").len(), 1);
        assert_eq!(recovered.search("after").expect("search").len(), 1);
        assert!(recovered.search("lost").expect("search").is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_append_rolls_back_to_the_acked_boundary() {
        let _guard = serial();
        fault::clear();
        let dir = tmp_dir("torn_fault");
        let live = {
            let (_store, mut publisher) = durable_publisher(&dir);
            publisher
                .publish(&author_batch("first"), None)
                .expect("clean publish");
            let acked_len = std::fs::metadata(dir.join("wal.log")).expect("wal").len();

            // Every append tears mid-frame until cleared: each attempt
            // must fail the ack AND truncate back to the acked prefix,
            // byte for byte.
            fault::arm("wal.append.write", FaultPoint::TornWrite, 1.0, 17);
            for attempt in 0..3 {
                assert!(
                    publisher.publish(&author_batch("torn"), None).is_err(),
                    "attempt {attempt}"
                );
                assert_eq!(
                    std::fs::metadata(dir.join("wal.log")).expect("wal").len(),
                    acked_len,
                    "attempt {attempt} left partial bytes past the acked frame"
                );
            }
            assert_eq!(fault::fired("wal.append.write"), 3);
            fault::clear();

            publisher
                .publish(&author_batch("second"), None)
                .expect("post-fault publish");
            assert_eq!(publisher.epoch(), 2);
            publisher.current()
        };
        // Recovery replays exactly the two acked frames, bit-identical.
        let (_store, recovery) =
            PersistentStore::open(&dir, &BanksConfig::default(), PersistOptions::default())
                .expect("reopen");
        assert_eq!(recovery.epoch, 2);
        let recovered = recovery.banks.expect("recovered");
        assert!(recovered.search("torn").expect("search").is_empty());
        assert_identical(&live, &recovered, &["faulted", "first second", "mohan"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn torn_wal_tail_past_acked_frames_is_dropped() {
    let dir = tmp_dir("torn_store");

    // Ack one batch, then corrupt the log tail with a partial frame —
    // what a crash mid-append leaves when the client never got its ack.
    {
        let (_service, server, _store) = durable_server(&dir);
        let addr = server.local_addr();
        let (status, _) = http_post(
            addr,
            "/ingest",
            r#"{"ops":[{"op":"insert","relation":"Author","values":["wal-keep","Kept Author"]}]}"#,
        );
        assert_eq!(status, 200);
        server.shutdown();
    }
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0x42, 0x00, 0x00, 0x00, 0xde, 0xad]); // garbage partial frame
    std::fs::write(&wal, &bytes).unwrap();

    let (_service, server, store) = durable_server(&dir);
    let stats = store.stats();
    assert_eq!(
        stats.recovered_epoch,
        Some(1),
        "only the acked frame counts"
    );
    assert!(stats.truncated_wal_bytes > 0);
    let (status, body) = http_get(server.local_addr(), "/search?q=kept");
    assert_eq!(status, 200);
    assert_eq!(json_u64(&body, "count"), Some(1), "{body}");
    server.shutdown();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
