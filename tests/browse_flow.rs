//! Search → browse hand-off: find an answer with keyword search, then
//! explore its information node with the §4 browsing layer (the paper's
//! combined "browsing and keyword searching" experience).

use banks_browse::{html, Hyperlink, Session};
use banks_core::Banks;
use banks_datagen::dblp::{generate, DblpConfig};
use banks_datagen::thesis::{generate as thesis_generate, ThesisConfig};
use banks_eval::workload::dblp_eval_config;
use banks_storage::Predicate;

#[test]
fn search_then_browse_the_information_node() {
    let dataset = generate(DblpConfig::tiny(1)).unwrap();
    let banks = Banks::with_config(dataset.db.clone(), dblp_eval_config()).unwrap();

    // 1. Keyword search.
    let answers = banks.search("soumen sunita").unwrap();
    let root_rid = banks.tuple_graph().rid(answers[0].tree.root);
    assert_eq!(
        banks.db().table(root_rid.relation).schema().name,
        "Paper",
        "information node is the co-authored paper"
    );

    // 2. Browse from the information node: who references this paper?
    let session = Session::open(&dataset.db, "Paper").unwrap();
    let menu = session.backref_menu(root_rid);
    let writes_entry = menu
        .iter()
        .find(|e| e.relation_name == "Writes")
        .expect("papers are referenced by Writes");
    assert!(writes_entry.count >= 2, "both authors' Writes tuples");

    // 3. Follow the backward link: the filtered Writes view lists exactly
    //    the referencing tuples.
    let mut session = Session::open(&dataset.db, "Paper").unwrap();
    session
        .view_backrefs(root_rid, writes_entry.relation, writes_entry.fk_index)
        .unwrap();
    let view = session.render().unwrap();
    assert_eq!(view.total_rows, writes_entry.count);

    // 4. Every AuthorId cell in that view links onward to an Author tuple.
    for row in &view.rows {
        match &row[0].link {
            Some(Hyperlink::Tuple(rid)) => {
                assert_eq!(dataset.db.table(rid.relation).schema().name, "Author");
            }
            other => panic!("expected author link, got {other:?}"),
        }
    }
}

#[test]
fn browse_controls_compose_with_selections() {
    let dataset = thesis_generate(ThesisConfig::tiny(2)).unwrap();
    let mut session = Session::open(&dataset.db, "Thesis").unwrap();
    // Select theses mentioning "computer", join the student, sort by title.
    session.select(1, Predicate::Contains("computer".into()));
    session.join(0);
    session.sort(1, true);
    let view = session.render().unwrap();
    assert!(view.total_rows > 0);
    assert!(view.columns.contains(&"Student.StudentName".to_string()));
    let titles: Vec<&str> = view.rows.iter().map(|r| r[1].text.as_str()).collect();
    let mut sorted = titles.clone();
    sorted.sort();
    assert_eq!(titles, sorted);
    for row in &view.rows {
        assert!(row[1].text.to_lowercase().contains("computer"));
    }
    // The whole view renders to HTML with links intact.
    let page = html::render_view(&view);
    assert!(page.contains("banks://"));
}

#[test]
fn history_survives_a_full_navigation_loop() {
    let dataset = thesis_generate(ThesisConfig::tiny(3)).unwrap();
    let mut session = Session::open(&dataset.db, "Student").unwrap();
    session.group_by(2);
    let grouped = session.render().unwrap();
    let link = grouped.rows[0][0].link.clone().unwrap();
    session.follow(&link).unwrap();
    session.drop_column(3);
    // back through: drop → drill → group → start
    assert!(session.back());
    assert!(session.back());
    assert!(session.back());
    assert!(!session.back());
    let start = session.render().unwrap();
    assert_eq!(start.title, "Student");
    assert_eq!(start.columns.len(), 4);
}
