//! Chaos suite: the whole stack under deterministic injected faults.
//!
//! Compiled against the real fault registry only with the
//! `fault-injection` feature:
//!
//! ```text
//! cargo test -p banks-testsuite --test chaos --features fault-injection
//! ```
//!
//! Three scenarios, mirroring the failure modes the serving stack
//! promises to absorb:
//!
//! 1. **Durability under WAL faults** — a live HTTP server acks ingest
//!    batches while `wal.append.fsync` errors and `wal.append.write`
//!    torn writes fire; after an ungraceful death, recovery must hold
//!    the ack contract exactly: every acked batch survives, every
//!    failed ack is absent, answers are byte-identical.
//! 2. **Paged storage faults** — bundle section reads fail loudly at
//!    open (typed error, not corruption); page-in delays never change
//!    answers; page-in I/O errors panic (loud) instead of serving
//!    wrong bytes. The tuple-block lane (`data.block.read`) holds the
//!    same contract for the lazy DATA section.
//! 3. **Network chaos through the cluster** — leader + follower +
//!    router with `http.connect` / `http.read` faults firing on every
//!    internal hop: the client-visible error rate stays bounded, no
//!    acked write is lost, and the follower converges to bit-identical
//!    answers once the network heals.
//!
//! Every fault stream is seeded, so a failure reproduces exactly.
#![cfg(feature = "fault-injection")]

use banks_core::{Banks, BanksConfig};
use banks_datagen::dblp::{generate, DblpConfig};
use banks_ingest::SnapshotPublisher;
use banks_persist::{PersistOptions, PersistentStore};
use banks_replica::{Replica, ReplicaConfig};
use banks_router::{Router, RouterConfig};
use banks_server::{BanksServer, IngestEndpoint, QueryService, ServerConfig, ServiceConfig};
use banks_util::fault::{self, FaultPoint};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The fault registry is process-global; scenarios must not overlap.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "banks_chaos_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// Raw-TCP HTTP client: the test must NOT use `banks_util::http`, or the
// armed `http.connect` / `http.read` points would fire on the test's
// own requests and the measured error rate would include self-inflicted
// client faults.
fn http(addr: SocketAddr, request: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    stream.write_all(request.as_bytes()).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let status = response.split_whitespace().nth(1)?.parse().ok()?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Some((status, body))
}

fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    http(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
    )
    .unwrap_or((0, String::new()))
}

fn http_post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        ),
    )
    .unwrap_or((0, String::new()))
}

fn json_u64(body: &str, field: &str) -> Option<u64> {
    let idx = body.find(&format!("\"{field}\":"))?;
    let rest = &body[idx + field.len() + 3..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn ingest_body(id: &str) -> String {
    format!(
        r#"{{"ops":[{{"op":"insert","relation":"Author","values":["{id}","Chaos Author {id}"]}}]}}"#
    )
}

fn wait_for(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A durable leader over `dir`, mirroring `banks serve --data-dir`.
fn durable_server(dir: &Path) -> (Arc<QueryService>, BanksServer, Arc<PersistentStore>) {
    let config = BanksConfig::default();
    let (store, recovery) =
        PersistentStore::open(dir, &config, PersistOptions::default()).expect("open store");
    let (banks, epoch) = match recovery.banks {
        Some(banks) => (banks, recovery.epoch),
        None => {
            let dataset = generate(DblpConfig::tiny(3)).expect("datagen");
            let banks = Arc::new(Banks::new(dataset.db.clone()).expect("banks"));
            store.save_snapshot(&banks, 0).expect("initial snapshot");
            (banks, 0)
        }
    };
    let service = Arc::new(QueryService::with_epoch(
        Arc::clone(&banks),
        epoch,
        ServiceConfig::default(),
    ));
    let mut publisher = SnapshotPublisher::with_epoch(banks, epoch);
    publisher.set_durability_hook(store.wal_hook());
    let ingest =
        IngestEndpoint::with_publisher(Arc::clone(&service), publisher, Some(Arc::clone(&store)));
    let server = BanksServer::bind_full(
        Arc::clone(&service),
        Some(ingest),
        Some(Arc::clone(&store)),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind leader");
    (service, server, store)
}

/// Ranked answers must be fingerprint-identical across two services.
fn assert_same_answers(a: &QueryService, b: &QueryService, q: &str) {
    let x = a.search(q, Default::default()).expect("search a");
    let y = b.search(q, Default::default()).expect("search b");
    if x.result.answers.len() != y.result.answers.len() {
        // Enough context to diagnose a flake from the CI log alone.
        eprintln!(
            "MISMATCH {q}: a cached={} epoch={} {:?} vs b cached={} epoch={} {:?}",
            x.cached,
            x.epoch,
            x.result
                .answers
                .iter()
                .map(|p| (p.tree.signature(), p.relevance))
                .collect::<Vec<_>>(),
            y.cached,
            y.epoch,
            y.result
                .answers
                .iter()
                .map(|p| (p.tree.signature(), p.relevance))
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(x.result.answers.len(), y.result.answers.len(), "{q}");
    for (p, r) in x.result.answers.iter().zip(&y.result.answers) {
        assert_eq!(p.tree.signature(), r.tree.signature(), "{q}");
        assert_eq!(p.relevance.to_bits(), r.relevance.to_bits(), "{q}");
    }
}

/// Scenario 1: WAL fsync errors + torn frame writes under live HTTP
/// ingest, then an ungraceful death. The ack contract must hold exactly
/// on recovery — acked batches all present, failed acks all absent.
#[test]
fn wal_faults_never_lose_an_acked_write_or_apply_a_failed_one() {
    let _guard = serial();
    let dir = tmp_dir("wal");

    let (acked, nacked, walled_before) = {
        let (_service, server, _store) = durable_server(&dir);
        let addr = server.local_addr();
        fault::arm("wal.append.fsync", FaultPoint::ReturnErr, 0.35, 42);
        fault::arm("wal.append.write", FaultPoint::TornWrite, 0.25, 7);

        let mut acked = Vec::new();
        let mut nacked = Vec::new();
        for i in 0..24u32 {
            let id = format!("chaos-{i}");
            let (status, body) = http_post(addr, "/ingest", &ingest_body(&id));
            if status == 200 {
                // Each ack's epoch must be the next in sequence: failed
                // appends never advance the published state.
                assert_eq!(
                    json_u64(&body, "epoch"),
                    Some(acked.len() as u64 + 1),
                    "{body}"
                );
                acked.push(id);
            } else {
                // Ingest failures are 409s; a WAL fault must say so
                // explicitly, not masquerade as a validation error.
                assert_eq!(status, 409, "unexpected status for a WAL fault: {body}");
                assert!(body.contains("durability failure"), "{body}");
                nacked.push(id);
            }
        }
        // The seeded streams must actually exercise both branches.
        assert!(fault::fired("wal.append.fsync") > 0, "fsync faults fired");
        assert!(fault::fired("wal.append.write") > 0, "torn writes fired");
        assert!(acked.len() >= 4, "some acks: {acked:?}");
        assert!(nacked.len() >= 4, "some failures: {nacked:?}");

        fault::clear();
        let (_, walled) = http_get(addr, "/search?q=chaos");
        server.shutdown();
        (acked, nacked, walled)
        // Ungraceful: no snapshot roll, just Drop.
    };

    // Recovery: exact epoch, every acked author, no nacked author.
    let (service, server, store) = durable_server(&dir);
    assert_eq!(store.stats().recovered_epoch, Some(acked.len() as u64));
    for id in &acked {
        let result = service.search(id, Default::default()).expect("search");
        assert_eq!(result.result.answers.len(), 1, "acked {id} lost");
    }
    for id in &nacked {
        let result = service.search(id, Default::default()).expect("search");
        assert!(
            result.result.answers.is_empty(),
            "failed ack {id} was applied"
        );
    }
    // The full rendered answer payload is byte-identical to pre-crash.
    let (_, walled_after) = http_get(server.local_addr(), "/search?q=chaos");
    let strip = |body: &str| body[body.find(r#""count""#).expect("count")..].to_string();
    assert_eq!(strip(&walled_after), strip(&walled_before));
    server.shutdown();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

/// Scenario 2: paged-storage faults. Section-read errors at open are
/// typed failures (never a mangled graph); page-in delays never change
/// answers; page-in errors panic loudly instead of serving wrong bytes.
#[test]
fn paged_read_faults_are_loud_never_corrupt() {
    let _guard = serial();
    fault::clear();
    let dir = tmp_dir("paged");
    let config = BanksConfig::default();
    let dataset = generate(DblpConfig::tiny(5)).expect("datagen");
    let in_ram = Banks::new(dataset.db.clone()).expect("banks");
    {
        let (store, _) =
            PersistentStore::open(&dir, &config, PersistOptions::default()).expect("open");
        store
            .save_snapshot(&Arc::new(Banks::new(dataset.db.clone()).expect("banks")), 0)
            .expect("snapshot");
    }
    let bundle = dir.join(banks_persist::snapshot_file(0));

    // Injected section-read errors surface as a typed open error.
    fault::arm("bundle.section.read", FaultPoint::ReturnErr, 1.0, 21);
    let err = banks_persist::open_bundle_paged(&bundle, 1 << 20, &config);
    assert!(err.is_err(), "section faults must fail the open");
    assert!(
        err.err()
            .map(|e| e.to_string())
            .unwrap_or_default()
            .contains("injected fault"),
        "the injected fault must be visible in the error chain"
    );
    fault::clear();

    // Page-in delays: slower, never different. Answers stay bit-equal
    // to the in-RAM backend under a 50%-rate injected stall. The tiny
    // budget forces evictions, so multi-keyword tree expansions must
    // page segments back in mid-search.
    fault::arm(
        "pager.page_in",
        FaultPoint::Delay(Duration::from_millis(2)),
        0.5,
        33,
    );
    let (paged, _) = banks_persist::open_bundle_paged(&bundle, 1024, &config).expect("paged open");
    for q in ["soumen sunita", "author sunita", "transaction"] {
        let a = in_ram.search(q).expect("in-ram search");
        let b = paged.search(q).expect("paged search");
        assert_eq!(a.len(), b.len(), "{q}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tree.signature(), y.tree.signature(), "{q}");
            assert_eq!(x.relevance.to_bits(), y.relevance.to_bits(), "{q}");
        }
    }
    assert!(fault::fired("pager.page_in") > 0, "delays fired");
    fault::clear();

    // Page-in I/O errors panic (the adjacency accessors have no error
    // channel) — loud refusal, never silently wrong answers. A fresh
    // paged instance, so the poisoned cache cannot leak into other
    // assertions.
    let (doomed, _) = banks_persist::open_bundle_paged(&bundle, 1024, &config).expect("paged open");
    fault::arm("pager.page_in", FaultPoint::ReturnErr, 1.0, 9);
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // A tiny budget forces page-ins even if open warmed some
        // segments; the first fault then panics the search.
        for q in ["soumen sunita", "author sunita", "transaction"] {
            let _ = doomed.search(q);
        }
    }));
    assert!(panicked.is_err(), "page-in faults must panic, not corrupt");
    fault::clear();
    drop(doomed);
    std::fs::remove_dir_all(&dir).ok();
}

/// Scenario 2b: tuple-block faults on the lazy DATA section. Block
/// reads under injected delays stay bit-equal to the in-RAM database
/// (rendered answers included); block read errors panic loudly instead
/// of serving fabricated tuples.
#[test]
fn tuple_block_faults_are_loud_never_corrupt() {
    let _guard = serial();
    fault::clear();
    let dir = tmp_dir("tuple_blocks");
    let config = BanksConfig::default();
    let dataset = generate(DblpConfig::tiny(5)).expect("datagen");
    let in_ram = Banks::new(dataset.db.clone()).expect("banks");
    {
        let (store, _) =
            PersistentStore::open(&dir, &config, PersistOptions::default()).expect("open");
        store
            .save_snapshot(&Arc::new(Banks::new(dataset.db.clone()).expect("banks")), 0)
            .expect("snapshot");
    }
    let bundle = dir.join(banks_persist::snapshot_file(0));

    // Block-read delays: slower, never different. The 1 KiB budget
    // keeps almost nothing resident, so every rendered answer and
    // every raw value read must page tuple blocks back in through the
    // armed fault point.
    fault::arm(
        "data.block.read",
        FaultPoint::Delay(Duration::from_millis(2)),
        0.5,
        51,
    );
    let (paged, _) = banks_persist::open_bundle_paged(&bundle, 1024, &config).expect("paged open");
    assert!(
        paged.db().tuple_store_stats().is_some(),
        "a v3 bundle must open with a lazy tuple store"
    );
    for q in ["soumen sunita", "author sunita", "transaction"] {
        let a = in_ram.search(q).expect("in-ram search");
        let b = paged.search(q).expect("paged search");
        assert_eq!(a.len(), b.len(), "{q}");
        for (x, y) in a.iter().zip(&b) {
            // Rendering is what decodes tuple values — this is the
            // read path the fault point sits on.
            assert_eq!(in_ram.render_answer(x), paged.render_answer(y), "{q}");
        }
    }
    // And a full raw sweep: every live slot of every relation decodes
    // to the exact same tuple despite the stalls.
    for (ft, pt) in in_ram.db().relations().zip(paged.db().relations()) {
        for slot in 0..ft.slot_count() as u32 {
            assert_eq!(ft.get(slot).cloned(), pt.get(slot).cloned());
        }
    }
    assert!(fault::fired("data.block.read") > 0, "block delays fired");
    fault::clear();
    drop(paged);

    // Block-read I/O errors panic (the tuple accessors have no error
    // channel) — loud refusal, never a fabricated tuple. Fresh
    // instance so nothing warm survives from the delay phase.
    let (doomed, _) = banks_persist::open_bundle_paged(&bundle, 1024, &config).expect("paged open");
    fault::arm("data.block.read", FaultPoint::ReturnErr, 1.0, 13);
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for table in doomed.db().relations() {
            for slot in 0..table.slot_count() as u32 {
                let _ = table.get(slot);
            }
        }
    }));
    assert!(panicked.is_err(), "block faults must panic, not corrupt");
    fault::clear();
    drop(doomed);
    std::fs::remove_dir_all(&dir).ok();
}

/// Scenario 3: network chaos across every internal hop of a
/// leader + follower + router cluster. Client-visible error rate stays
/// bounded, no acked write is lost, and the follower converges to
/// bit-identical answers once the network heals.
#[test]
fn network_chaos_through_router_keeps_errors_bounded_and_writes_safe() {
    let _guard = serial();
    fault::clear();
    let leader_dir = tmp_dir("net_leader");
    let follower_dir = tmp_dir("net_follower");

    let (leader_service, leader_server, _store) = durable_server(&leader_dir);
    let leader_addr = leader_server.local_addr();
    let replica = Replica::start(
        ReplicaConfig {
            leader: leader_addr.to_string(),
            data_dir: follower_dir.clone(),
            poll_wait_ms: 300,
            retry_backoff: Duration::from_millis(20),
            ..ReplicaConfig::default()
        },
        ServiceConfig::default(),
    )
    .expect("follower start");
    let follower_server = BanksServer::bind_full(
        replica.service(),
        None,
        Some(replica.store()),
        ServerConfig {
            workers: 2,
            leader_hint: Some(leader_addr.to_string()),
            ..ServerConfig::default()
        },
    )
    .expect("bind follower");
    let router = Router::bind(RouterConfig {
        addr: "127.0.0.1:0".into(),
        leader: leader_addr.to_string(),
        followers: vec![follower_server.local_addr().to_string()],
        workers: 2,
        probe_interval: Duration::from_millis(50),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let front = router.local_addr();

    // A healthy write before the storm, so convergence is provable.
    let (status, _) = http_post(front, "/ingest", &ingest_body("net-pre"));
    assert_eq!(status, 200);
    wait_for("follower at epoch 1", || replica.service().epoch() == 1);

    // The storm: every internal banks_util::http hop — router→backend
    // forwards, router probes, replica tailing — rolls these streams.
    fault::arm("http.connect", FaultPoint::ReturnErr, 0.15, 11);
    fault::arm("http.read", FaultPoint::ReturnErr, 0.10, 13);

    let mut reads = 0u32;
    let mut read_errors = 0u32;
    let mut acked = vec!["net-pre".to_string()];
    for i in 0..30u32 {
        let (status, _) = http_get(front, &format!("/search?q=chaos+{i}"));
        reads += 1;
        if status != 200 {
            read_errors += 1;
        }
        if i % 5 == 0 {
            let id = format!("net-{i}");
            let (status, body) = http_post(front, "/ingest", &ingest_body(&id));
            if status == 200 {
                assert!(json_u64(&body, "epoch").is_some(), "{body}");
                acked.push(id);
            }
        }
    }
    assert!(
        fault::fired("http.connect") > 0 || fault::fired("http.read") > 0,
        "the storm must have fired"
    );
    // Bounded client error rate: the router's retries + plan-walk
    // failover absorb most injected faults. The bound is generous on
    // purpose — the promise is "bounded", not "zero".
    assert!(
        read_errors * 4 <= reads,
        "client error rate too high: {read_errors}/{reads}"
    );

    // Heal. A write the router 502'd (injected read fault on the
    // response) can still be mid-apply on the leader — wait for the
    // leader to go quiescent before pinning the convergence target.
    fault::clear();
    wait_for("leader quiescent", || {
        let epoch = leader_service.epoch();
        std::thread::sleep(Duration::from_millis(200));
        leader_service.epoch() == epoch
    });
    // Every acked write must be on the leader, and the follower must
    // converge to the leader's exact epoch and answers.
    for id in &acked {
        let result = leader_service
            .search(id, Default::default())
            .expect("search");
        assert_eq!(result.result.answers.len(), 1, "acked {id} lost");
    }
    let leader_epoch = leader_service.epoch();
    wait_for("follower converged", || {
        replica.service().epoch() == leader_epoch
    });
    for q in ["chaos", "mohan", "chaos author"] {
        assert_same_answers(&leader_service, &replica.service(), q);
    }

    // Reads through the healed front door answer again, and the
    // router's chaos telemetry families are exposed.
    wait_for("front door healthy", || {
        http_get(front, "/search?q=chaos").0 == 200
    });
    let (status, metrics) = http_get(front, "/metrics");
    assert_eq!(status, 200);
    for family in [
        "banks_retries_total",
        "banks_retry_budget_tokens",
        "banks_breaker_state",
    ] {
        assert!(
            metrics.contains(&format!("# TYPE {family} ")),
            "family {family} missing from router /metrics"
        );
    }

    router.shutdown();
    follower_server.shutdown();
    replica.shutdown();
    leader_server.shutdown();
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}
