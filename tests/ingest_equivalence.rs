//! Property test: applying a random delta batch incrementally yields a
//! graph identical — nodes, edges, weights — to a from-scratch rebuild
//! of the mutated database, and a text index identical to a bulk
//! re-index. This is the correctness contract of `banks-ingest`'s
//! touched-neighborhood patching (ISSUE 2 acceptance criterion).

use banks_core::{BanksConfig, TupleGraph};
use banks_ingest::{apply_batch, DeltaBatch, TupleOp};
use banks_storage::{ColumnType, Database, RelationSchema, Rid, TextIndex, Tokenizer, Value};
use proptest::prelude::*;

/// Abstract op codes, concretized against an evolving shadow state so
/// every generated batch is valid by construction (validity errors are
/// covered by unit tests; this property targets the patch math).
#[derive(Debug, Clone, Copy)]
enum OpCode {
    InsertAuthor,
    InsertPaper,
    /// Link a random author to a random paper.
    InsertWrite,
    /// Delete a random Writes tuple (leaf: never RESTRICTed).
    DeleteWrite,
    /// Repoint a random Writes tuple at another paper (FK update).
    RepointWrite,
    /// Rename a random author (text-only update).
    RenameAuthor,
    /// Delete a random unreferenced author.
    DeleteFreeAuthor,
}

fn op_code() -> impl Strategy<Value = OpCode> {
    (0u8..7).prop_map(|c| match c {
        0 => OpCode::InsertAuthor,
        1 => OpCode::InsertPaper,
        2 => OpCode::InsertWrite,
        3 => OpCode::DeleteWrite,
        4 => OpCode::RepointWrite,
        5 => OpCode::RenameAuthor,
        _ => OpCode::DeleteFreeAuthor,
    })
}

/// Mirror of the database contents sufficient to concretize ops.
struct Shadow {
    authors: Vec<String>,
    papers: Vec<String>,
    /// (write id, author id, paper id)
    writes: Vec<(String, String, String)>,
    next_id: usize,
}

impl Shadow {
    fn pick<T>(items: &[T], salt: usize) -> Option<&T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[salt % items.len()])
        }
    }

    fn concretize(&mut self, code: OpCode, salt: usize) -> Option<TupleOp> {
        self.next_id += 1;
        let fresh = self.next_id;
        match code {
            OpCode::InsertAuthor => {
                let id = format!("a{fresh}");
                self.authors.push(id.clone());
                Some(TupleOp::Insert {
                    relation: "Author".into(),
                    values: vec![
                        Value::text(&id),
                        Value::text(format!("Generated Author {fresh} keywords")),
                    ],
                })
            }
            OpCode::InsertPaper => {
                let id = format!("p{fresh}");
                self.papers.push(id.clone());
                Some(TupleOp::Insert {
                    relation: "Paper".into(),
                    values: vec![
                        Value::text(&id),
                        Value::text(format!("Generated Paper {fresh} mining graphs")),
                    ],
                })
            }
            OpCode::InsertWrite => {
                let author = Self::pick(&self.authors, salt)?.clone();
                let paper = Self::pick(&self.papers, salt / 7 + 1)?.clone();
                let id = format!("w{fresh}");
                self.writes
                    .push((id.clone(), author.clone(), paper.clone()));
                Some(TupleOp::Insert {
                    relation: "Writes".into(),
                    values: vec![Value::text(&id), Value::text(author), Value::text(paper)],
                })
            }
            OpCode::DeleteWrite => {
                if self.writes.is_empty() {
                    return None;
                }
                let (id, ..) = self.writes.swap_remove(salt % self.writes.len());
                Some(TupleOp::Delete {
                    relation: "Writes".into(),
                    key: vec![Value::text(id)],
                })
            }
            OpCode::RepointWrite => {
                if self.writes.is_empty() {
                    return None;
                }
                let idx = salt % self.writes.len();
                let paper = Self::pick(&self.papers, salt / 3 + 1)?.clone();
                self.writes[idx].2 = paper.clone();
                let id = self.writes[idx].0.clone();
                Some(TupleOp::Update {
                    relation: "Writes".into(),
                    key: vec![Value::text(id)],
                    set: vec![("PaperId".into(), Value::text(paper))],
                })
            }
            OpCode::RenameAuthor => {
                let id = Self::pick(&self.authors, salt)?.clone();
                Some(TupleOp::Update {
                    relation: "Author".into(),
                    key: vec![Value::text(id)],
                    set: vec![(
                        "AuthorName".into(),
                        Value::text(format!("Renamed Author {fresh} databases")),
                    )],
                })
            }
            OpCode::DeleteFreeAuthor => {
                let referenced: std::collections::HashSet<&str> =
                    self.writes.iter().map(|(_, a, _)| a.as_str()).collect();
                let free: Vec<usize> = self
                    .authors
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| !referenced.contains(a.as_str()))
                    .map(|(i, _)| i)
                    .collect();
                let &idx = Self::pick(&free, salt)?;
                let id = self.authors.swap_remove(idx);
                Some(TupleOp::Delete {
                    relation: "Author".into(),
                    key: vec![Value::text(id)],
                })
            }
        }
    }
}

/// Seed database: `authors × papers` bibliography with one write per
/// author (hub-shaped: everyone writes paper 0, plus a spread).
fn seed(authors: usize, papers: usize) -> (Database, Shadow) {
    let mut db = Database::new("prop");
    db.create_relation(
        RelationSchema::builder("Author")
            .column("AuthorId", ColumnType::Text)
            .column("AuthorName", ColumnType::Text)
            .primary_key(&["AuthorId"])
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_relation(
        RelationSchema::builder("Paper")
            .column("PaperId", ColumnType::Text)
            .column("PaperName", ColumnType::Text)
            .primary_key(&["PaperId"])
            .build()
            .unwrap(),
    )
    .unwrap();
    db.create_relation(
        RelationSchema::builder("Writes")
            .column("WriteId", ColumnType::Text)
            .column("AuthorId", ColumnType::Text)
            .column("PaperId", ColumnType::Text)
            .primary_key(&["WriteId"])
            .foreign_key(&["AuthorId"], "Author")
            .foreign_key(&["PaperId"], "Paper")
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut shadow = Shadow {
        authors: Vec::new(),
        papers: Vec::new(),
        writes: Vec::new(),
        next_id: 0,
    };
    for i in 0..papers {
        let id = format!("seed-p{i}");
        db.insert(
            "Paper",
            vec![
                Value::text(&id),
                Value::text(format!("Seed Paper {i} searching browsing")),
            ],
        )
        .unwrap();
        shadow.papers.push(id);
    }
    for i in 0..authors {
        let id = format!("seed-a{i}");
        db.insert(
            "Author",
            vec![
                Value::text(&id),
                Value::text(format!("Seed Author {i} sudarshan")),
            ],
        )
        .unwrap();
        shadow.authors.push(id.clone());
        // Everyone writes paper 0 (a hub), plus a spread write.
        let spread: &[usize] = if i % papers == 0 {
            &[0]
        } else {
            &[0, i % papers]
        };
        for &paper_idx in spread {
            let wid = format!("seed-w{i}-{paper_idx}");
            let pid = &shadow.papers[paper_idx];
            db.insert(
                "Writes",
                vec![Value::text(&wid), Value::text(&id), Value::text(pid)],
            )
            .unwrap();
            shadow.writes.push((wid, id.clone(), pid.clone()));
        }
    }
    (db, shadow)
}

fn edges_by_rid(tg: &TupleGraph) -> Vec<(Rid, Rid, u64)> {
    let g = tg.graph();
    let mut out = Vec::with_capacity(g.edge_count());
    for v in g.nodes() {
        for (t, w) in g.out_edges(v) {
            out.push((tg.rid(v), tg.rid(t), w.to_bits()));
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn incremental_apply_equals_full_rebuild(
        authors in 2usize..8,
        papers in 1usize..5,
        raw_ops in proptest::collection::vec((op_code(), 0usize..1_000_000), 1..40),
    ) {
        let (mut db, mut shadow) = seed(authors, papers);
        let ops: Vec<TupleOp> = raw_ops
            .into_iter()
            .filter_map(|(code, salt)| shadow.concretize(code, salt))
            .collect();
        if ops.is_empty() {
            return;
        }
        let batch = DeltaBatch { ops };

        let config = BanksConfig::default().graph;
        let tokenizer = Tokenizer::new();
        let old = TupleGraph::build(&db, &config).unwrap();
        let mut text = TextIndex::build(&db, &tokenizer);

        let (patched, _stats) =
            apply_batch(&mut db, &old, &mut text, &batch, &config, &tokenizer)
                .expect("generated batches are valid");

        // Graph: node-for-node, edge-for-edge, bit-for-bit weights.
        let rebuilt = TupleGraph::build(&db, &config).unwrap();
        prop_assert_eq!(patched.node_count(), rebuilt.node_count());
        for node in rebuilt.graph().nodes() {
            prop_assert_eq!(patched.rid(node), rebuilt.rid(node));
            prop_assert_eq!(
                patched.graph().node_weight(node).to_bits(),
                rebuilt.graph().node_weight(node).to_bits(),
                "prestige of {} diverged", node
            );
        }
        prop_assert_eq!(edges_by_rid(&patched), edges_by_rid(&rebuilt));
        prop_assert_eq!(
            patched.graph().min_edge_weight().to_bits(),
            rebuilt.graph().min_edge_weight().to_bits()
        );
        prop_assert_eq!(
            patched.graph().max_node_weight().to_bits(),
            rebuilt.graph().max_node_weight().to_bits()
        );

        // Text index: same tokens, same postings.
        let fresh = TextIndex::build(&db, &tokenizer);
        prop_assert_eq!(text.distinct_tokens(), fresh.distinct_tokens());
        prop_assert_eq!(text.posting_count(), fresh.posting_count());
        for token in fresh.tokens() {
            prop_assert_eq!(text.lookup(token), fresh.lookup(token), "token {}", token);
        }
    }
}
