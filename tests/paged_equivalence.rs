//! The out-of-core backend must be invisible: a bundle opened paged
//! under *any* memory budget answers every query bit-for-bit like the
//! in-RAM backend — same answers, same rendered trees, same relevance
//! bits, same search counters — across search strategies, corpus
//! seeds, and an ingest-driven epoch change; every tuple value decoded
//! through the lazy DATA section is bit-equal too. And a bundle whose
//! paged-graph segment directory is torn or corrupted must be rejected
//! with a typed error, never a wrong answer.

use banks_core::{Banks, BanksConfig, SearchStrategy};
use banks_datagen::dblp::{generate, DblpConfig};
use banks_ingest::{DeltaBatch, SnapshotPublisher, TupleOp};
use banks_pager::PagerError;
use banks_persist::{
    open_bundle_paged, save_bundle, snapshot_file, PersistError, PersistOptions, PersistentStore,
};
use banks_server::{BanksServer, QueryService, ServerConfig, ServiceConfig};
use banks_storage::Value;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

const QUERIES: &[&str] = &["soumen sunita", "mohan", "transaction", "author sunita"];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "banks_paged_eq_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Assert the two systems answer every query × strategy identically:
/// answer count, tree signatures, relevance bits, and the
/// executor-independent search counters.
fn assert_search_equivalent(in_ram: &Banks, paged: &Banks) {
    for query in QUERIES {
        for strategy in [SearchStrategy::Backward, SearchStrategy::Forward] {
            let a = in_ram
                .search_with(query, strategy, in_ram.config())
                .unwrap();
            let b = paged.search_with(query, strategy, paged.config()).unwrap();
            assert_eq!(a.answers.len(), b.answers.len(), "{query} {strategy:?}");
            for (x, y) in a.answers.iter().zip(&b.answers) {
                assert_eq!(
                    x.tree.signature(),
                    y.tree.signature(),
                    "{query} {strategy:?}"
                );
                assert_eq!(
                    x.relevance.to_bits(),
                    y.relevance.to_bits(),
                    "{query} {strategy:?}"
                );
                // Rendering decodes tuple values, so this is the path
                // that pulls blocks through the lazy DATA section.
                assert_eq!(
                    in_ram.render_answer(x),
                    paged.render_answer(y),
                    "{query} {strategy:?}"
                );
            }
            let counters = |s: &banks_core::SearchStats| {
                (
                    s.iterators,
                    s.pops,
                    s.trees_generated,
                    s.trees_emitted,
                    s.duplicates_discarded,
                    s.duplicates_replaced,
                    s.early_terminations,
                )
            };
            assert_eq!(
                counters(&a.stats),
                counters(&b.stats),
                "{query} {strategy:?}"
            );
        }
    }
}

/// The paged store must report a storage footprint consistent with its
/// budget: within it, or over only by the pinned floor plus the single
/// segment eviction never removes (tiny budgets).
fn assert_budget_respected(paged: &Banks) {
    let stats = paged
        .tuple_graph()
        .graph()
        .storage_stats()
        .expect("paged backend reports storage stats");
    assert!(
        stats.resident_bytes <= stats.budget_bytes
            || stats.resident_segments <= stats.pinned_segments + 1,
        "resident {} over budget {} with {} resident / {} pinned segments",
        stats.resident_bytes,
        stats.budget_bytes,
        stats.resident_segments,
        stats.pinned_segments,
    );
}

/// Every slot of every relation must decode to the same tuple through
/// both backends — the raw read path of the lazy DATA section, below
/// rendering.
fn assert_tuples_equivalent(in_ram: &Banks, paged: &Banks) {
    for (ft, pt) in in_ram.db().relations().zip(paged.db().relations()) {
        assert_eq!(ft.slot_count(), pt.slot_count(), "{}", ft.schema().name);
        for slot in 0..ft.slot_count() as u32 {
            assert_eq!(
                ft.get(slot).cloned(),
                pt.get(slot).cloned(),
                "{} slot {slot}",
                ft.schema().name
            );
        }
    }
}

/// The lazy tuple store must have actually paged blocks in, and its
/// residency (which shares one budget with the graph store) must obey
/// the same rule as the graph side: within budget, or over only by the
/// pinned floor plus the one block eviction never removes.
fn assert_tuple_budget_respected(paged: &Banks) {
    let t = paged
        .db()
        .tuple_store_stats()
        .expect("paged v3 bundle opens with a lazy tuple store");
    assert!(t.page_ins > 0, "value reads must page blocks in");
    assert!(
        t.resident_bytes <= t.budget_bytes || t.resident_blocks <= t.pinned_blocks + 1,
        "tuple resident {} over shared budget {} with {} resident / {} pinned blocks",
        t.resident_bytes,
        t.budget_bytes,
        t.resident_blocks,
        t.pinned_blocks,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Paged ≡ InRam for random corpora and random budgets, from a
    /// bundle written by the in-RAM system.
    #[test]
    fn paged_open_is_bit_identical_to_in_ram(
        seed in 1u64..1_000,
        budget in (4u32..2_048).prop_map(|kib| kib as usize * 1024),
    ) {
        let dir = tmp_dir(&format!("prop_{seed}_{budget}"));
        std::fs::create_dir_all(&dir).unwrap();
        let dataset = generate(DblpConfig::tiny(seed)).unwrap();
        let in_ram = Banks::new(dataset.db).unwrap();
        let path = dir.join("bundle.banks");
        save_bundle(&in_ram, 3, &path).unwrap();

        let (paged, meta) = open_bundle_paged(&path, budget, &BanksConfig::default()).unwrap();
        prop_assert_eq!(meta.epoch, 3);
        prop_assert!(paged.text_index().is_lazy());
        assert_search_equivalent(&in_ram, &paged);
        assert_tuples_equivalent(&in_ram, &paged);
        assert_budget_respected(&paged);
        assert_tuple_budget_respected(&paged);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Paged ≡ InRam across an ingest-driven epoch change: both recover
    /// the same data directory after batches advance the epoch past the
    /// last snapshot, one fully loaded and one paged.
    #[test]
    fn paged_recovery_matches_full_recovery_after_ingest(
        seed in 1u64..1_000,
        batches in 1usize..4,
        budget in (4u32..512).prop_map(|kib| kib as usize * 1024),
    ) {
        let dir = tmp_dir(&format!("ingest_{seed}_{batches}_{budget}"));
        let config = BanksConfig::default();
        {
            let dataset = generate(DblpConfig::tiny(seed)).unwrap();
            let base = Arc::new(Banks::new(dataset.db).unwrap());
            let (store, _) =
                PersistentStore::open(&dir, &config, PersistOptions::default()).unwrap();
            store.save_snapshot(&base, 0).unwrap();
            let mut publisher = SnapshotPublisher::with_epoch(base, 0);
            publisher.set_durability_hook(store.wal_hook());
            for i in 0..batches {
                let batch = DeltaBatch {
                    ops: vec![TupleOp::Insert {
                        relation: "Author".into(),
                        values: vec![
                            Value::text(format!("paged-{i}")),
                            Value::text(format!("Paged Author {i}")),
                        ],
                    }],
                };
                publisher.publish(&batch, None).unwrap();
            }
            // Roll a snapshot at the final epoch so the paged reopen has
            // a bundle carrying the post-ingest state.
            store
                .save_snapshot(&publisher.current(), publisher.epoch())
                .unwrap();
        }

        let (_s1, full) = PersistentStore::open(&dir, &config, PersistOptions::default()).unwrap();
        let paged_options = PersistOptions {
            paged_budget: Some(budget as u64),
            ..PersistOptions::default()
        };
        let (_s2, paged) = PersistentStore::open(&dir, &config, paged_options).unwrap();
        prop_assert_eq!(full.epoch, batches as u64);
        prop_assert_eq!(paged.epoch, batches as u64);
        let full = full.banks.expect("full recovery");
        let paged = paged.banks.expect("paged recovery");
        assert_search_equivalent(&full, &paged);
        assert_tuples_equivalent(&full, &paged);
        prop_assert!(
            paged.db().tuple_store_stats().is_some(),
            "recovery from a v3 bundle must keep the tuple store lazy"
        );
        // The ingested rows are visible through the paged backend.
        let hits = paged.search("paged").unwrap();
        prop_assert!(!hits.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Minimal HTTP/1.1 client: one GET, returns (status_code, body).
fn http_get(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// A server over a paged bundle under a starvation-level budget serves
/// `/node` and rendered answers byte-identical to a server over the
/// in-RAM backend, while tuple residency stays bounded and the
/// eviction counter advances — the HTTP layer cannot tell the
/// difference, it is just slower.
#[test]
fn paged_server_serves_bit_identical_node_and_answer_json() {
    let dir = tmp_dir("server");
    std::fs::create_dir_all(&dir).unwrap();
    let dataset = generate(DblpConfig::tiny(7)).unwrap();
    let in_ram = Arc::new(Banks::new(dataset.db).unwrap());
    let path = dir.join("bundle.banks");
    save_bundle(&in_ram, 0, &path).unwrap();

    // 1 KiB for graph + tuples together: essentially nothing stays
    // resident, so every request re-pages what it touches.
    const BUDGET: usize = 1024;
    let (paged, _) = open_bundle_paged(&path, BUDGET, &BanksConfig::default()).unwrap();
    let paged = Arc::new(paged);

    let serve = |banks: &Arc<Banks>| {
        let service = Arc::new(QueryService::new(
            Arc::clone(banks),
            ServiceConfig::default(),
        ));
        BanksServer::bind(
            service,
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback")
    };
    let ram_server = serve(&in_ram);
    let paged_server = serve(&paged);

    // Every node document — tuple values included — is byte-identical.
    for id in 0..in_ram.tuple_graph().node_count() {
        let (sa, a) = http_get(ram_server.local_addr(), &format!("/node?id={id}"));
        let (sb, b) = http_get(paged_server.local_addr(), &format!("/node?id={id}"));
        assert_eq!((sa, &a), (sb, &b), "node {id}");
    }

    // Rendered answer payloads are byte-identical past the volatile
    // envelope (timings differ; everything from `count` on is the
    // memoized fragment built from tuple values).
    for q in QUERIES {
        let target = format!("/search?q={}", q.replace(' ', "+"));
        let (sa, a) = http_get(ram_server.local_addr(), &target);
        let (sb, b) = http_get(paged_server.local_addr(), &target);
        assert_eq!((sa, sb), (200, 200), "{q}");
        let strip = |body: &str| body[body.find(r#""count""#).expect("fragment")..].to_string();
        assert_eq!(strip(&a), strip(&b), "{q}");
    }

    let t = paged
        .db()
        .tuple_store_stats()
        .expect("paged v3 bundle opens with a lazy tuple store");
    assert!(t.page_ins > 0, "serving decoded tuple blocks");
    assert!(t.evictions > 0, "a 1 KiB budget must evict");
    assert!(
        t.resident_bytes <= t.budget_bytes || t.resident_blocks <= t.pinned_blocks + 1,
        "tuple resident {} over shared budget {} with {} resident / {} pinned blocks",
        t.resident_bytes,
        t.budget_bytes,
        t.resident_blocks,
        t.pinned_blocks,
    );

    ram_server.shutdown();
    paged_server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Locate the GRPH section payload inside a v2 bundle file by walking
/// the 4-entry directory at offset 16 (32 bytes per entry: 8 magic,
/// 8 offset, 8 len, 8 checksum; GRPH is the fourth).
fn grph_offset(bytes: &[u8]) -> u64 {
    let entry = 16 + 3 * 32;
    assert_eq!(&bytes[entry..entry + 8], b"BNKSGRPH");
    u64::from_le_bytes(bytes[entry + 8..entry + 16].try_into().unwrap())
}

#[test]
fn torn_segment_directory_is_rejected_with_typed_error() {
    let dir = tmp_dir("torn_dir");
    std::fs::create_dir_all(&dir).unwrap();
    let dataset = generate(DblpConfig::tiny(11)).unwrap();
    let banks = Banks::new(dataset.db).unwrap();
    let path = dir.join("bundle.banks");
    save_bundle(&banks, 0, &path).unwrap();

    let clean = std::fs::read(&path).unwrap();
    let grph = grph_offset(&clean) as usize;

    // A flip inside the node-weight lane — part of the eagerly verified
    // segment directory region of the paged blob.
    let mut torn = clean.clone();
    torn[grph + 31] ^= 0x40;
    std::fs::write(&path, &torn).unwrap();
    let err = open_bundle_paged(&path, 1 << 20, &BanksConfig::default()).unwrap_err();
    assert!(
        matches!(err, PersistError::Pager(PagerError::BadDirectoryChecksum)),
        "{err:?}"
    );

    // Truncating mid-directory is equally fatal and equally typed. The
    // bundle-level directory check fires first (the file no longer ends
    // where the GRPH section claims), which is fine: the point is a
    // typed rejection, not a specific layer.
    std::fs::write(&path, &clean[..grph + 16]).unwrap();
    let err = open_bundle_paged(&path, 1 << 20, &BanksConfig::default()).unwrap_err();
    assert!(
        matches!(
            err,
            PersistError::Pager(_) | PersistError::Malformed(_) | PersistError::BadChecksum
        ),
        "{err:?}"
    );

    // The store-level open surfaces the same failure instead of serving
    // from a torn directory.
    std::fs::write(dir.join(snapshot_file(0)), &torn).unwrap();
    let store_dir = tmp_dir("torn_dir_store");
    std::fs::create_dir_all(&store_dir).unwrap();
    std::fs::write(store_dir.join(snapshot_file(0)), &torn).unwrap();
    let options = PersistOptions {
        paged_budget: Some(1 << 20),
        ..PersistOptions::default()
    };
    let result = PersistentStore::open(&store_dir, &BanksConfig::default(), options);
    match result {
        Err(PersistError::Pager(PagerError::BadDirectoryChecksum))
        | Err(PersistError::NoValidSnapshot { .. }) => {}
        Err(other) => panic!("unexpected error {other:?}"),
        Ok((_, recovery)) => assert!(
            recovery.banks.is_none(),
            "torn snapshot must not recover silently"
        ),
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&store_dir).ok();
}
