//! Re-export of the workspace's shared Fx hasher (see
//! `banks_util::fxhash` for the implementation and rationale).
//!
//! The hasher started life in this crate for the search algorithm's
//! per-iterator distance maps; it moved to `banks-util` when the
//! storage layer's primary-key and back-reference indexes (hot on both
//! the insert path and binary-snapshot restore) wanted it too. This
//! module keeps the long-standing `banks_graph::fxhash::*` paths alive.

pub use banks_util::fxhash::{FxHashMap, FxHashSet, FxHasher};
