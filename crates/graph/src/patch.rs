//! Incremental patching of an immutable CSR [`Graph`] — the mutable
//! counterpart of [`GraphBuilder`](crate::GraphBuilder) for graphs that
//! evolve under live ingestion.
//!
//! A [`GraphPatch`] describes the difference between an old snapshot and
//! its successor as three pieces:
//!
//! 1. a **monotone node remap** — every surviving old node keeps its
//!    relative order (tuple scan order is append-only per relation, so
//!    deletions only shift ids down and insertions splice new ids in);
//! 2. the complete **new node weight vector** (callers recompute weights
//!    only for touched nodes and copy the rest through);
//! 3. a set of **dirty pairs** with replacement edges: ordered node
//!    pairs whose edge (weight) may have changed. Edges of the old graph
//!    on clean pairs are copied through untouched.
//!
//! [`GraphPatch::apply`] exploits the monotone remap: the old CSR's
//! edges stream out already sorted by `(from, to)` after remapping, the
//! (small) replacement set is sorted on its own, and a linear merge
//! feeds [`Graph::from_sorted_edges`] — so a patch costs O(m + r log r)
//! with no per-edge hashing of tuples and **no global re-sort**, where
//! `r` is the number of replacement edges. That is the asymptotic edge a
//! delta-apply has over a from-scratch rebuild, which pays foreign-key
//! resolution (hash lookups on composite keys) per edge plus an
//! O(m log m) sort.

use crate::fxhash::FxHashSet;
use crate::graph::{Graph, NodeId};

/// A pending incremental update of a [`Graph`]. See the module docs.
#[derive(Debug, Clone)]
pub struct GraphPatch {
    /// `remap[old_id]` = new id, or `None` when the node was removed.
    /// Must be strictly increasing over the `Some` entries.
    remap: Vec<Option<u32>>,
    /// Weight of every node of the **new** graph.
    new_node_weights: Vec<f64>,
    /// New-id pairs excluded from the copy-through; their edges (if any)
    /// come exclusively from `replacements`.
    dirty: FxHashSet<(u32, u32)>,
    /// Replacement edges, in new-id space. Every pair here is dirty.
    replacements: Vec<(u32, u32, f64)>,
}

impl GraphPatch {
    /// Start a patch. `remap` maps every old node id to its new id (or
    /// `None` for removed nodes) and must be monotone on surviving
    /// nodes; `new_node_weights` carries the weight of every node of
    /// the target graph, including brand-new ones.
    pub fn new(remap: Vec<Option<u32>>, new_node_weights: Vec<f64>) -> GraphPatch {
        debug_assert!(
            remap
                .iter()
                .filter_map(|m| *m)
                .collect::<Vec<_>>()
                .windows(2)
                .all(|w| w[0] < w[1]),
            "node remap must be strictly increasing on surviving nodes"
        );
        debug_assert!(remap
            .iter()
            .flatten()
            .all(|&v| (v as usize) < new_node_weights.len()));
        GraphPatch {
            remap,
            new_node_weights,
            dirty: FxHashSet::default(),
            replacements: Vec::new(),
        }
    }

    /// Mark the ordered pair `(from, to)` (new-id space) as dirty: any
    /// old edge on it is dropped, and only edges supplied via
    /// [`GraphPatch::set_edge`] survive. Marking a pair without setting
    /// an edge deletes the edge.
    pub fn mark_dirty(&mut self, from: NodeId, to: NodeId) {
        self.dirty.insert((from.0, to.0));
    }

    /// Provide the edge for a (necessarily dirty) pair in new-id space.
    /// Implies [`GraphPatch::mark_dirty`]. Supplying the same pair twice
    /// keeps the minimum weight, matching
    /// [`GraphBuilder`](crate::GraphBuilder) coalescing.
    pub fn set_edge(&mut self, from: NodeId, to: NodeId, weight: f64) {
        debug_assert!(weight.is_finite() && weight >= 0.0, "bad edge weight");
        self.mark_dirty(from, to);
        self.replacements.push((from.0, to.0, weight));
    }

    /// Number of dirty pairs so far (diagnostics).
    pub fn dirty_pairs(&self) -> usize {
        self.dirty.len()
    }

    /// The node remap: `remap()[old_id]` = new id, or `None` for removed
    /// nodes. Exposed (with the other read accessors below) so a
    /// [`GraphStore`](crate::store::GraphStore) backend can apply the
    /// patch copy-on-write without materializing the old graph.
    pub fn remap(&self) -> &[Option<u32>] {
        &self.remap
    }

    /// Weight of every node of the **new** graph.
    pub fn new_node_weights(&self) -> &[f64] {
        &self.new_node_weights
    }

    /// Whether the ordered pair `(from, to)` (new-id space) is dirty.
    pub fn is_dirty(&self, from: u32, to: u32) -> bool {
        self.dirty.contains(&(from, to))
    }

    /// Iterate the dirty pairs in new-id space (arbitrary order).
    pub fn dirty(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.dirty.iter().copied()
    }

    /// The replacement edges in new-id space. Sorted by `(from, to)` and
    /// min-coalesced once [`GraphPatch::apply`] has normalized the patch
    /// (which it does before consulting any storage backend); in raw
    /// insertion order before that.
    pub fn replacements(&self) -> &[(u32, u32, f64)] {
        &self.replacements
    }

    /// True when the remap is the identity on all old nodes (possibly
    /// followed by appended new nodes) — the shape ingest produces for
    /// pure insert/update batches, and the shape a paged backend can
    /// patch segment-by-segment without renumbering.
    pub fn remap_is_identity_extend(&self) -> bool {
        self.remap
            .iter()
            .enumerate()
            .all(|(i, m)| *m == Some(i as u32))
    }

    /// Sort + min-coalesce the replacement set (small), making
    /// [`GraphPatch::replacements`] canonical.
    fn normalize(&mut self) {
        self.replacements
            .sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
        self.replacements
            .dedup_by(|next, prev| next.0 == prev.0 && next.1 == prev.1);
    }

    /// Produce the patched graph.
    ///
    /// When `old` is backed by a storage backend, the patch is first
    /// offered to [`GraphStore::apply_patch`] (the copy-on-write fast
    /// path); if the backend declines, the merge runs in RAM as usual
    /// and the result is handed back to [`GraphStore::reencode`] so the
    /// published graph stays paged.
    ///
    /// [`GraphStore::apply_patch`]: crate::store::GraphStore::apply_patch
    /// [`GraphStore::reencode`]: crate::store::GraphStore::reencode
    pub fn apply(mut self, old: &Graph) -> Graph {
        assert_eq!(
            self.remap.len(),
            old.node_count(),
            "remap must cover every old node"
        );
        self.normalize();
        if let Some(store) = old.store() {
            if let Some(patched) = store.apply_patch(&self) {
                return patched;
            }
            let patched = self.apply_in_ram(old);
            return match store.reencode(&patched) {
                Some(reencoded) => Graph::from_store(reencoded),
                None => patched,
            };
        }
        self.apply_in_ram(old)
    }

    /// The in-RAM merge: stream the old graph's edges against the
    /// (normalized) replacement set. Works on any backend — a paged
    /// `old` decodes each node's adjacency on the fly — but always
    /// produces an in-RAM graph.
    fn apply_in_ram(self, old: &Graph) -> Graph {
        // Copy-through stream: old edges remapped, dead endpoints and
        // dirty pairs dropped. Monotone remap ⇒ still sorted.
        let mut merged: Vec<(u32, u32, f64)> =
            Vec::with_capacity(old.edge_count() + self.replacements.len());
        let mut repl = self.replacements.into_iter().peekable();
        for from_old in old.nodes() {
            let Some(from_new) = self.remap[from_old.index()] else {
                continue;
            };
            for (to_old, w) in old.out_edges(from_old) {
                let Some(to_new) = self.remap[to_old.index()] else {
                    continue;
                };
                if self.dirty.contains(&(from_new, to_new)) {
                    continue;
                }
                // Splice in any replacement edges ordered before this one.
                while repl
                    .peek()
                    .is_some_and(|&(f, t, _)| (f, t) < (from_new, to_new))
                {
                    merged.push(repl.next().expect("peeked"));
                }
                debug_assert!(
                    repl.peek()
                        .is_none_or(|&(f, t, _)| (f, t) != (from_new, to_new)),
                    "replacement edges must target dirty pairs only"
                );
                merged.push((from_new, to_new, w));
            }
        }
        merged.extend(repl);
        Graph::from_sorted_edges(self.new_node_weights, merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Old graph: 5 nodes in a ring plus a chord, distinct weights.
    fn ring() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..5).map(|i| b.add_node(i as f64)).collect();
        for i in 0..5 {
            b.add_edge(n[i], n[(i + 1) % 5], 1.0 + i as f64);
        }
        b.add_edge(n[0], n[3], 9.0);
        b.build()
    }

    fn edges_of(g: &Graph) -> Vec<(u32, u32, f64)> {
        let mut out = Vec::new();
        for v in g.nodes() {
            for (t, w) in g.out_edges(v) {
                out.push((v.0, t.0, w));
            }
        }
        out
    }

    #[test]
    fn identity_patch_reproduces_graph() {
        let g = ring();
        let remap = (0..g.node_count() as u32).map(Some).collect();
        let weights = g.nodes().map(|v| g.node_weight(v)).collect();
        let h = GraphPatch::new(remap, weights).apply(&g);
        assert_eq!(edges_of(&g), edges_of(&h));
        assert_eq!(g.min_edge_weight(), h.min_edge_weight());
        assert_eq!(g.max_node_weight(), h.max_node_weight());
    }

    #[test]
    fn node_removal_shifts_ids_and_drops_incident_edges() {
        let g = ring();
        // Remove node 2: nodes 3, 4 shift down.
        let remap = vec![Some(0), Some(1), None, Some(2), Some(3)];
        let weights = vec![0.0, 1.0, 3.0, 4.0];
        let h = GraphPatch::new(remap, weights).apply(&g);
        assert_eq!(h.node_count(), 4);
        // Surviving edges: 0→1 (1.0), 3→4→0 are now 2→3 (4.0), 3→0 (5.0),
        // chord 0→3 was 0→old3 = new 2 (9.0). Edges 1→2 and 2→3 died.
        assert_eq!(
            edges_of(&h),
            vec![(0, 1, 1.0), (0, 2, 9.0), (2, 3, 4.0), (3, 0, 5.0)]
        );
    }

    #[test]
    fn node_addition_and_edge_replacement() {
        let g = ring();
        let remap: Vec<Option<u32>> = (0..5).map(Some).collect();
        let mut weights: Vec<f64> = (0..5).map(|i| i as f64).collect();
        weights.push(42.0); // new node 5
        let mut p = GraphPatch::new(remap, weights);
        // Reweight 0→1, delete the chord 0→3, wire the new node in.
        p.set_edge(NodeId(0), NodeId(1), 0.5);
        p.mark_dirty(NodeId(0), NodeId(3));
        p.set_edge(NodeId(5), NodeId(0), 2.0);
        p.set_edge(NodeId(2), NodeId(5), 3.0);
        assert_eq!(p.dirty_pairs(), 4);
        let h = p.apply(&g);
        assert_eq!(h.node_count(), 6);
        assert_eq!(h.node_weight(NodeId(5)), 42.0);
        assert_eq!(
            edges_of(&h),
            vec![
                (0, 1, 0.5),
                (1, 2, 2.0),
                (2, 3, 3.0),
                (2, 5, 3.0),
                (3, 4, 4.0),
                (4, 0, 5.0),
                (5, 0, 2.0),
            ]
        );
        // Reverse adjacency stays consistent.
        let in0: Vec<_> = h.in_edges(NodeId(0)).map(|(s, w)| (s.0, w)).collect();
        assert_eq!(in0, vec![(4, 5.0), (5, 2.0)]);
    }

    #[test]
    fn set_edge_coalesces_min_like_builder() {
        let g = ring();
        let remap: Vec<Option<u32>> = (0..5).map(Some).collect();
        let weights: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let mut p = GraphPatch::new(remap, weights);
        p.set_edge(NodeId(0), NodeId(1), 7.0);
        p.set_edge(NodeId(0), NodeId(1), 3.0);
        p.set_edge(NodeId(0), NodeId(1), 5.0);
        let h = p.apply(&g);
        assert_eq!(h.edge_weight(NodeId(0), NodeId(1)), Some(3.0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// `(n, base edges, keep mask, appended nodes, replacements)`.
        type Case = (
            usize,
            Vec<(usize, usize, u32)>,
            Vec<bool>,
            usize,
            Vec<(usize, usize, u32)>,
        );

        /// Random base edges, a removal mask, and replacement edges.
        fn arb_case() -> impl Strategy<Value = Case> {
            (3usize..12).prop_flat_map(|n| {
                (
                    Just(n),
                    proptest::collection::vec((0..n, 0..n, 1u32..9), 0..40),
                    proptest::collection::vec(proptest::bool::ANY, n),
                    0usize..4, // nodes appended
                    proptest::collection::vec((0..n + 4, 0..n + 4, 1u32..9), 0..15),
                )
            })
        }

        proptest! {
            /// A patch (remove masked nodes, append new ones, replace a
            /// set of pairs) produces exactly the graph a from-scratch
            /// builder produces from the equivalent edge list.
            #[test]
            fn patch_equals_rebuild((n, base, keep, added, repl) in arb_case()) {
                let mut b = GraphBuilder::new();
                let ids: Vec<_> = (0..n).map(|i| b.add_node(i as f64)).collect();
                for &(f, t, w) in &base {
                    b.add_edge(ids[f], ids[t], w as f64);
                }
                let old = b.build();

                // Remap: surviving old nodes in order, then new nodes.
                let mut remap: Vec<Option<u32>> = Vec::with_capacity(n);
                let mut next = 0u32;
                for &k in &keep {
                    remap.push(if k { let v = next; next += 1; Some(v) } else { None });
                }
                let new_n = next as usize + added;
                let weights: Vec<f64> = (0..new_n).map(|i| i as f64 * 0.5).collect();

                // Replacement pairs in new-id space, valid ids only.
                let mut patch = GraphPatch::new(remap.clone(), weights.clone());
                let mut repl_pairs = std::collections::BTreeMap::new();
                for &(f, t, w) in &repl {
                    if f < new_n && t < new_n {
                        patch.set_edge(NodeId(f as u32), NodeId(t as u32), w as f64);
                        let e = repl_pairs.entry((f as u32, t as u32)).or_insert(f64::INFINITY);
                        *e = e.min(w as f64);
                    }
                }
                let patched = patch.apply(&old);

                // Expected: rebuild from surviving remapped edges with
                // replacement pairs overridden.
                let mut eb = GraphBuilder::new();
                for &w in &weights {
                    eb.add_node(w);
                }
                let mut expected_edges = std::collections::BTreeMap::new();
                for v in old.nodes() {
                    let Some(f) = remap[v.index()] else { continue };
                    for (t_old, w) in old.out_edges(v) {
                        let Some(t) = remap[t_old.index()] else { continue };
                        if !repl_pairs.contains_key(&(f, t)) {
                            expected_edges.insert((f, t), w);
                        }
                    }
                }
                expected_edges.extend(repl_pairs.iter().map(|(&k, &v)| (k, v)));
                for (&(f, t), &w) in &expected_edges {
                    eb.add_edge(NodeId(f), NodeId(t), w);
                }
                let expected = eb.build();

                prop_assert_eq!(patched.node_count(), expected.node_count());
                prop_assert_eq!(edges_of(&patched), edges_of(&expected));
                for v in expected.nodes() {
                    prop_assert_eq!(patched.node_weight(v), expected.node_weight(v));
                }
                prop_assert_eq!(patched.min_edge_weight(), expected.min_edge_weight());
                prop_assert_eq!(patched.max_node_weight(), expected.max_node_weight());
            }
        }
    }
}
