//! # banks-graph
//!
//! The in-memory graph substrate of BANKS (Bhalotia et al., ICDE 2002).
//!
//! BANKS models the database as a directed graph: tuples are nodes,
//! foreign-key references induce edges (one forward, one backward, §2.2).
//! Queries run *backward expanding search* (§3): one Dijkstra
//! single-source-shortest-path iterator per keyword node, traversing edges
//! in reverse, interleaved through an iterator heap.
//!
//! This crate provides the two pieces that algorithm needs:
//!
//! * [`Graph`]: a compact CSR (compressed sparse row) directed graph with
//!   `u32` node ids, `f64` node weights (prestige) and edge weights
//!   (proximity), plus a reverse CSR so edges can be walked either way.
//!   The representation is deliberately lean — the paper stores nothing per
//!   node but the RID, and notes a "properly tuned" implementation should
//!   use far less than their 120 MB for a 100K-node graph; see
//!   [`Graph::memory_bytes`].
//! * [`Dijkstra`]: a *lazy* shortest-path iterator: each call to
//!   [`Dijkstra::next`] settles and returns the next nearest node. The
//!   iterator exposes [`Dijkstra::peek_dist`] so that many iterators can be
//!   multiplexed on a heap ordered by "distance of the next node it will
//!   output", exactly as in the paper's Figure 3. Its working memory is a
//!   dense, epoch-stamped [`DijkstraState`] with a 4-ary distance heap,
//!   checked out of a reusable [`SearchArena`] so steady-state query
//!   serving expands without allocating (see the `arena` module).
//!
//! ```
//! use banks_graph::{GraphBuilder, Direction};
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(1.0);
//! let c = b.add_node(1.0);
//! let d = b.add_node(2.0);
//! b.add_edge(a, c, 1.0);
//! b.add_edge(c, d, 2.0);
//! let g = b.build();
//!
//! // Walk backwards from d: who can reach d, and how cheaply?
//! let mut it = banks_graph::Dijkstra::new(&g, d, Direction::Reverse);
//! let visits: Vec<_> = it.by_ref().map(|v| (v.node, v.dist)).collect();
//! assert_eq!(visits, vec![(d, 0.0), (c, 2.0), (a, 3.0)]);
//! ```

pub mod analysis;
pub mod arena;
pub mod dijkstra;
pub mod fxhash;
pub mod graph;
pub mod heap;
pub mod patch;
pub mod snapshot;
pub mod store;

pub use arena::{
    CrossScratch, DeadlineToken, DijkstraState, MergeScratch, OriginListPool, SearchArena,
    ShardArena, NIL,
};
pub use dijkstra::{Dijkstra, Direction, Visit};
pub use fxhash::{FxHashMap, FxHashSet};
pub use graph::{Edges, Graph, GraphBuilder, NodeId};
pub use heap::DistHeap;
pub use patch::GraphPatch;
pub use snapshot::{read_snapshot, save_snapshot, write_snapshot, SnapshotError};
pub use store::{GraphStore, StorageStats};
