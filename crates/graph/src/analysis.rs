//! Whole-graph analyses: degree distributions and connectivity.
//!
//! Used by the data generators (to verify the synthetic DBLP has the hub
//! structure the paper's §2.1 discussion assumes) and the evaluation
//! harness (§5.2 reporting).

use crate::graph::{Graph, NodeId};

/// In-degree of every node as a dense vector.
pub fn indegrees(graph: &Graph) -> Vec<usize> {
    graph.nodes().map(|n| graph.in_degree(n)).collect()
}

/// Out-degree of every node as a dense vector.
pub fn outdegrees(graph: &Graph) -> Vec<usize> {
    graph.nodes().map(|n| graph.out_degree(n)).collect()
}

/// Histogram of a degree vector: `hist[d]` counts nodes with degree `d`,
/// values above `max_bucket` land in the final overflow bucket.
pub fn degree_histogram(degrees: &[usize], max_bucket: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_bucket + 2];
    for &d in degrees {
        hist[d.min(max_bucket + 1)] += 1;
    }
    hist
}

/// Weakly connected components: ignores edge direction. Returns a
/// component id per node plus the number of components.
///
/// BANKS answers can only connect keywords within one weak component, so
/// generators check their output is (mostly) one large component.
pub fn weakly_connected_components(graph: &Graph) -> (Vec<u32>, usize) {
    let n = graph.node_count();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    for start in 0..n as u32 {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            let node = NodeId(v);
            for (nbr, _) in graph.out_edges(node).chain(graph.in_edges(node)) {
                if comp[nbr.index()] == u32::MAX {
                    comp[nbr.index()] = next;
                    stack.push(nbr.0);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Size of the largest weakly connected component.
pub fn largest_component_size(graph: &Graph) -> usize {
    let (comp, count) = weakly_connected_components(graph);
    let mut sizes = vec![0usize; count];
    for c in comp {
        sizes[c as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// Nodes reachable from `start` following forward edges (including
/// `start`). Plain BFS; used in tests as an oracle for Dijkstra coverage.
pub fn reachable_from(graph: &Graph, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; graph.node_count()];
    let mut queue = std::collections::VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    let mut out = Vec::new();
    while let Some(v) = queue.pop_front() {
        out.push(v);
        for (nbr, _) in graph.out_edges(v) {
            if !seen[nbr.index()] {
                seen[nbr.index()] = true;
                queue.push_back(nbr);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::{Dijkstra, Direction};
    use crate::graph::GraphBuilder;
    use proptest::prelude::*;

    fn two_components() -> Graph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..6).map(|_| b.add_node(1.0)).collect();
        b.add_edge(n[0], n[1], 1.0);
        b.add_edge(n[1], n[2], 1.0);
        b.add_edge(n[3], n[4], 1.0);
        // n[5] isolated
        b.build()
    }

    #[test]
    fn components_counted() {
        let g = two_components();
        let (comp, count) = weakly_connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn degree_vectors_and_histogram() {
        let g = two_components();
        let ins = indegrees(&g);
        let outs = outdegrees(&g);
        assert_eq!(ins, vec![0, 1, 1, 0, 1, 0]);
        assert_eq!(outs, vec![1, 1, 0, 1, 0, 0]);
        let hist = degree_histogram(&ins, 2);
        assert_eq!(hist[0], 3);
        assert_eq!(hist[1], 3);
        assert_eq!(hist[2], 0);
    }

    #[test]
    fn bfs_reachability() {
        let g = two_components();
        let r = reachable_from(&g, NodeId(0));
        assert_eq!(r.len(), 3);
        let r = reachable_from(&g, NodeId(5));
        assert_eq!(r, vec![NodeId(5)]);
    }

    /// Random-graph strategy: up to 24 nodes, arbitrary edges with small
    /// positive weights.
    fn arb_graph() -> impl Strategy<Value = Graph> {
        (2usize..24).prop_flat_map(|n| {
            proptest::collection::vec((0..n, 0..n, 1u32..10), 0..80).prop_map(move |edges| {
                let mut b = GraphBuilder::new();
                let ids: Vec<_> = (0..n).map(|_| b.add_node(1.0)).collect();
                for (f, t, w) in edges {
                    b.add_edge(ids[f], ids[t], w as f64);
                }
                b.build()
            })
        })
    }

    proptest! {
        /// Dijkstra settles exactly the BFS-reachable set, in
        /// nondecreasing distance order.
        #[test]
        fn dijkstra_matches_bfs_reachability(g in arb_graph()) {
            let start = NodeId(0);
            let visits: Vec<_> = Dijkstra::new(&g, start, Direction::Forward).collect();
            let mut reach: Vec<_> = reachable_from(&g, start);
            reach.sort();
            let mut settled: Vec<_> = visits.iter().map(|v| v.node).collect();
            settled.sort();
            prop_assert_eq!(settled, reach);
            for w in visits.windows(2) {
                prop_assert!(w[0].dist <= w[1].dist);
            }
        }

        /// Triangle inequality of settled distances along any edge.
        #[test]
        fn dijkstra_distances_respect_edges(g in arb_graph()) {
            let start = NodeId(0);
            let mut it = Dijkstra::new(&g, start, Direction::Forward);
            it.by_ref().for_each(drop);
            for u in g.nodes() {
                if let Some(du) = it.distance(u) {
                    for (v, w) in g.out_edges(u) {
                        if let Some(dv) = it.distance(v) {
                            prop_assert!(dv <= du + w + 1e-9);
                        }
                    }
                }
            }
        }

        /// Path edges reconstruct to the reported distance.
        #[test]
        fn path_weights_sum_to_distance(g in arb_graph()) {
            let start = NodeId(0);
            let mut it = Dijkstra::new(&g, start, Direction::Forward);
            it.by_ref().for_each(drop);
            for u in g.nodes() {
                if let Some(d) = it.distance(u) {
                    let path = it.path_edges(u).unwrap();
                    let sum: f64 = path.iter().map(|e| e.2).sum();
                    prop_assert!((sum - d).abs() < 1e-9);
                    // every edge on the path exists in the graph with a
                    // weight no larger than recorded
                    for (f, t, w) in path {
                        let gw = g.edge_weight(f, t).unwrap();
                        prop_assert!(gw <= w + 1e-9);
                    }
                }
            }
        }

        /// Reverse iteration from t finds s iff forward from s finds t,
        /// with equal distance.
        #[test]
        fn forward_reverse_symmetry(g in arb_graph()) {
            let s = NodeId(0);
            let t = NodeId((g.node_count() - 1) as u32);
            let mut fwd = Dijkstra::new(&g, s, Direction::Forward);
            fwd.by_ref().for_each(drop);
            let mut rev = Dijkstra::new(&g, t, Direction::Reverse);
            rev.by_ref().for_each(drop);
            match (fwd.distance(t), rev.distance(s)) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (None, None) => {}
                (a, b) => prop_assert!(false, "asymmetry: {a:?} vs {b:?}"),
            }
        }
    }
}
