//! Lazy single-source shortest-path iterators.
//!
//! The backward expanding search of the paper (§3, Figure 3) runs one copy
//! of "Dijkstra's single source shortest path algorithm" per keyword node,
//! "run concurrently by creating an iterator interface to the shortest path
//! algorithm". [`Dijkstra`] is that iterator: each `next()` settles and
//! yields the nearest unsettled node; [`Dijkstra::peek_dist`] reports the
//! distance of the node `next()` would yield, which is the key the
//! iterator heap orders on.
//!
//! The iterator's working memory is a dense, epoch-stamped
//! [`DijkstraState`] (arrays indexed by node id, validated by a generation
//! counter) rather than hash maps, and the distance queue is a 4-ary heap.
//! States come from a [`crate::SearchArena`] via [`Dijkstra::new_in`] so a
//! long-lived worker expands queries without allocating; the plain
//! [`Dijkstra::new`] constructor allocates a one-shot state for callers
//! that don't pool.

use crate::arena::{DijkstraState, NIL};
use crate::graph::{Graph, NodeId};

/// Which way the iterator walks the graph's edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges from source to target.
    Forward,
    /// Follow edges from target to source. Backward expanding search uses
    /// this: reaching node `u` from origin `o` at distance `d` proves a
    /// *forward* path `u → o` of weight `d`.
    Reverse,
}

/// One settled node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Visit {
    /// The settled node.
    pub node: NodeId,
    /// Shortest distance from the origin (along the traversal direction).
    pub dist: f64,
}

/// A lazy Dijkstra iterator with parent tracking for path reconstruction.
#[derive(Debug, Clone)]
pub struct Dijkstra<'g> {
    graph: &'g Graph,
    origin: NodeId,
    direction: Direction,
    state: DijkstraState,
    /// Stop expanding past this distance (§3 needs only proximate answers;
    /// callers may bound the search).
    max_dist: f64,
    /// Stop after settling this many nodes.
    max_settled: usize,
}

impl<'g> Dijkstra<'g> {
    /// Start a shortest-path iteration from `origin` with a freshly
    /// allocated state. Pooling callers use [`Dijkstra::new_in`].
    pub fn new(graph: &'g Graph, origin: NodeId, direction: Direction) -> Dijkstra<'g> {
        Dijkstra::new_in(
            graph,
            origin,
            direction,
            DijkstraState::new(graph.node_count()),
        )
    }

    /// Start a shortest-path iteration reusing `state` (typically checked
    /// out of a [`crate::SearchArena`]). The state is epoch-reset — and
    /// resized, if the graph's node count changed since its last use — so
    /// any block can serve any graph.
    pub fn new_in(
        graph: &'g Graph,
        origin: NodeId,
        direction: Direction,
        mut state: DijkstraState,
    ) -> Dijkstra<'g> {
        state.reset(graph.node_count());
        state.touch(origin.0, 0.0, NIL, NIL);
        state.heap.push(0.0, origin.0);
        Dijkstra {
            graph,
            origin,
            direction,
            state,
            max_dist: f64::INFINITY,
            max_settled: usize::MAX,
        }
    }

    /// Give the dense state back (to be recycled into an arena).
    pub fn into_state(self) -> DijkstraState {
        self.state
    }

    /// Bound the search radius: nodes farther than `max_dist` are never
    /// yielded.
    pub fn with_max_dist(mut self, max_dist: f64) -> Self {
        self.max_dist = max_dist;
        self
    }

    /// Start the origin at a non-zero distance.
    ///
    /// Backward expanding search uses this for the §3 extension "the
    /// distance measure can be extended to include node weights of nodes
    /// matching keywords": a low-prestige keyword node is handicapped so
    /// iterators from prestigious origins expand (and connect) first.
    /// Must be called before the first `next()`/`peek_dist()`, and is
    /// idempotent: a repeat call simply replaces the pending start
    /// distance (the queue is rebuilt to exactly one origin entry, so no
    /// stale tentative entry can survive).
    pub fn with_initial_dist(mut self, dist: f64) -> Self {
        debug_assert_eq!(self.state.settled_count(), 0, "origin already expanded");
        self.state.heap.clear();
        self.state.heap.push(dist, self.origin.0);
        self.state.touch(self.origin.0, dist, NIL, NIL);
        debug_assert_eq!(self.state.heap.len(), 1, "exactly one pending origin entry");
        self
    }

    /// Bound the number of settled nodes.
    pub fn with_max_settled(mut self, max_settled: usize) -> Self {
        self.max_settled = max_settled;
        self
    }

    /// The origin node this iterator expands from.
    pub fn origin(&self) -> NodeId {
        self.origin
    }

    /// Number of nodes settled so far.
    pub fn settled_count(&self) -> usize {
        self.state.settled_count()
    }

    /// Final distance of a settled node (`None` if not yet settled).
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        self.state
            .is_settled(node.0)
            .then(|| self.state.dist_of(node.0))
    }

    /// Drop stale heap entries (already settled, or beyond the bounds).
    fn skim(&mut self) {
        while let Some((dist, node)) = self.state.heap.peek() {
            if self.state.is_settled(node) {
                self.state.heap.pop();
                continue;
            }
            if dist > self.max_dist || self.state.settled_count() >= self.max_settled {
                // Out of budget: the search is exhausted.
                self.state.heap.clear();
            }
            break;
        }
    }

    /// Distance of the node the next `next()` call will yield, without
    /// consuming it. `None` when the iterator is exhausted.
    pub fn peek_dist(&mut self) -> Option<f64> {
        self.skim();
        self.state.heap.peek().map(|(dist, _)| dist)
    }

    /// Reconstruct the traversal path from `node` back to the origin as a
    /// list of `(from, to, weight)` *graph* edges (i.e. already oriented
    /// the way they exist in the graph, regardless of traversal direction).
    ///
    /// With `Direction::Reverse`, the returned edges form the forward path
    /// `node → … → origin`, which is exactly the root-to-leaf path of a
    /// BANKS connection tree. Returns `None` if `node` is unsettled.
    pub fn path_edges(&self, node: NodeId) -> Option<Vec<(NodeId, NodeId, f64)>> {
        let mut edges = Vec::new();
        self.path_edges_into(node, &mut edges).then_some(edges)
    }

    /// As [`Dijkstra::path_edges`], appending into a caller-owned buffer
    /// (the cross-product enumerator reuses one buffer for every tree).
    /// Returns `false` — appending nothing — if `node` is unsettled.
    pub fn path_edges_into(&self, node: NodeId, out: &mut Vec<(NodeId, NodeId, f64)>) -> bool {
        if !self.state.is_settled(node.0) {
            return false;
        }
        let mut cur = node.0;
        while cur != self.origin.0 {
            let prev = self.state.parent_of(cur);
            debug_assert_ne!(prev, NIL, "settled non-origin node must have a parent");
            // The connecting edge's exact CSR weight, read back through
            // the slot the relaxation recorded — no float re-derivation.
            let slot = self.state.parent_slot_of(cur);
            match self.direction {
                // Traversal relaxed prev→cur over a forward edge.
                Direction::Forward => {
                    out.push((NodeId(prev), NodeId(cur), self.graph.fwd_weight_at(slot)))
                }
                // Traversal relaxed prev→cur over a *reverse* view of the
                // graph edge cur→prev.
                Direction::Reverse => {
                    out.push((NodeId(cur), NodeId(prev), self.graph.rev_weight_at(slot)))
                }
            }
            cur = prev;
        }
        true
    }

    /// The parent edge of a settled node as `(parent, exact edge
    /// weight)` — `(NIL, 0.0)` for the origin, `None` if unsettled. The
    /// parallel executor's shards emit this with every settled-node
    /// event so the merge stage can rebuild paths without touching the
    /// shard-owned state.
    pub fn parent_edge_of(&self, node: NodeId) -> Option<(u32, f64)> {
        if !self.state.is_settled(node.0) {
            return None;
        }
        if node == self.origin {
            return Some((NIL, 0.0));
        }
        let parent = self.state.parent_of(node.0);
        let slot = self.state.parent_slot_of(node.0);
        let w = match self.direction {
            Direction::Forward => self.graph.fwd_weight_at(slot),
            Direction::Reverse => self.graph.rev_weight_at(slot),
        };
        Some((parent, w))
    }
}

impl Iterator for Dijkstra<'_> {
    type Item = Visit;

    fn next(&mut self) -> Option<Visit> {
        self.skim();
        let (dist, node) = self.state.heap.pop()?;
        self.state.settle(node);

        let (base_slot, neighbours, weights) = match self.direction {
            Direction::Forward => self.graph.out_adjacency_slots(NodeId(node)),
            Direction::Reverse => self.graph.in_adjacency_slots(NodeId(node)),
        };
        for (i, (&next, &w)) in neighbours.iter().zip(weights).enumerate() {
            if self.state.is_settled(next) {
                continue;
            }
            let cand = dist + w;
            if cand > self.max_dist {
                continue;
            }
            let better = !self.state.is_touched(next) || cand < self.state.dist_of(next);
            if better {
                self.state.touch(next, cand, node, base_slot + i as u32);
                self.state.heap.push(cand, next);
            }
        }
        Some(Visit {
            node: NodeId(node),
            dist,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::SearchArena;
    use crate::graph::GraphBuilder;

    /// a →1 b →1 c →1 d, plus shortcut a →2.5 c
    fn chain() -> (Graph, [NodeId; 4]) {
        let mut b = GraphBuilder::new();
        let na = b.add_node(1.0);
        let nb = b.add_node(1.0);
        let nc = b.add_node(1.0);
        let nd = b.add_node(1.0);
        b.add_edge(na, nb, 1.0);
        b.add_edge(nb, nc, 1.0);
        b.add_edge(nc, nd, 1.0);
        b.add_edge(na, nc, 2.5);
        (b.build(), [na, nb, nc, nd])
    }

    #[test]
    fn forward_distances_nondecreasing_and_correct() {
        let (g, [a, b, c, d]) = chain();
        let visits: Vec<_> = Dijkstra::new(&g, a, Direction::Forward).collect();
        assert_eq!(
            visits,
            vec![
                Visit { node: a, dist: 0.0 },
                Visit { node: b, dist: 1.0 },
                Visit { node: c, dist: 2.0 },
                Visit { node: d, dist: 3.0 },
            ]
        );
    }

    #[test]
    fn reverse_traversal_finds_ancestors() {
        let (g, [a, b, c, d]) = chain();
        let visits: Vec<_> = Dijkstra::new(&g, d, Direction::Reverse).collect();
        let nodes: Vec<_> = visits.iter().map(|v| v.node).collect();
        assert_eq!(nodes, vec![d, c, b, a]);
        // a reaches d through b,c at total weight 3.
        assert_eq!(visits[3].dist, 3.0);
    }

    #[test]
    fn peek_matches_next() {
        let (g, [a, ..]) = chain();
        let mut it = Dijkstra::new(&g, a, Direction::Forward);
        loop {
            let peeked = it.peek_dist();
            match it.next() {
                Some(v) => assert_eq!(peeked, Some(v.dist)),
                None => {
                    assert_eq!(peeked, None);
                    break;
                }
            }
        }
    }

    #[test]
    fn path_edges_reverse_direction_returns_forward_edges() {
        let (g, [a, b, c, d]) = chain();
        let mut it = Dijkstra::new(&g, d, Direction::Reverse);
        it.by_ref().for_each(drop);
        // Path from a (settled) back to origin d: forward edges a→b→c→d.
        let path = it.path_edges(a).unwrap();
        assert_eq!(path, vec![(a, b, 1.0), (b, c, 1.0), (c, d, 1.0)]);
        // Origin's own path is empty.
        assert_eq!(it.path_edges(d).unwrap(), vec![]);
    }

    #[test]
    fn path_edges_unsettled_is_none() {
        let (g, [a, _b, _c, d]) = chain();
        let mut it = Dijkstra::new(&g, a, Direction::Forward);
        it.next(); // settles only a
        assert!(it.path_edges(d).is_none());
        let mut buf = vec![(a, a, 0.0)];
        assert!(!it.path_edges_into(d, &mut buf));
        assert_eq!(buf.len(), 1, "failed reconstruction appends nothing");
    }

    #[test]
    fn max_dist_bounds_search() {
        let (g, [a, ..]) = chain();
        let visits: Vec<_> = Dijkstra::new(&g, a, Direction::Forward)
            .with_max_dist(1.5)
            .collect();
        assert_eq!(visits.len(), 2, "only a and b are within 1.5");
    }

    #[test]
    fn max_settled_bounds_search() {
        let (g, [a, ..]) = chain();
        let visits: Vec<_> = Dijkstra::new(&g, a, Direction::Forward)
            .with_max_settled(2)
            .collect();
        assert_eq!(visits.len(), 2);
    }

    #[test]
    fn shortcut_not_taken_when_longer() {
        let (g, [a, _b, c, _d]) = chain();
        let mut it = Dijkstra::new(&g, a, Direction::Forward);
        it.by_ref().for_each(drop);
        // c is reached via b (dist 2.0), not the 2.5 shortcut.
        assert_eq!(it.distance(c), Some(2.0));
        let path = it.path_edges(c).unwrap();
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn disconnected_node_never_yielded() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(1.0);
        let _lonely = b.add_node(1.0);
        let g = b.build();
        let visits: Vec<_> = Dijkstra::new(&g, x, Direction::Forward).collect();
        assert_eq!(visits.len(), 1);
    }

    #[test]
    fn distance_query_only_for_settled() {
        let (g, [a, b, ..]) = chain();
        let mut it = Dijkstra::new(&g, a, Direction::Forward);
        assert_eq!(it.distance(a), None);
        it.next();
        assert_eq!(it.distance(a), Some(0.0));
        assert_eq!(it.distance(b), None);
        assert_eq!(it.settled_count(), 1);
        assert_eq!(it.origin(), a);
    }

    #[test]
    fn initial_distance_offsets_everything() {
        let (g, [a, b, c, d]) = chain();
        let visits: Vec<_> = Dijkstra::new(&g, a, Direction::Forward)
            .with_initial_dist(10.0)
            .collect();
        assert_eq!(
            visits,
            vec![
                Visit {
                    node: a,
                    dist: 10.0
                },
                Visit {
                    node: b,
                    dist: 11.0
                },
                Visit {
                    node: c,
                    dist: 12.0
                },
                Visit {
                    node: d,
                    dist: 13.0
                },
            ]
        );
        // Paths are unaffected by the offset.
        let mut it = Dijkstra::new(&g, a, Direction::Forward).with_initial_dist(5.0);
        it.by_ref().for_each(drop);
        assert_eq!(it.path_edges(d).unwrap().len(), 3);
    }

    #[test]
    fn initial_distance_is_idempotent() {
        let (g, [a, b, ..]) = chain();
        // A repeat call replaces the pending start distance outright; no
        // stale entry from the first call survives in queue or state.
        let visits: Vec<_> = Dijkstra::new(&g, a, Direction::Forward)
            .with_initial_dist(10.0)
            .with_initial_dist(3.0)
            .collect();
        assert_eq!(visits[0], Visit { node: a, dist: 3.0 });
        assert_eq!(visits[1], Visit { node: b, dist: 4.0 });
        assert_eq!(visits.len(), 4);
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        b.add_edge(x, y, 0.0);
        let g = b.build();
        let visits: Vec<_> = Dijkstra::new(&g, x, Direction::Forward).collect();
        assert_eq!(visits[1], Visit { node: y, dist: 0.0 });
    }

    #[test]
    fn reused_state_matches_fresh_state() {
        let (g, [a, _b, _c, d]) = chain();
        let mut arena = SearchArena::new();
        // Warm the block on one origin, then reuse it on another: the
        // epoch bump must fully isolate the runs.
        let mut warm = Dijkstra::new_in(&g, d, Direction::Reverse, arena.checkout(g.node_count()));
        warm.by_ref().for_each(drop);
        arena.recycle(warm.into_state());

        let mut fresh = Dijkstra::new(&g, a, Direction::Forward);
        let mut reused =
            Dijkstra::new_in(&g, a, Direction::Forward, arena.checkout(g.node_count()));
        loop {
            let (f, r) = (fresh.next(), reused.next());
            assert_eq!(f, r);
            if f.is_none() {
                break;
            }
            let node = f.unwrap().node;
            assert_eq!(fresh.path_edges(node), reused.path_edges(node));
        }
        arena.recycle(reused.into_state());
        assert_eq!(arena.pooled_states(), 1);
    }
}
