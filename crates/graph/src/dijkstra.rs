//! Lazy single-source shortest-path iterators.
//!
//! The backward expanding search of the paper (§3, Figure 3) runs one copy
//! of "Dijkstra's single source shortest path algorithm" per keyword node,
//! "run concurrently by creating an iterator interface to the shortest path
//! algorithm". [`Dijkstra`] is that iterator: each `next()` settles and
//! yields the nearest unsettled node; [`Dijkstra::peek_dist`] reports the
//! distance of the node `next()` would yield, which is the key the
//! iterator heap orders on.

use crate::fxhash::FxHashMap;
use crate::graph::{Graph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which way the iterator walks the graph's edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges from source to target.
    Forward,
    /// Follow edges from target to source. Backward expanding search uses
    /// this: reaching node `u` from origin `o` at distance `d` proves a
    /// *forward* path `u → o` of weight `d`.
    Reverse,
}

/// One settled node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Visit {
    /// The settled node.
    pub node: NodeId,
    /// Shortest distance from the origin (along the traversal direction).
    pub dist: f64,
}

/// Heap entry; ordered as a min-heap on distance via reversed comparison.
#[derive(Debug, Clone, Copy)]
struct Entry {
    dist: f64,
    node: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the smallest distance
        // first (ties broken by node id for determinism).
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// A lazy Dijkstra iterator with parent tracking for path reconstruction.
#[derive(Debug, Clone)]
pub struct Dijkstra<'g> {
    graph: &'g Graph,
    origin: NodeId,
    direction: Direction,
    /// Settled nodes → final distance.
    settled: FxHashMap<u32, f64>,
    /// Best tentative distance seen per node (settled or frontier).
    tentative: FxHashMap<u32, f64>,
    /// `parent[n]` = the neighbour through which `n` was best reached,
    /// plus the weight of that connecting edge. Follows the traversal
    /// direction: walking parents from any settled node leads to the origin.
    parent: FxHashMap<u32, (u32, f64)>,
    heap: BinaryHeap<Entry>,
    /// Stop expanding past this distance (§3 needs only proximate answers;
    /// callers may bound the search).
    max_dist: f64,
    /// Stop after settling this many nodes.
    max_settled: usize,
}

impl<'g> Dijkstra<'g> {
    /// Start a shortest-path iteration from `origin`.
    pub fn new(graph: &'g Graph, origin: NodeId, direction: Direction) -> Dijkstra<'g> {
        let mut heap = BinaryHeap::new();
        heap.push(Entry {
            dist: 0.0,
            node: origin.0,
        });
        let mut tentative = FxHashMap::default();
        tentative.insert(origin.0, 0.0);
        Dijkstra {
            graph,
            origin,
            direction,
            settled: FxHashMap::default(),
            tentative,
            parent: FxHashMap::default(),
            heap,
            max_dist: f64::INFINITY,
            max_settled: usize::MAX,
        }
    }

    /// Bound the search radius: nodes farther than `max_dist` are never
    /// yielded.
    pub fn with_max_dist(mut self, max_dist: f64) -> Self {
        self.max_dist = max_dist;
        self
    }

    /// Start the origin at a non-zero distance.
    ///
    /// Backward expanding search uses this for the §3 extension "the
    /// distance measure can be extended to include node weights of nodes
    /// matching keywords": a low-prestige keyword node is handicapped so
    /// iterators from prestigious origins expand (and connect) first.
    /// Must be called before the first `next()`/`peek_dist()`.
    pub fn with_initial_dist(mut self, dist: f64) -> Self {
        debug_assert!(self.settled.is_empty(), "origin already expanded");
        self.heap.clear();
        self.heap.push(Entry {
            dist,
            node: self.origin.0,
        });
        self.tentative.insert(self.origin.0, dist);
        self
    }

    /// Bound the number of settled nodes.
    pub fn with_max_settled(mut self, max_settled: usize) -> Self {
        self.max_settled = max_settled;
        self
    }

    /// The origin node this iterator expands from.
    pub fn origin(&self) -> NodeId {
        self.origin
    }

    /// Number of nodes settled so far.
    pub fn settled_count(&self) -> usize {
        self.settled.len()
    }

    /// Final distance of a settled node (`None` if not yet settled).
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        self.settled.get(&node.0).copied()
    }

    /// Drop stale heap entries (already settled, or beyond the bounds).
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.settled.contains_key(&top.node) {
                self.heap.pop();
                continue;
            }
            if top.dist > self.max_dist || self.settled.len() >= self.max_settled {
                // Out of budget: the search is exhausted.
                self.heap.clear();
            }
            break;
        }
    }

    /// Distance of the node the next `next()` call will yield, without
    /// consuming it. `None` when the iterator is exhausted.
    pub fn peek_dist(&mut self) -> Option<f64> {
        self.skim();
        self.heap.peek().map(|e| e.dist)
    }

    /// Reconstruct the traversal path from `node` back to the origin as a
    /// list of `(from, to, weight)` *graph* edges (i.e. already oriented
    /// the way they exist in the graph, regardless of traversal direction).
    ///
    /// With `Direction::Reverse`, the returned edges form the forward path
    /// `node → … → origin`, which is exactly the root-to-leaf path of a
    /// BANKS connection tree. Returns `None` if `node` is unsettled.
    pub fn path_edges(&self, node: NodeId) -> Option<Vec<(NodeId, NodeId, f64)>> {
        if !self.settled.contains_key(&node.0) {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = node.0;
        while cur != self.origin.0 {
            let &(prev, w) = self
                .parent
                .get(&cur)
                .expect("settled non-origin node must have a parent");
            match self.direction {
                // Traversal relaxed prev→cur over a forward edge.
                Direction::Forward => edges.push((NodeId(prev), NodeId(cur), w)),
                // Traversal relaxed prev→cur over a *reverse* view of the
                // graph edge cur→prev.
                Direction::Reverse => edges.push((NodeId(cur), NodeId(prev), w)),
            }
            cur = prev;
        }
        Some(edges)
    }
}

impl Iterator for Dijkstra<'_> {
    type Item = Visit;

    fn next(&mut self) -> Option<Visit> {
        self.skim();
        let entry = self.heap.pop()?;
        let node = NodeId(entry.node);
        self.settled.insert(entry.node, entry.dist);

        let neighbours: Box<dyn Iterator<Item = (NodeId, f64)>> = match self.direction {
            Direction::Forward => Box::new(self.graph.out_edges(node)),
            Direction::Reverse => Box::new(self.graph.in_edges(node)),
        };
        let mut updates: Vec<(u32, f64)> = Vec::new();
        for (next, w) in neighbours {
            if self.settled.contains_key(&next.0) {
                continue;
            }
            let cand = entry.dist + w;
            if cand > self.max_dist {
                continue;
            }
            let better = match self.tentative.get(&next.0) {
                Some(&old) => cand < old,
                None => true,
            };
            if better {
                updates.push((next.0, cand));
            }
        }
        for (next, cand) in updates {
            self.tentative.insert(next, cand);
            self.parent.insert(next, (entry.node, cand - entry.dist));
            self.heap.push(Entry {
                dist: cand,
                node: next,
            });
        }
        Some(Visit {
            node,
            dist: entry.dist,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// a →1 b →1 c →1 d, plus shortcut a →2.5 c
    fn chain() -> (Graph, [NodeId; 4]) {
        let mut b = GraphBuilder::new();
        let na = b.add_node(1.0);
        let nb = b.add_node(1.0);
        let nc = b.add_node(1.0);
        let nd = b.add_node(1.0);
        b.add_edge(na, nb, 1.0);
        b.add_edge(nb, nc, 1.0);
        b.add_edge(nc, nd, 1.0);
        b.add_edge(na, nc, 2.5);
        (b.build(), [na, nb, nc, nd])
    }

    #[test]
    fn forward_distances_nondecreasing_and_correct() {
        let (g, [a, b, c, d]) = chain();
        let visits: Vec<_> = Dijkstra::new(&g, a, Direction::Forward).collect();
        assert_eq!(
            visits,
            vec![
                Visit { node: a, dist: 0.0 },
                Visit { node: b, dist: 1.0 },
                Visit { node: c, dist: 2.0 },
                Visit { node: d, dist: 3.0 },
            ]
        );
    }

    #[test]
    fn reverse_traversal_finds_ancestors() {
        let (g, [a, b, c, d]) = chain();
        let visits: Vec<_> = Dijkstra::new(&g, d, Direction::Reverse).collect();
        let nodes: Vec<_> = visits.iter().map(|v| v.node).collect();
        assert_eq!(nodes, vec![d, c, b, a]);
        // a reaches d through b,c at total weight 3.
        assert_eq!(visits[3].dist, 3.0);
    }

    #[test]
    fn peek_matches_next() {
        let (g, [a, ..]) = chain();
        let mut it = Dijkstra::new(&g, a, Direction::Forward);
        loop {
            let peeked = it.peek_dist();
            match it.next() {
                Some(v) => assert_eq!(peeked, Some(v.dist)),
                None => {
                    assert_eq!(peeked, None);
                    break;
                }
            }
        }
    }

    #[test]
    fn path_edges_reverse_direction_returns_forward_edges() {
        let (g, [a, b, c, d]) = chain();
        let mut it = Dijkstra::new(&g, d, Direction::Reverse);
        it.by_ref().for_each(drop);
        // Path from a (settled) back to origin d: forward edges a→b→c→d.
        let path = it.path_edges(a).unwrap();
        assert_eq!(path, vec![(a, b, 1.0), (b, c, 1.0), (c, d, 1.0)]);
        // Origin's own path is empty.
        assert_eq!(it.path_edges(d).unwrap(), vec![]);
    }

    #[test]
    fn path_edges_unsettled_is_none() {
        let (g, [a, _b, _c, d]) = chain();
        let mut it = Dijkstra::new(&g, a, Direction::Forward);
        it.next(); // settles only a
        assert!(it.path_edges(d).is_none());
    }

    #[test]
    fn max_dist_bounds_search() {
        let (g, [a, ..]) = chain();
        let visits: Vec<_> = Dijkstra::new(&g, a, Direction::Forward)
            .with_max_dist(1.5)
            .collect();
        assert_eq!(visits.len(), 2, "only a and b are within 1.5");
    }

    #[test]
    fn max_settled_bounds_search() {
        let (g, [a, ..]) = chain();
        let visits: Vec<_> = Dijkstra::new(&g, a, Direction::Forward)
            .with_max_settled(2)
            .collect();
        assert_eq!(visits.len(), 2);
    }

    #[test]
    fn shortcut_not_taken_when_longer() {
        let (g, [a, _b, c, _d]) = chain();
        let mut it = Dijkstra::new(&g, a, Direction::Forward);
        it.by_ref().for_each(drop);
        // c is reached via b (dist 2.0), not the 2.5 shortcut.
        assert_eq!(it.distance(c), Some(2.0));
        let path = it.path_edges(c).unwrap();
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn disconnected_node_never_yielded() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(1.0);
        let _lonely = b.add_node(1.0);
        let g = b.build();
        let visits: Vec<_> = Dijkstra::new(&g, x, Direction::Forward).collect();
        assert_eq!(visits.len(), 1);
    }

    #[test]
    fn distance_query_only_for_settled() {
        let (g, [a, b, ..]) = chain();
        let mut it = Dijkstra::new(&g, a, Direction::Forward);
        assert_eq!(it.distance(a), None);
        it.next();
        assert_eq!(it.distance(a), Some(0.0));
        assert_eq!(it.distance(b), None);
        assert_eq!(it.settled_count(), 1);
        assert_eq!(it.origin(), a);
    }

    #[test]
    fn initial_distance_offsets_everything() {
        let (g, [a, b, c, d]) = chain();
        let visits: Vec<_> = Dijkstra::new(&g, a, Direction::Forward)
            .with_initial_dist(10.0)
            .collect();
        assert_eq!(
            visits,
            vec![
                Visit {
                    node: a,
                    dist: 10.0
                },
                Visit {
                    node: b,
                    dist: 11.0
                },
                Visit {
                    node: c,
                    dist: 12.0
                },
                Visit {
                    node: d,
                    dist: 13.0
                },
            ]
        );
        // Paths are unaffected by the offset.
        let mut it = Dijkstra::new(&g, a, Direction::Forward).with_initial_dist(5.0);
        it.by_ref().for_each(drop);
        assert_eq!(it.path_edges(d).unwrap().len(), 3);
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        b.add_edge(x, y, 0.0);
        let g = b.build();
        let visits: Vec<_> = Dijkstra::new(&g, x, Direction::Forward).collect();
        assert_eq!(visits[1], Visit { node: y, dist: 0.0 });
    }
}
