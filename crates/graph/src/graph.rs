//! Compact CSR graph: the in-memory representation of the BANKS data graph.
//!
//! Since the out-of-core work, [`Graph`] is a thin dispatch wrapper over
//! one of two storage backends: the original in-RAM CSR (the default —
//! every constructor here produces it, and its accessors compile to the
//! same direct array indexing as before) or a pluggable
//! [`GraphStore`] such as the segment-paged
//! store in `banks-pager`. The search kernel and every other caller see
//! a single `Graph` type either way.

use crate::store::{GraphStore, StorageStats};
use std::fmt;
use std::sync::Arc;

/// A node identifier: a dense index into the graph's node arrays.
///
/// `banks-core` maintains the bijection between [`NodeId`]s and tuple RIDs;
/// the graph itself knows nothing about tuples, matching the paper's note
/// that the in-memory representation stores only the RID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Mutable construction buffer for [`Graph`].
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    node_weights: Vec<f64>,
    edges: Vec<(u32, u32, f64)>,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> GraphBuilder {
        GraphBuilder::default()
    }

    /// A builder pre-sized for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> GraphBuilder {
        GraphBuilder {
            node_weights: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Add a node with the given weight (prestige). Returns its id.
    pub fn add_node(&mut self, weight: f64) -> NodeId {
        let id = u32::try_from(self.node_weights.len()).expect("more than u32::MAX nodes");
        self.node_weights.push(weight);
        NodeId(id)
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_weights.len()
    }

    /// Add a directed edge. Duplicate `(from, to)` pairs are coalesced at
    /// [`GraphBuilder::build`] time by keeping the **minimum** weight — the
    /// `min` of the paper's equation (1) when both a forward and a backward
    /// contribution exist between the same pair of nodes.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: f64) {
        debug_assert!(from.index() < self.node_weights.len(), "from out of range");
        debug_assert!(to.index() < self.node_weights.len(), "to out of range");
        debug_assert!(weight.is_finite() && weight >= 0.0, "bad edge weight");
        self.edges.push((from.0, to.0, weight));
    }

    /// Overwrite the weight of an existing node (used by prestige
    /// post-passes such as authority transfer).
    pub fn set_node_weight(&mut self, node: NodeId, weight: f64) {
        self.node_weights[node.index()] = weight;
    }

    /// Freeze into an immutable CSR graph.
    pub fn build(mut self) -> Graph {
        // Coalesce parallel edges, keeping the minimum weight.
        self.edges
            .sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
        self.edges.dedup_by(|next, prev| {
            // `prev` is kept; because of the sort it carries the min weight.
            next.0 == prev.0 && next.1 == prev.1
        });
        Graph::from_sorted_edges(self.node_weights, self.edges)
    }
}

/// The fully-decoded CSR arrays: the original in-RAM backend.
///
/// Kept as a plain struct (not a `GraphStore` impl) so the hot path —
/// accessors on an in-RAM [`Graph`] — is one enum discriminant test
/// plus direct array indexing, with no virtual dispatch.
#[derive(Debug, Clone)]
struct InRamGraph {
    node_weights: Box<[f64]>,
    fwd_offsets: Box<[u32]>,
    fwd_targets: Box<[u32]>,
    fwd_weights: Box<[f64]>,
    /// Precomputed per-edge log score `log2(1 + w/w_min)` parallel to
    /// `fwd_weights` — the term the scorer would otherwise re-derive for
    /// every edge of every generated connection tree. Zeroed when the
    /// graph has no positive edge weight (matching the scorer's
    /// degenerate edge score of 0).
    fwd_escores: Box<[f64]>,
    rev_offsets: Box<[u32]>,
    rev_sources: Box<[u32]>,
    rev_weights: Box<[f64]>,
    min_edge_weight: f64,
    max_node_weight: f64,
}

/// Which backend a [`Graph`] dispatches to.
#[derive(Debug, Clone)]
enum Repr {
    /// Fully decoded CSR arrays in RAM (the default).
    InRam(InRamGraph),
    /// A pluggable out-of-core backend (see `banks-pager`).
    Paged(Arc<dyn GraphStore>),
}

/// An immutable directed graph in CSR form, with both forward and reverse
/// adjacency so the backward expanding search can traverse edges in reverse
/// at the same cost as forward.
///
/// Backed either by in-RAM arrays or by a paged [`GraphStore`]; see the
/// [`crate::store`] module docs for the slice lifetime contract that the
/// adjacency accessors inherit from paged backends (in-RAM graphs
/// trivially satisfy it).
#[derive(Debug, Clone)]
pub struct Graph {
    repr: Repr,
}

impl InRamGraph {
    /// The cached normalization bounds both constructors derive: the
    /// smallest positive edge weight (the `w_min` of the paper's edge
    /// score) and the largest node weight (`w_max` of the node score).
    fn weight_bounds(node_weights: &[f64], fwd_weights: &[f64]) -> (f64, f64) {
        let min_edge_weight = fwd_weights
            .iter()
            .copied()
            .filter(|w| *w > 0.0)
            .fold(f64::INFINITY, f64::min);
        let max_node_weight = node_weights.iter().copied().fold(0.0f64, f64::max);
        (min_edge_weight, max_node_weight)
    }

    /// The precomputed log-mode edge scores: the exact expression the
    /// scorer evaluates (`(1.0 + w / w_min).log2()`), so a lookup and a
    /// recomputation are bit-identical.
    fn log_scores(fwd_weights: &[f64], min_edge_weight: f64) -> Vec<f64> {
        if !min_edge_weight.is_finite() || min_edge_weight <= 0.0 {
            return vec![0.0; fwd_weights.len()];
        }
        fwd_weights
            .iter()
            .map(|&w| (1.0 + w / min_edge_weight).log2())
            .collect()
    }

    fn from_sorted_edges(node_weights: Vec<f64>, edges: Vec<(u32, u32, f64)>) -> InRamGraph {
        let n = node_weights.len();
        let m = edges.len();
        debug_assert!(
            edges
                .windows(2)
                .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
            "edges must be sorted by (from, to) and duplicate-free"
        );
        debug_assert!(edges
            .iter()
            .all(|&(f, t, _)| (f as usize) < n && (t as usize) < n));

        let mut fwd_offsets = vec![0u32; n + 1];
        for &(from, _, _) in &edges {
            fwd_offsets[from as usize + 1] += 1;
        }
        for i in 0..n {
            fwd_offsets[i + 1] += fwd_offsets[i];
        }
        // Edges are sorted by `from`, so the forward arrays are a direct
        // column extraction.
        let mut fwd_targets = Vec::with_capacity(m);
        let mut fwd_weights = Vec::with_capacity(m);
        for &(_, to, w) in &edges {
            fwd_targets.push(to);
            fwd_weights.push(w);
        }

        let mut rev_offsets = vec![0u32; n + 1];
        for &(_, to, _) in &edges {
            rev_offsets[to as usize + 1] += 1;
        }
        for i in 0..n {
            rev_offsets[i + 1] += rev_offsets[i];
        }
        let mut rev_sources = vec![0u32; m];
        let mut rev_weights = vec![0f64; m];
        {
            let mut cursor = rev_offsets.clone();
            // edges are sorted by (from, to), so each reverse adjacency list
            // ends up sorted by source — good for binary search and cache use.
            for &(from, to, w) in &edges {
                let slot = cursor[to as usize] as usize;
                rev_sources[slot] = from;
                rev_weights[slot] = w;
                cursor[to as usize] += 1;
            }
        }

        let (min_edge_weight, max_node_weight) =
            InRamGraph::weight_bounds(&node_weights, &fwd_weights);
        let fwd_escores = InRamGraph::log_scores(&fwd_weights, min_edge_weight);

        InRamGraph {
            node_weights: node_weights.into_boxed_slice(),
            fwd_offsets: fwd_offsets.into_boxed_slice(),
            fwd_targets: fwd_targets.into_boxed_slice(),
            fwd_weights: fwd_weights.into_boxed_slice(),
            fwd_escores: fwd_escores.into_boxed_slice(),
            rev_offsets: rev_offsets.into_boxed_slice(),
            rev_sources: rev_sources.into_boxed_slice(),
            rev_weights: rev_weights.into_boxed_slice(),
            min_edge_weight,
            max_node_weight,
        }
    }

    fn from_csr(
        node_weights: Vec<f64>,
        fwd_offsets: Vec<u32>,
        fwd_targets: Vec<u32>,
        fwd_weights: Vec<f64>,
    ) -> InRamGraph {
        let n = node_weights.len();
        let m = fwd_targets.len();
        debug_assert_eq!(fwd_offsets.len(), n + 1);
        debug_assert_eq!(fwd_weights.len(), m);
        debug_assert!(fwd_offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(fwd_targets.iter().all(|&t| (t as usize) < n));

        let mut rev_offsets = vec![0u32; n + 1];
        for &to in &fwd_targets {
            rev_offsets[to as usize + 1] += 1;
        }
        for i in 0..n {
            rev_offsets[i + 1] += rev_offsets[i];
        }
        let mut rev_sources = vec![0u32; m];
        let mut rev_weights = vec![0f64; m];
        {
            let mut cursor = rev_offsets.clone();
            // Walking nodes in id order keeps each reverse adjacency
            // list sorted by source, matching `from_sorted_edges`.
            for from in 0..n {
                let (lo, hi) = (fwd_offsets[from] as usize, fwd_offsets[from + 1] as usize);
                for e in lo..hi {
                    let to = fwd_targets[e] as usize;
                    let slot = cursor[to] as usize;
                    rev_sources[slot] = from as u32;
                    rev_weights[slot] = fwd_weights[e];
                    cursor[to] += 1;
                }
            }
        }

        let (min_edge_weight, max_node_weight) =
            InRamGraph::weight_bounds(&node_weights, &fwd_weights);
        let fwd_escores = InRamGraph::log_scores(&fwd_weights, min_edge_weight);

        InRamGraph {
            node_weights: node_weights.into_boxed_slice(),
            fwd_offsets: fwd_offsets.into_boxed_slice(),
            fwd_targets: fwd_targets.into_boxed_slice(),
            fwd_weights: fwd_weights.into_boxed_slice(),
            fwd_escores: fwd_escores.into_boxed_slice(),
            rev_offsets: rev_offsets.into_boxed_slice(),
            rev_sources: rev_sources.into_boxed_slice(),
            rev_weights: rev_weights.into_boxed_slice(),
            min_edge_weight,
            max_node_weight,
        }
    }

    #[inline]
    fn out_range(&self, node: NodeId) -> (usize, usize) {
        (
            self.fwd_offsets[node.index()] as usize,
            self.fwd_offsets[node.index() + 1] as usize,
        )
    }

    #[inline]
    fn in_range(&self, node: NodeId) -> (usize, usize) {
        (
            self.rev_offsets[node.index()] as usize,
            self.rev_offsets[node.index() + 1] as usize,
        )
    }

    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.node_weights.len() * size_of::<f64>()
            + self.fwd_offsets.len() * size_of::<u32>()
            + self.fwd_targets.len() * size_of::<u32>()
            + self.fwd_weights.len() * size_of::<f64>()
            + self.fwd_escores.len() * size_of::<f64>()
            + self.rev_offsets.len() * size_of::<u32>()
            + self.rev_sources.len() * size_of::<u32>()
            + self.rev_weights.len() * size_of::<f64>()
    }
}

/// Iterator over one adjacency list as `(neighbor, weight)` pairs.
///
/// For in-RAM graphs this borrows the CSR arrays directly (no
/// allocation, exactly as before); for paged graphs the list is copied
/// out at construction so the iterator stays valid however long it is
/// held — paged slices themselves only survive a bounded number of
/// further accesses (see [`crate::store`]).
pub struct Edges<'g> {
    inner: EdgesInner<'g>,
}

enum EdgesInner<'g> {
    Borrowed(std::iter::Zip<std::slice::Iter<'g, u32>, std::slice::Iter<'g, f64>>),
    Owned(std::vec::IntoIter<(u32, f64)>),
}

impl Iterator for Edges<'_> {
    type Item = (NodeId, f64);

    #[inline]
    fn next(&mut self) -> Option<(NodeId, f64)> {
        match &mut self.inner {
            EdgesInner::Borrowed(it) => it.next().map(|(&id, &w)| (NodeId(id), w)),
            EdgesInner::Owned(it) => it.next().map(|(id, w)| (NodeId(id), w)),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            EdgesInner::Borrowed(it) => it.size_hint(),
            EdgesInner::Owned(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for Edges<'_> {}

impl Edges<'_> {
    fn borrowed<'g>(ids: &'g [u32], weights: &'g [f64]) -> Edges<'g> {
        Edges {
            inner: EdgesInner::Borrowed(ids.iter().zip(weights.iter())),
        }
    }

    fn owned(ids: &[u32], weights: &[f64]) -> Edges<'static> {
        let pairs: Vec<(u32, f64)> = ids.iter().copied().zip(weights.iter().copied()).collect();
        Edges {
            inner: EdgesInner::Owned(pairs.into_iter()),
        }
    }
}

impl Graph {
    /// Assemble the CSR arrays from edges that are **already sorted by
    /// `(from, to)` with no duplicate pairs** — the shared final step of
    /// [`GraphBuilder::build`] and the O(m) fast path of
    /// [`crate::patch::GraphPatch::apply`], which produces its merged
    /// edge stream in sorted order and must not pay a global re-sort.
    pub fn from_sorted_edges(node_weights: Vec<f64>, edges: Vec<(u32, u32, f64)>) -> Graph {
        Graph {
            repr: Repr::InRam(InRamGraph::from_sorted_edges(node_weights, edges)),
        }
    }

    /// Assemble a graph directly from forward CSR arrays — the snapshot
    /// restore path, where `fwd_offsets`/`fwd_targets`/`fwd_weights`
    /// were deserialized verbatim and re-expanding them into an edge
    /// triple list (as [`Graph::from_sorted_edges`] consumes) would just
    /// copy ~24 bytes per edge to immediately shred them back into
    /// columns. Only the reverse CSR is derived here.
    ///
    /// The caller guarantees what the builder normally establishes:
    /// offsets monotone with the right endpoints, targets in range, and
    /// each node's adjacency sorted by target with no duplicates (the
    /// snapshot reader validates all of this before calling).
    pub fn from_csr(
        node_weights: Vec<f64>,
        fwd_offsets: Vec<u32>,
        fwd_targets: Vec<u32>,
        fwd_weights: Vec<f64>,
    ) -> Graph {
        Graph {
            repr: Repr::InRam(InRamGraph::from_csr(
                node_weights,
                fwd_offsets,
                fwd_targets,
                fwd_weights,
            )),
        }
    }

    /// Wrap a pluggable storage backend as a [`Graph`]. Every accessor
    /// dispatches to `store`; the search kernel runs against it
    /// unchanged.
    pub fn from_store(store: Arc<dyn GraphStore>) -> Graph {
        Graph {
            repr: Repr::Paged(store),
        }
    }

    /// The storage backend, if this graph is backed by one (`None` for
    /// the in-RAM representation). Used by the ingest pipeline to route
    /// patches through the backend's copy-on-write path.
    pub fn store(&self) -> Option<&Arc<dyn GraphStore>> {
        match &self.repr {
            Repr::InRam(_) => None,
            Repr::Paged(s) => Some(s),
        }
    }

    /// Paging telemetry, if this graph is backed by a paged store
    /// (`None` for in-RAM, which has nothing to page).
    pub fn storage_stats(&self) -> Option<StorageStats> {
        match &self.repr {
            Repr::InRam(_) => None,
            Repr::Paged(s) => Some(s.storage_stats()),
        }
    }

    /// A fully in-RAM copy of this graph (a plain clone when already
    /// in-RAM). For a paged graph this decodes **everything** — use
    /// only where the full footprint is acceptable, e.g. tests and the
    /// ingest fallback path.
    pub fn materialize(&self) -> Graph {
        match &self.repr {
            Repr::InRam(_) => self.clone(),
            Repr::Paged(s) => {
                let n = s.node_count();
                let m = s.edge_count();
                let mut node_weights = Vec::with_capacity(n);
                let mut fwd_offsets = Vec::with_capacity(n + 1);
                let mut fwd_targets = Vec::with_capacity(m);
                let mut fwd_weights = Vec::with_capacity(m);
                fwd_offsets.push(0u32);
                for node in 0..n as u32 {
                    node_weights.push(s.node_weight(node));
                    let (_, targets, weights) = s.out_adjacency_slots(node);
                    fwd_targets.extend_from_slice(targets);
                    fwd_weights.extend_from_slice(weights);
                    fwd_offsets.push(fwd_targets.len() as u32);
                }
                Graph::from_csr(node_weights, fwd_offsets, fwd_targets, fwd_weights)
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        match &self.repr {
            Repr::InRam(g) => g.node_weights.len(),
            Repr::Paged(s) => s.node_count(),
        }
    }

    /// Number of directed edges (after coalescing).
    pub fn edge_count(&self) -> usize {
        match &self.repr {
            Repr::InRam(g) => g.fwd_targets.len(),
            Repr::Paged(s) => s.edge_count(),
        }
    }

    /// The prestige weight of a node (§2.2 node weight).
    #[inline]
    pub fn node_weight(&self, node: NodeId) -> f64 {
        match &self.repr {
            Repr::InRam(g) => g.node_weights[node.index()],
            Repr::Paged(s) => s.node_weight(node.0),
        }
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Outgoing edges of `node` as `(target, weight)`.
    #[inline]
    pub fn out_edges(&self, node: NodeId) -> Edges<'_> {
        match &self.repr {
            Repr::InRam(g) => {
                let (lo, hi) = g.out_range(node);
                Edges::borrowed(&g.fwd_targets[lo..hi], &g.fwd_weights[lo..hi])
            }
            Repr::Paged(s) => {
                let (_, targets, weights) = s.out_adjacency_slots(node.0);
                Edges::owned(targets, weights)
            }
        }
    }

    /// Incoming edges of `node` as `(source, weight)`.
    #[inline]
    pub fn in_edges(&self, node: NodeId) -> Edges<'_> {
        match &self.repr {
            Repr::InRam(g) => {
                let (lo, hi) = g.in_range(node);
                Edges::borrowed(&g.rev_sources[lo..hi], &g.rev_weights[lo..hi])
            }
            Repr::Paged(s) => {
                let (_, sources, weights) = s.in_adjacency_slots(node.0);
                Edges::owned(sources, weights)
            }
        }
    }

    /// Outgoing adjacency of `node` as raw `(targets, weights)` slices —
    /// the allocation-free form the search kernel's relaxation loop uses.
    ///
    /// For paged graphs the slices obey the bounded-lifetime contract in
    /// [`crate::store`]: consume them before many further adjacency
    /// accesses on this thread.
    #[inline]
    pub fn out_adjacency(&self, node: NodeId) -> (&[u32], &[f64]) {
        match &self.repr {
            Repr::InRam(g) => {
                let (lo, hi) = g.out_range(node);
                (&g.fwd_targets[lo..hi], &g.fwd_weights[lo..hi])
            }
            Repr::Paged(s) => {
                let (_, targets, weights) = s.out_adjacency_slots(node.0);
                (targets, weights)
            }
        }
    }

    /// Incoming adjacency of `node` as raw `(sources, weights)` slices.
    ///
    /// Same lifetime contract as [`Graph::out_adjacency`].
    #[inline]
    pub fn in_adjacency(&self, node: NodeId) -> (&[u32], &[f64]) {
        match &self.repr {
            Repr::InRam(g) => {
                let (lo, hi) = g.in_range(node);
                (&g.rev_sources[lo..hi], &g.rev_weights[lo..hi])
            }
            Repr::Paged(s) => {
                let (_, sources, weights) = s.in_adjacency_slots(node.0);
                (sources, weights)
            }
        }
    }

    /// As [`Graph::out_adjacency`], additionally returning the CSR slot
    /// of the first edge — the relaxation loop records the slot of the
    /// parent edge so path reconstruction can read exact edge weights
    /// (and precomputed scores) back out of the CSR arrays.
    #[inline]
    pub fn out_adjacency_slots(&self, node: NodeId) -> (u32, &[u32], &[f64]) {
        match &self.repr {
            Repr::InRam(g) => {
                let (lo, hi) = g.out_range(node);
                (lo as u32, &g.fwd_targets[lo..hi], &g.fwd_weights[lo..hi])
            }
            Repr::Paged(s) => s.out_adjacency_slots(node.0),
        }
    }

    /// As [`Graph::in_adjacency`], with the CSR slot of the first edge.
    #[inline]
    pub fn in_adjacency_slots(&self, node: NodeId) -> (u32, &[u32], &[f64]) {
        match &self.repr {
            Repr::InRam(g) => {
                let (lo, hi) = g.in_range(node);
                (lo as u32, &g.rev_sources[lo..hi], &g.rev_weights[lo..hi])
            }
            Repr::Paged(s) => s.in_adjacency_slots(node.0),
        }
    }

    /// Weight stored at a forward CSR slot (as returned by
    /// [`Graph::out_adjacency_slots`]).
    #[inline]
    pub fn fwd_weight_at(&self, slot: u32) -> f64 {
        match &self.repr {
            Repr::InRam(g) => g.fwd_weights[slot as usize],
            Repr::Paged(s) => s.fwd_weight_at(slot),
        }
    }

    /// Weight stored at a reverse CSR slot.
    #[inline]
    pub fn rev_weight_at(&self, slot: u32) -> f64 {
        match &self.repr {
            Repr::InRam(g) => g.rev_weights[slot as usize],
            Repr::Paged(s) => s.rev_weight_at(slot),
        }
    }

    /// Precomputed log-mode edge scores parallel to the forward
    /// adjacency of `node` (same order as [`Graph::out_adjacency`]).
    ///
    /// Same lifetime contract as [`Graph::out_adjacency`].
    #[inline]
    pub fn out_escores(&self, node: NodeId) -> &[f64] {
        match &self.repr {
            Repr::InRam(g) => {
                let (lo, hi) = g.out_range(node);
                &g.fwd_escores[lo..hi]
            }
            Repr::Paged(s) => s.out_escores(node.0),
        }
    }

    /// Precomputed log-mode score (`log2(1 + w/w_min)`) of the directed
    /// edge `(from, to)`, provided the edge exists and its stored weight
    /// is bit-identical to `weight`. The weight check makes the lookup a
    /// drop-in for recomputation: a caller holding a weight that differs
    /// from the CSR's (e.g. a synthetic tree) falls back to computing,
    /// so results never depend on whether the lookup hit.
    #[inline]
    pub fn log_edge_score(&self, from: NodeId, to: NodeId, weight: f64) -> Option<f64> {
        let (_, targets, weights) = self.out_adjacency_slots(from);
        let i = targets.binary_search(&to.0).ok()?;
        if weights[i].to_bits() != weight.to_bits() {
            return None;
        }
        Some(self.out_escores(from)[i])
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_adjacency(node).0.len()
    }

    /// In-degree of `node`.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_adjacency(node).0.len()
    }

    /// Weight of the directed edge `(from, to)`, if present.
    ///
    /// Binary search over the (sorted) forward adjacency of `from`.
    pub fn edge_weight(&self, from: NodeId, to: NodeId) -> Option<f64> {
        let (targets, weights) = self.out_adjacency(from);
        targets.binary_search(&to.0).ok().map(|i| weights[i])
    }

    /// Smallest strictly-positive edge weight — the `w_min` normalizer of
    /// the paper's edge score (§2.3). Infinity for an edgeless graph.
    pub fn min_edge_weight(&self) -> f64 {
        match &self.repr {
            Repr::InRam(g) => g.min_edge_weight,
            Repr::Paged(s) => s.min_edge_weight(),
        }
    }

    /// Largest node weight — the `w_max` normalizer of the node score
    /// (§2.3). Zero for an empty graph.
    pub fn max_node_weight(&self) -> f64 {
        match &self.repr {
            Repr::InRam(g) => g.max_node_weight,
            Repr::Paged(s) => s.max_node_weight(),
        }
    }

    /// Actual heap footprint of the graph, in bytes. For the in-RAM
    /// backend this is the full CSR array size, reproducing the §5.2
    /// space measurement; for a paged backend it is the *resident*
    /// footprint (decoded segments plus directories), not the full
    /// decoded size.
    pub fn memory_bytes(&self) -> usize {
        match &self.repr {
            Repr::InRam(g) => g.memory_bytes(),
            Repr::Paged(s) => s.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, [NodeId; 4]) {
        // a → b → d, a → c → d
        let mut b = GraphBuilder::new();
        let na = b.add_node(1.0);
        let nb = b.add_node(2.0);
        let nc = b.add_node(3.0);
        let nd = b.add_node(4.0);
        b.add_edge(na, nb, 1.0);
        b.add_edge(na, nc, 2.0);
        b.add_edge(nb, nd, 3.0);
        b.add_edge(nc, nd, 4.0);
        (b.build(), [na, nb, nc, nd])
    }

    #[test]
    fn csr_adjacency_both_directions() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        let out_a: Vec<_> = g.out_edges(a).collect();
        assert_eq!(out_a, vec![(b, 1.0), (c, 2.0)]);
        let in_d: Vec<_> = g.in_edges(d).collect();
        assert_eq!(in_d, vec![(b, 3.0), (c, 4.0)]);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.out_degree(d), 0);
    }

    #[test]
    fn edge_weight_lookup() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.edge_weight(a, b), Some(1.0));
        assert_eq!(g.edge_weight(b, d), Some(3.0));
        assert_eq!(g.edge_weight(d, a), None);
    }

    #[test]
    fn duplicate_edges_keep_min_weight() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(1.0);
        let y = b.add_node(1.0);
        b.add_edge(x, y, 5.0);
        b.add_edge(x, y, 2.0);
        b.add_edge(x, y, 7.0);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(x, y), Some(2.0));
    }

    #[test]
    fn normalizers() {
        let (g, _) = diamond();
        assert_eq!(g.min_edge_weight(), 1.0);
        assert_eq!(g.max_node_weight(), 4.0);
        let empty = GraphBuilder::new().build();
        assert!(empty.min_edge_weight().is_infinite());
        assert_eq!(empty.max_node_weight(), 0.0);
        assert_eq!(empty.node_count(), 0);
    }

    #[test]
    fn memory_accounting_scales_with_size() {
        let (g, _) = diamond();
        let small = g.memory_bytes();
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..100).map(|_| b.add_node(1.0)).collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], 1.0);
        }
        let big = b.build().memory_bytes();
        assert!(big > small);
    }

    #[test]
    fn self_loops_and_isolated_nodes() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(1.0);
        let _iso = b.add_node(9.0);
        b.add_edge(x, x, 1.5);
        let g = b.build();
        assert_eq!(g.edge_weight(x, x), Some(1.5));
        assert_eq!(g.out_degree(NodeId(1)), 0);
        assert_eq!(g.max_node_weight(), 9.0);
    }

    #[test]
    fn precomputed_log_scores_match_recomputation() {
        let (g, [a, b, _c, d]) = diamond();
        for v in g.nodes() {
            let (targets, weights) = g.out_adjacency(v);
            let escores = g.out_escores(v);
            assert_eq!(targets.len(), escores.len());
            for (i, (&t, &w)) in targets.iter().zip(weights).enumerate() {
                let expect = (1.0 + w / g.min_edge_weight()).log2();
                assert_eq!(escores[i].to_bits(), expect.to_bits());
                assert_eq!(
                    g.log_edge_score(v, NodeId(t), w).map(f64::to_bits),
                    Some(expect.to_bits())
                );
                // A weight that differs even in the last bit misses.
                assert_eq!(g.log_edge_score(v, NodeId(t), w + 1e-9), None);
            }
        }
        assert_eq!(g.log_edge_score(d, a, 1.0), None, "absent edge");
        // Slot accessors agree with the plain adjacency views.
        let (lo, targets, weights) = g.out_adjacency_slots(a);
        assert_eq!((targets, weights), g.out_adjacency(a));
        assert_eq!(g.fwd_weight_at(lo), weights[0]);
        let (rlo, sources, rweights) = g.in_adjacency_slots(d);
        assert_eq!((sources, rweights), g.in_adjacency(d));
        assert_eq!(g.rev_weight_at(rlo), rweights[0]);
        let _ = b;
        // Edgeless graphs degenerate to empty/zero scores.
        let mut eb = GraphBuilder::new();
        let lone = eb.add_node(1.0);
        assert_eq!(eb.build().out_escores(lone).len(), 0);
    }

    #[test]
    fn set_node_weight_applies() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(1.0);
        b.set_node_weight(x, 10.0);
        let g = b.build();
        assert_eq!(g.node_weight(x), 10.0);
    }

    #[test]
    fn materialize_in_ram_is_identity() {
        let (g, [a, _b, _c, d]) = diamond();
        let m = g.materialize();
        assert_eq!(m.node_count(), g.node_count());
        assert_eq!(m.edge_count(), g.edge_count());
        assert_eq!(m.out_adjacency(a), g.out_adjacency(a));
        assert_eq!(m.in_adjacency(d), g.in_adjacency(d));
        assert!(g.store().is_none());
        assert!(g.storage_stats().is_none());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_edges() -> impl Strategy<Value = (usize, Vec<(usize, usize, u32)>)> {
            (2usize..20).prop_flat_map(|n| {
                (
                    Just(n),
                    proptest::collection::vec((0..n, 0..n, 1u32..9), 0..60),
                )
            })
        }

        proptest! {
            /// CSR construction preserves the edge multiset (after
            /// min-coalescing): forward and reverse adjacency agree, and
            /// `edge_weight` returns the minimum weight of parallel edges.
            #[test]
            fn csr_faithful_to_input((n, edges) in arb_edges()) {
                let mut b = GraphBuilder::with_capacity(n, edges.len());
                let ids: Vec<_> = (0..n).map(|i| b.add_node(i as f64)).collect();
                for &(f, t, w) in &edges {
                    b.add_edge(ids[f], ids[t], w as f64);
                }
                let g = b.build();

                // Expected: min weight per distinct (from, to).
                let mut expected: std::collections::BTreeMap<(usize, usize), f64> =
                    std::collections::BTreeMap::new();
                for &(f, t, w) in &edges {
                    let e = expected.entry((f, t)).or_insert(f64::INFINITY);
                    *e = e.min(w as f64);
                }
                prop_assert_eq!(g.edge_count(), expected.len());
                for (&(f, t), &w) in &expected {
                    prop_assert_eq!(g.edge_weight(ids[f], ids[t]), Some(w));
                }
                // Forward and reverse views carry the same edges.
                let mut fwd: Vec<(usize, usize, u64)> = Vec::new();
                let mut rev: Vec<(usize, usize, u64)> = Vec::new();
                for v in g.nodes() {
                    for (t, w) in g.out_edges(v) {
                        fwd.push((v.index(), t.index(), w.to_bits()));
                    }
                    for (s, w) in g.in_edges(v) {
                        rev.push((s.index(), v.index(), w.to_bits()));
                    }
                }
                fwd.sort_unstable();
                rev.sort_unstable();
                prop_assert_eq!(fwd, rev);
                // Degree sums match the edge count.
                let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
                let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
                prop_assert_eq!(out_sum, g.edge_count());
                prop_assert_eq!(in_sum, g.edge_count());
            }

            /// min_edge_weight is the smallest positive weight present.
            #[test]
            fn min_edge_weight_correct((n, edges) in arb_edges()) {
                let mut b = GraphBuilder::new();
                let ids: Vec<_> = (0..n).map(|_| b.add_node(1.0)).collect();
                for &(f, t, w) in &edges {
                    b.add_edge(ids[f], ids[t], w as f64);
                }
                let g = b.build();
                let expected = edges
                    .iter()
                    .map(|&(_, _, w)| w as f64)
                    .fold(f64::INFINITY, f64::min);
                prop_assert_eq!(g.min_edge_weight(), expected);
            }
        }
    }
}
