//! Reusable scratch memory for the search kernel.
//!
//! The backward expanding search (§3) creates one Dijkstra iterator per
//! keyword node per query; the original kernel paid three hash-map
//! allocations per iterator plus a `Vec<Vec<u32>>` origin list per visited
//! node. A [`SearchArena`] makes the whole expansion allocation-free in
//! steady state:
//!
//! * [`DijkstraState`] — dense `dist`/`parent`/settled arrays of length
//!   `n_nodes`, validity-tracked by an **epoch stamp** per slot: "clearing"
//!   the state for the next iterator or query is a single generation-counter
//!   bump, not a rehash or a `memset`. The distance queue is a recycled
//!   4-ary heap ([`crate::heap::DistHeap`]).
//! * [`OriginListPool`] — the per-node, per-term origin lists (`u.Lᵢ` in
//!   the paper) flattened into one entry pool of forward-linked lists, so
//!   visiting a node allocates nothing.
//! * [`CrossScratch`] — the mixed-radix counter, cursor, origin and edge
//!   buffers the cross-product enumerator reuses across connection trees.
//!
//! A server worker keeps one arena for its lifetime; `checkout`/`recycle`
//! hand dense states to iterators and take them back when a query ends.
//! States resize themselves when the graph grows or shrinks across
//! snapshot epochs, so one arena safely outlives live-ingestion publishes.

use crate::fxhash::FxHashMap;
use crate::graph::NodeId;
use crate::heap::DistHeap;

/// Sentinel for "no parent" / "no list entry" — the terminator
/// [`OriginListPool::head`] and [`OriginListPool::next`] return.
pub const NIL: u32 = u32::MAX;

/// Dense epoch-stamped single-source shortest-path state.
///
/// A slot's `dist`/`parent` are meaningful only while its stamp equals the
/// current epoch; bumping the epoch invalidates every slot at once.
#[derive(Debug, Clone)]
pub struct DijkstraState {
    /// Current generation; stamps equal to it are live.
    epoch: u32,
    /// `touched[n] == epoch` ⇒ `dist[n]`/`parent[n]` are valid.
    touched: Vec<u32>,
    /// `settled[n] == epoch` ⇒ `dist[n]` is final.
    settled: Vec<u32>,
    /// Tentative (or, once settled, final) distance per node.
    dist: Vec<f64>,
    /// Best-path predecessor per node ([`NIL`] for the origin).
    parent: Vec<u32>,
    /// CSR slot (in the traversal direction's adjacency arrays) of the
    /// edge that set `parent` — path reconstruction reads the exact edge
    /// weight (and its precomputed score) straight out of the CSR
    /// instead of re-deriving it from a distance difference.
    parent_slot: Vec<u32>,
    /// The distance queue (recycled allocation).
    pub(crate) heap: DistHeap,
    settled_count: usize,
}

impl DijkstraState {
    /// Fresh state for a graph of `n_nodes` nodes.
    pub fn new(n_nodes: usize) -> DijkstraState {
        DijkstraState {
            epoch: 1,
            touched: vec![0; n_nodes],
            settled: vec![0; n_nodes],
            dist: vec![0.0; n_nodes],
            parent: vec![NIL; n_nodes],
            parent_slot: vec![NIL; n_nodes],
            heap: DistHeap::new(),
            settled_count: 0,
        }
    }

    /// Invalidate every slot and empty the queue — an epoch bump, except
    /// when the graph size changed (live ingestion published a new
    /// snapshot) or the 32-bit generation wrapped, when the stamp arrays
    /// are rebuilt.
    pub(crate) fn reset(&mut self, n_nodes: usize) {
        self.heap.clear();
        self.settled_count = 0;
        if self.touched.len() != n_nodes {
            self.touched.clear();
            self.touched.resize(n_nodes, 0);
            self.settled.clear();
            self.settled.resize(n_nodes, 0);
            self.dist.resize(n_nodes, 0.0);
            self.parent.resize(n_nodes, NIL);
            self.parent_slot.resize(n_nodes, NIL);
            self.epoch = 1;
        } else if self.epoch == u32::MAX {
            self.touched.fill(0);
            self.settled.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Number of node slots (must equal the graph's node count in use).
    pub fn capacity(&self) -> usize {
        self.touched.len()
    }

    #[inline]
    pub(crate) fn is_touched(&self, n: u32) -> bool {
        self.touched[n as usize] == self.epoch
    }

    #[inline]
    pub(crate) fn is_settled(&self, n: u32) -> bool {
        self.settled[n as usize] == self.epoch
    }

    /// Record a (new or improved) tentative distance. `slot` is the CSR
    /// slot of the relaxed edge ([`NIL`] for the origin).
    #[inline]
    pub(crate) fn touch(&mut self, n: u32, dist: f64, parent: u32, slot: u32) {
        let i = n as usize;
        self.touched[i] = self.epoch;
        self.dist[i] = dist;
        self.parent[i] = parent;
        self.parent_slot[i] = slot;
    }

    /// Mark a node's distance final.
    #[inline]
    pub(crate) fn settle(&mut self, n: u32) {
        debug_assert!(self.is_touched(n), "settling an untouched node");
        self.settled[n as usize] = self.epoch;
        self.settled_count += 1;
    }

    /// Distance of a touched node (valid only when its stamp is live).
    #[inline]
    pub(crate) fn dist_of(&self, n: u32) -> f64 {
        debug_assert!(self.is_touched(n));
        self.dist[n as usize]
    }

    /// Parent of a touched node ([`NIL`] for the origin).
    #[inline]
    pub(crate) fn parent_of(&self, n: u32) -> u32 {
        debug_assert!(self.is_touched(n));
        self.parent[n as usize]
    }

    /// CSR slot of the edge that set a touched node's parent ([`NIL`]
    /// for the origin).
    #[inline]
    pub(crate) fn parent_slot_of(&self, n: u32) -> u32 {
        debug_assert!(self.is_touched(n));
        self.parent_slot[n as usize]
    }

    #[inline]
    pub(crate) fn settled_count(&self) -> usize {
        self.settled_count
    }

    /// Apply the recycle-time shrink policy to the distance queue. Any
    /// queued entries are dead at recycle time (the next checkout
    /// `reset`s the state), so they are dropped before shrinking.
    pub(crate) fn shrink_queue(&mut self, max_entries: usize) {
        self.heap.clear();
        self.heap.shrink_to_entries(max_entries);
    }

    /// Bytes this state block retains (dense arrays + queue buffer).
    pub fn retained_bytes(&self) -> usize {
        use std::mem::size_of;
        self.touched.capacity() * size_of::<u32>()
            + self.settled.capacity() * size_of::<u32>()
            + self.dist.capacity() * size_of::<f64>()
            + self.parent.capacity() * size_of::<u32>()
            + self.parent_slot.capacity() * size_of::<u32>()
            + self.heap.retained_bytes()
    }
}

// Shards of the parallel executor own their state blocks across scoped
// threads; this compile-time assertion is what "send-safe state blocks"
// means — break it and the parallel kernel stops compiling.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<DijkstraState>();
};

/// The paper's per-node origin lists `u.Lᵢ`, flattened: one shared entry
/// pool of forward-linked lists plus a per-node block of `n_terms`
/// (head, tail, len) triples. Appends and whole-pool resets never free
/// memory, so a reused pool allocates only while it is still growing
/// toward the high-water mark of its workload.
#[derive(Debug, Clone, Default)]
pub struct OriginListPool {
    n_terms: usize,
    /// node id → base slot of its `n_terms`-wide block.
    node_base: FxHashMap<u32, u32>,
    heads: Vec<u32>,
    tails: Vec<u32>,
    lens: Vec<u32>,
    /// `(origin, next-entry)` cells; [`NIL`] terminates a list.
    entries: Vec<(u32, u32)>,
}

impl OriginListPool {
    /// Empty the pool for a query over `n_terms` search terms.
    pub fn reset(&mut self, n_terms: usize) {
        self.n_terms = n_terms;
        self.node_base.clear();
        self.heads.clear();
        self.tails.clear();
        self.lens.clear();
        self.entries.clear();
    }

    /// Base slot of `node`'s list block, allocating an empty block on
    /// first visit.
    pub fn ensure(&mut self, node: u32) -> u32 {
        if let Some(&base) = self.node_base.get(&node) {
            return base;
        }
        let base = self.heads.len() as u32;
        self.heads.resize(self.heads.len() + self.n_terms, NIL);
        self.tails.resize(self.tails.len() + self.n_terms, NIL);
        self.lens.resize(self.lens.len() + self.n_terms, 0);
        self.node_base.insert(node, base);
        base
    }

    /// Append `origin` to the `term` list of the block at `base`,
    /// preserving insertion order.
    pub fn push(&mut self, base: u32, term: usize, origin: u32) {
        let slot = base as usize + term;
        let entry = self.entries.len() as u32;
        self.entries.push((origin, NIL));
        if self.tails[slot] == NIL {
            self.heads[slot] = entry;
        } else {
            self.entries[self.tails[slot] as usize].1 = entry;
        }
        self.tails[slot] = entry;
        self.lens[slot] += 1;
    }

    /// Length of the `term` list at `base`.
    #[inline]
    pub fn len(&self, base: u32, term: usize) -> usize {
        self.lens[base as usize + term] as usize
    }

    /// First entry index of the `term` list at `base` ([`NIL`] if empty).
    #[inline]
    pub fn head(&self, base: u32, term: usize) -> u32 {
        self.heads[base as usize + term]
    }

    /// The origin stored at `entry`.
    #[inline]
    pub fn origin(&self, entry: u32) -> u32 {
        self.entries[entry as usize].0
    }

    /// The entry after `entry` ([`NIL`] at the end of a list).
    #[inline]
    pub fn next(&self, entry: u32) -> u32 {
        self.entries[entry as usize].1
    }

    /// Iterate a list in insertion order (diagnostics and tests).
    pub fn iter(&self, base: u32, term: usize) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.head(base, term);
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let origin = self.origin(cur);
            cur = self.next(cur);
            Some(origin)
        })
    }

    /// Shrink policy: drop this query's content and clamp every backing
    /// buffer to at most `max_entries` entries, so one broad query does
    /// not pin its high-water mark in a long-lived worker arena forever.
    /// Called at the end of a search — the next query `reset`s anyway.
    pub fn shrink(&mut self, max_entries: usize) {
        self.node_base.clear();
        self.heads.clear();
        self.tails.clear();
        self.lens.clear();
        self.entries.clear();
        if self.entries.capacity() > max_entries {
            self.entries.shrink_to(max_entries);
        }
        if self.heads.capacity() > max_entries {
            self.heads.shrink_to(max_entries);
            self.tails.shrink_to(max_entries);
            self.lens.shrink_to(max_entries);
        }
        if self.node_base.capacity() > max_entries {
            self.node_base.shrink_to(max_entries);
        }
    }

    /// Bytes retained by the pool's backing buffers.
    pub fn retained_bytes(&self) -> usize {
        use std::mem::size_of;
        self.entries.capacity() * size_of::<(u32, u32)>()
            + (self.heads.capacity() + self.tails.capacity() + self.lens.capacity())
                * size_of::<u32>()
            + self.node_base.capacity() * size_of::<(u32, u32)>()
    }
}

/// Reusable buffers for the cross-product enumerator: one dimension per
/// *other* search term (`terms`/`heads`/`lens`), the mixed-radix odometer
/// (`counter` + linked-list `cursors`), and the per-tree `origins`/`edges`
/// assembly buffers.
#[derive(Debug, Clone, Default)]
pub struct CrossScratch {
    /// Term index of each enumerated dimension.
    pub terms: Vec<usize>,
    /// List head entry per dimension (for odometer wrap-around).
    pub heads: Vec<u32>,
    /// List length per dimension.
    pub lens: Vec<usize>,
    /// Mixed-radix counter, one digit per dimension.
    pub counter: Vec<usize>,
    /// Current list entry per dimension (tracks `counter` in O(1)).
    pub cursors: Vec<u32>,
    /// Per-term chosen keyword node of the tree being assembled.
    pub origins: Vec<NodeId>,
    /// Union of root→origin path edges of the tree being assembled.
    pub edges: Vec<(NodeId, NodeId, f64)>,
}

impl CrossScratch {
    /// Drop all dimensions (allocation-preserving).
    pub fn clear_dims(&mut self) {
        self.terms.clear();
        self.heads.clear();
        self.lens.clear();
    }

    /// Add one enumerated dimension.
    pub fn push_dim(&mut self, term: usize, head: u32, len: usize) {
        self.terms.push(term);
        self.heads.push(head);
        self.lens.push(len);
    }

    /// Bytes retained by the scratch buffers.
    pub fn retained_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.terms.capacity() + self.counter.capacity()) * size_of::<usize>()
            + (self.heads.capacity() + self.cursors.capacity()) * size_of::<u32>()
            + self.lens.capacity() * size_of::<usize>()
            + self.origins.capacity() * size_of::<NodeId>()
            + self.edges.capacity() * size_of::<(NodeId, NodeId, f64)>()
    }
}

/// Pooled [`DijkstraState`] blocks for ONE expansion shard of the
/// parallel executor. Each shard (one per keyword set) owns its slice of
/// the sharded arena for the duration of a query, so checkout/recycle on
/// its own thread needs no synchronization; the blocks are handed back
/// when the scoped threads join.
#[derive(Debug, Default)]
pub struct ShardArena {
    idle: Vec<DijkstraState>,
    states_created: u64,
    states_reused: u64,
}

impl ShardArena {
    /// Blocks one shard's idle pool retains (shards hold one block per
    /// keyword origin of *their* set, typically just a few).
    pub const MAX_IDLE_STATES: usize = 8;

    /// Take a block, reusing an idle one when available.
    pub fn checkout(&mut self, n_nodes: usize) -> DijkstraState {
        match self.idle.pop() {
            Some(state) => {
                self.states_reused += 1;
                state
            }
            None => {
                self.states_created += 1;
                DijkstraState::new(n_nodes)
            }
        }
    }

    /// Return a block (dropped once the pool is full; the retained
    /// queue buffer is clamped by the shrink policy).
    pub fn recycle(&mut self, mut state: DijkstraState) {
        if self.idle.len() < Self::MAX_IDLE_STATES {
            state.shrink_queue(SearchArena::RETAINED_HEAP_ENTRIES);
            self.idle.push(state);
        }
    }

    /// Number of idle pooled blocks.
    pub fn pooled_states(&self) -> usize {
        self.idle.len()
    }

    /// `(created, reused)` checkout counters since construction.
    pub fn state_counters(&self) -> (u64, u64) {
        (self.states_created, self.states_reused)
    }

    /// Bytes retained by the idle blocks.
    pub fn retained_bytes(&self) -> usize {
        self.idle.iter().map(DijkstraState::retained_bytes).sum()
    }
}

/// Merge-stage scratch of the parallel executor: one path map per
/// Dijkstra iterator (`node → (parent, edge weight)`, filled from
/// settled-node events in consumption order), pooled so steady-state
/// parallel serving reuses the maps' buckets instead of reallocating.
#[derive(Debug, Default)]
pub struct MergeScratch {
    maps: Vec<FxHashMap<u32, (u32, f64)>>,
}

impl MergeScratch {
    /// Cleared maps for `n` iterators (allocation-preserving).
    pub fn maps(&mut self, n: usize) -> &mut [FxHashMap<u32, (u32, f64)>] {
        for m in self.maps.iter_mut().take(n) {
            m.clear();
        }
        while self.maps.len() < n {
            self.maps.push(FxHashMap::default());
        }
        &mut self.maps[..n]
    }

    /// Shrink policy: clamp each retained map to `max_entries` capacity
    /// and the map list itself to `max_maps`.
    pub fn shrink(&mut self, max_maps: usize, max_entries: usize) {
        self.maps.truncate(max_maps);
        for m in &mut self.maps {
            if m.capacity() > max_entries {
                m.clear();
                m.shrink_to(max_entries);
            }
        }
    }

    /// Approximate bytes retained by the pooled maps.
    pub fn retained_bytes(&self) -> usize {
        self.maps
            .iter()
            .map(|m| m.capacity() * std::mem::size_of::<(u32, (u32, f64))>())
            .sum()
    }
}

/// Cooperative cancellation for one in-flight search.
///
/// The serving layer arms the token with the request's absolute
/// deadline before dispatching a search; the expansion loops poll
/// [`DeadlineToken::expired`] once per pop. A poll reads the monotonic
/// clock only every [`DeadlineToken::POLL_INTERVAL`] calls, so the hot
/// loop pays one decrement-and-branch per pop. Unarmed (the default),
/// every poll is `false` — searches outside a server never expire.
#[derive(Debug, Default)]
pub struct DeadlineToken {
    deadline: Option<std::time::Instant>,
    expired: bool,
    countdown: u32,
}

impl DeadlineToken {
    /// Polls between clock reads. At BANKS pop rates (millions/s) this
    /// bounds deadline overshoot to well under a millisecond.
    pub const POLL_INTERVAL: u32 = 256;

    /// Arm with an absolute deadline (`None` disarms). Resets the
    /// sticky expired flag; the first poll after arming reads the
    /// clock, so an already-lapsed deadline is caught immediately.
    pub fn arm(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
        self.expired = false;
        self.countdown = 0;
    }

    /// Disarm the token (between queries on a pooled arena).
    pub fn clear(&mut self) {
        self.arm(None);
    }

    /// Has the armed deadline passed? Sticky once `true` until re-armed.
    #[inline]
    pub fn expired(&mut self) -> bool {
        if self.expired {
            return true;
        }
        let Some(deadline) = self.deadline else {
            return false;
        };
        if self.countdown > 0 {
            self.countdown -= 1;
            return false;
        }
        self.countdown = Self::POLL_INTERVAL;
        self.expired = std::time::Instant::now() >= deadline;
        self.expired
    }
}

/// Pooled scratch memory for one search worker.
///
/// Owns idle [`DijkstraState`] blocks plus the kernel's origin-list and
/// cross-product buffers. One arena serves one thread at a time; a server
/// gives each worker thread its own persistent arena, and the blocks
/// adapt to graph-size changes across ingestion epochs on checkout.
///
/// **Memory trade.** A dense block costs ~20 bytes × `n_nodes`, and the
/// backward search checks out one per keyword origin — O(origins ×
/// nodes) transiently, where the old hash-map kernel grew only with
/// visited nodes. That is the right trade for selective keyword sets
/// (the backward-search regime); terms matching thousands of tuples
/// should run the §7 forward strategy, which uses two blocks total
/// regardless of set size. So that one broad query cannot permanently
/// inflate a long-lived worker, the idle pool retains at most
/// [`SearchArena::MAX_IDLE_STATES`] blocks — excess blocks are freed on
/// recycle.
#[derive(Debug, Default)]
pub struct SearchArena {
    /// Per-query trace spans. Disabled by default (one branch per probe
    /// point); the serving layer enables it for traced queries and
    /// drains it after the search returns.
    pub spans: banks_telemetry::SpanBuffer,
    idle: Vec<DijkstraState>,
    /// Flattened `u.Lᵢ` origin lists.
    pub lists: OriginListPool,
    /// Cross-product enumeration buffers.
    pub cross: CrossScratch,
    /// Per-shard state pools for the parallel executor, one per keyword
    /// set (grown on demand; see [`SearchArena::shard_pools`]).
    shards: Vec<ShardArena>,
    /// Merge-stage path maps for the parallel executor.
    pub merge: MergeScratch,
    /// Cooperative-cancellation token polled by the expansion loops.
    pub deadline: DeadlineToken,
    states_created: u64,
    states_reused: u64,
}

impl SearchArena {
    /// An empty arena; memory is acquired on first use and retained.
    pub fn new() -> SearchArena {
        SearchArena::default()
    }

    /// Take a dense state block for a graph of `n_nodes` nodes, reusing an
    /// idle block when one exists. The block is epoch-reset (and resized
    /// if the graph changed) by [`crate::Dijkstra::new_in`].
    pub fn checkout(&mut self, n_nodes: usize) -> DijkstraState {
        match self.idle.pop() {
            Some(state) => {
                self.states_reused += 1;
                state
            }
            None => {
                self.states_created += 1;
                DijkstraState::new(n_nodes)
            }
        }
    }

    /// Blocks the idle pool retains; recycling beyond this frees the
    /// block instead, bounding a worker's steady-state footprint at
    /// ~20 bytes × nodes × this cap even after one query with an
    /// unusually broad keyword set.
    pub const MAX_IDLE_STATES: usize = 32;

    /// Distance-queue entries a recycled block keeps (the shrink policy
    /// of [`DistHeap::shrink_to_entries`]): ~16 K entries ≈ 256 KiB.
    pub const RETAINED_HEAP_ENTRIES: usize = 1 << 14;

    /// Origin-list pool entries retained between queries (~512 KiB).
    pub const RETAINED_LIST_ENTRIES: usize = 1 << 16;

    /// Path-map entries per pooled merge map retained between queries.
    pub const RETAINED_MERGE_ENTRIES: usize = 1 << 14;

    /// Pooled merge maps retained between queries.
    pub const RETAINED_MERGE_MAPS: usize = 64;

    /// Return a block to the pool (dropped once the pool is full; the
    /// retained distance-queue buffer is clamped by the shrink policy).
    pub fn recycle(&mut self, mut state: DijkstraState) {
        if self.idle.len() < Self::MAX_IDLE_STATES {
            state.shrink_queue(Self::RETAINED_HEAP_ENTRIES);
            self.idle.push(state);
        }
    }

    /// Number of idle pooled blocks.
    pub fn pooled_states(&self) -> usize {
        self.idle.len()
    }

    /// `(created, reused)` checkout counters since construction.
    pub fn state_counters(&self) -> (u64, u64) {
        (self.states_created, self.states_reused)
    }

    /// The sharded half of the arena: one independent [`ShardArena`] per
    /// expansion shard (keyword set), grown on demand. The returned
    /// slice borrows each pool mutably and disjointly, so the parallel
    /// executor can lend one `&mut ShardArena` to each scoped thread.
    pub fn shard_pools(&mut self, n_shards: usize) -> &mut [ShardArena] {
        while self.shards.len() < n_shards {
            self.shards.push(ShardArena::default());
        }
        &mut self.shards[..n_shards]
    }

    /// End-of-query shrink policy: drop per-query content and clamp
    /// every pooled buffer to its retention cap, so one pathological
    /// query cannot pin its worst-case footprint in a worker forever.
    pub fn trim(&mut self) {
        self.lists.shrink(Self::RETAINED_LIST_ENTRIES);
        self.merge
            .shrink(Self::RETAINED_MERGE_MAPS, Self::RETAINED_MERGE_ENTRIES);
    }

    /// Bytes currently pinned by the arena's pooled memory (idle state
    /// blocks, origin lists, cross-product scratch, shard pools, merge
    /// maps) — surfaced as `SearchStats::arena_retained_bytes`.
    pub fn retained_bytes(&self) -> usize {
        self.idle
            .iter()
            .map(DijkstraState::retained_bytes)
            .sum::<usize>()
            + self.lists.retained_bytes()
            + self.cross.retained_bytes()
            + self
                .shards
                .iter()
                .map(ShardArena::retained_bytes)
                .sum::<usize>()
            + self.merge.retained_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bump_invalidates_without_clearing() {
        let mut s = DijkstraState::new(4);
        s.touch(2, 1.5, 0, 0);
        s.settle(2);
        assert!(s.is_touched(2) && s.is_settled(2));
        s.reset(4);
        assert!(!s.is_touched(2) && !s.is_settled(2));
        assert_eq!(s.settled_count(), 0);
        // Stale payloads are unreachable until re-touched.
        s.touch(2, 9.0, NIL, NIL);
        assert_eq!(s.dist_of(2), 9.0);
    }

    #[test]
    fn reset_resizes_for_a_grown_graph() {
        let mut s = DijkstraState::new(2);
        s.touch(1, 3.0, 0, 0);
        s.reset(5);
        assert_eq!(s.capacity(), 5);
        assert!(!s.is_touched(1));
        s.touch(4, 1.0, NIL, NIL);
        assert!(s.is_touched(4));
        // Shrink is equally safe.
        s.reset(3);
        assert_eq!(s.capacity(), 3);
    }

    #[test]
    fn epoch_wrap_rebuilds_stamps() {
        let mut s = DijkstraState::new(2);
        s.epoch = u32::MAX - 1;
        s.touched[0] = u32::MAX; // would collide after a naive bump
        s.reset(2);
        assert_eq!(s.epoch, u32::MAX);
        s.reset(2);
        assert_eq!(s.epoch, 1, "wrap resets the generation");
        assert!(!s.is_touched(0));
    }

    #[test]
    fn origin_lists_preserve_insertion_order() {
        let mut p = OriginListPool::default();
        p.reset(3);
        let b7 = p.ensure(7);
        let b9 = p.ensure(9);
        assert_eq!(p.ensure(7), b7, "ensure is idempotent");
        p.push(b7, 0, 100);
        p.push(b7, 0, 101);
        p.push(b7, 2, 200);
        p.push(b9, 0, 300);
        assert_eq!(p.iter(b7, 0).collect::<Vec<_>>(), vec![100, 101]);
        assert_eq!(p.iter(b7, 1).collect::<Vec<_>>(), Vec::<u32>::new());
        assert_eq!(p.iter(b7, 2).collect::<Vec<_>>(), vec![200]);
        assert_eq!(p.iter(b9, 0).collect::<Vec<_>>(), vec![300]);
        assert_eq!(p.len(b7, 0), 2);
        // Walk the links by hand: head → next → NIL.
        let h = p.head(b7, 0);
        assert_eq!(p.origin(h), 100);
        assert_eq!(p.origin(p.next(h)), 101);
        assert_eq!(p.next(p.next(h)), NIL);
        // Reset keeps capacity but drops content.
        p.reset(2);
        let b = p.ensure(7);
        assert_eq!(p.len(b, 0), 0);
    }

    #[test]
    fn arena_pools_states() {
        let mut a = SearchArena::new();
        let s1 = a.checkout(10);
        let s2 = a.checkout(10);
        assert_eq!(a.state_counters(), (2, 0));
        a.recycle(s1);
        a.recycle(s2);
        assert_eq!(a.pooled_states(), 2);
        let _s = a.checkout(10);
        assert_eq!(a.state_counters(), (2, 1));
        assert_eq!(a.pooled_states(), 1);
    }

    #[test]
    fn idle_pool_is_bounded() {
        let mut a = SearchArena::new();
        let blocks: Vec<_> = (0..SearchArena::MAX_IDLE_STATES + 10)
            .map(|_| a.checkout(4))
            .collect();
        for b in blocks {
            a.recycle(b);
        }
        assert_eq!(
            a.pooled_states(),
            SearchArena::MAX_IDLE_STATES,
            "one broad query must not permanently inflate the pool"
        );
    }

    #[test]
    fn shard_pools_grow_on_demand_and_pool_independently() {
        let mut a = SearchArena::new();
        let pools = a.shard_pools(3);
        assert_eq!(pools.len(), 3);
        let s0 = pools[0].checkout(8);
        let s1 = pools[1].checkout(8);
        pools[0].recycle(s0);
        pools[1].recycle(s1);
        assert_eq!(pools[0].pooled_states(), 1);
        assert_eq!(pools[1].pooled_states(), 1);
        assert_eq!(pools[2].pooled_states(), 0);
        assert_eq!(pools[0].state_counters(), (1, 0));
        let _warm = pools[0].checkout(8);
        assert_eq!(pools[0].state_counters(), (1, 1));
        // Re-request keeps the existing pools (and their contents).
        let pools = a.shard_pools(2);
        assert_eq!(pools[1].pooled_states(), 1);
        // Shard pools count toward the arena's retained bytes.
        assert!(a.retained_bytes() > 0);
    }

    #[test]
    fn shard_recycle_caps_pool_and_queue() {
        let mut p = ShardArena::default();
        let blocks: Vec<_> = (0..ShardArena::MAX_IDLE_STATES + 4)
            .map(|_| {
                let mut s = p.checkout(4);
                for i in 0..100_000u32 {
                    s.heap.push(i as f64, i % 4);
                }
                s
            })
            .collect();
        for b in blocks {
            p.recycle(b);
        }
        assert_eq!(p.pooled_states(), ShardArena::MAX_IDLE_STATES);
        assert!(
            p.retained_bytes()
                <= ShardArena::MAX_IDLE_STATES
                    * (DijkstraState::new(4).retained_bytes()
                        + SearchArena::RETAINED_HEAP_ENTRIES * 16),
            "recycled queue buffers must be clamped by the shrink policy"
        );
    }

    #[test]
    fn trim_unpins_a_huge_query() {
        let mut a = SearchArena::new();
        a.lists.reset(2);
        for node in 0..200_000u32 {
            let base = a.lists.ensure(node);
            a.lists.push(base, 0, node);
        }
        let maps = a.merge.maps(4);
        for m in maps.iter_mut() {
            for i in 0..100_000u32 {
                m.insert(i, (i, 0.0));
            }
        }
        let before = a.retained_bytes();
        a.trim();
        let after = a.retained_bytes();
        assert!(
            after < before / 4,
            "trim must release the bulk of a pathological query's memory \
             ({before} -> {after})"
        );
        // The pools remain usable after trimming.
        a.lists.reset(2);
        let base = a.lists.ensure(7);
        a.lists.push(base, 1, 9);
        assert_eq!(a.lists.iter(base, 1).collect::<Vec<_>>(), vec![9]);
        assert_eq!(a.merge.maps(2).len(), 2);
    }
}
