//! Binary graph snapshots.
//!
//! §5.2 measures a "graph load" phase; with the CSR representation that
//! load can be reduced to a single sequential read. A snapshot is a
//! versioned little-endian dump of the graph arrays with a checksum, so a
//! 100K-node graph restores in milliseconds without re-deriving edge
//! weights from the database.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "BNKSGRPH"            8 bytes
//! version u32                  (currently 1)
//! node_count u64, edge_count u64
//! node_weights  [f64; node_count]
//! fwd_offsets   [u32; node_count + 1]
//! fwd_targets   [u32; edge_count]
//! fwd_weights   [f64; edge_count]
//! checksum u64                 (FxHasher over everything above)
//! ```
//!
//! The reverse CSR is rebuilt on load (it is derived data), keeping
//! snapshots at ~60% of the in-memory footprint.

use crate::fxhash::FxHasher;
use crate::graph::Graph;
#[cfg(test)]
use crate::graph::GraphBuilder;
use std::hash::Hasher;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"BNKSGRPH";
const VERSION: u32 = 1;

/// Errors raised while reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a snapshot file (bad magic).
    BadMagic,
    /// Snapshot produced by an incompatible version.
    BadVersion(u32),
    /// Payload corrupted (checksum mismatch).
    BadChecksum,
    /// Structurally invalid payload (e.g. offsets out of order).
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a BANKS graph snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

struct ChecksumWriter<W: Write> {
    inner: W,
    hasher: FxHasher,
}

impl<W: Write> ChecksumWriter<W> {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hasher.write(bytes);
        self.inner.write_all(bytes)
    }
}

/// Serialize `graph` to `out`.
pub fn write_snapshot<W: Write>(graph: &Graph, out: W) -> Result<(), SnapshotError> {
    let mut w = ChecksumWriter {
        inner: out,
        hasher: FxHasher::default(),
    };
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(graph.node_count() as u64).to_le_bytes())?;
    w.write_all(&(graph.edge_count() as u64).to_le_bytes())?;
    for node in graph.nodes() {
        w.write_all(&graph.node_weight(node).to_le_bytes())?;
    }
    // Forward CSR, reconstructed from the public adjacency view.
    let mut offset = 0u32;
    w.write_all(&offset.to_le_bytes())?;
    for node in graph.nodes() {
        offset += graph.out_degree(node) as u32;
        w.write_all(&offset.to_le_bytes())?;
    }
    for node in graph.nodes() {
        for (target, _) in graph.out_edges(node) {
            w.write_all(&target.0.to_le_bytes())?;
        }
    }
    for node in graph.nodes() {
        for (_, weight) in graph.out_edges(node) {
            w.write_all(&weight.to_le_bytes())?;
        }
    }
    let checksum = w.hasher.finish();
    w.inner.write_all(&checksum.to_le_bytes())?;
    Ok(())
}

/// Serialize `graph` to the file at `path` **atomically**: the bytes go
/// to a sibling temp file that is fsync'd and renamed over `path`, so a
/// crash mid-save can never leave a truncated snapshot behind a
/// valid-looking name. This is the only sanctioned way to put a snapshot
/// on disk; [`write_snapshot`] remains for in-memory and streaming uses.
pub fn save_snapshot(graph: &Graph, path: &std::path::Path) -> Result<(), SnapshotError> {
    banks_util::fs::atomic_write(path, |w| {
        write_snapshot(graph, w).map_err(|e| match e {
            SnapshotError::Io(io) => io,
            other => io::Error::other(other.to_string()),
        })
    })
    .map_err(SnapshotError::Io)
}

struct ChecksumReader<R: Read> {
    inner: R,
    hasher: FxHasher,
}

impl<R: Read> ChecksumReader<R> {
    fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact(buf)?;
        self.hasher.write(buf);
        Ok(())
    }

    fn read_u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Bulk-read `count` little-endian f64s in one underlying read.
    ///
    /// Checksum-compatible with the field-at-a-time writer: hashing one
    /// `count × 8`-byte slice folds the same 8-byte words in the same
    /// order as `count` separate 8-byte writes (see
    /// `FxHasher::write`'s `chunks_exact(8)` loop).
    fn read_f64_array(&mut self, count: usize) -> io::Result<Vec<f64>> {
        let mut bytes = vec![0u8; count * 8];
        self.read_exact(&mut bytes)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Bulk-read `count` little-endian u32s in one underlying read.
    ///
    /// u32 fields are hashed one-per-word by the writer (each 4-byte
    /// write zero-pads to its own u64), so the bulk bytes are read
    /// unhashed and then fed to the hasher in 4-byte chunks to
    /// reproduce the writer's fold exactly.
    fn read_u32_array(&mut self, count: usize) -> io::Result<Vec<u32>> {
        let mut bytes = vec![0u8; count * 4];
        self.inner.read_exact(&mut bytes)?;
        let mut out = Vec::with_capacity(count);
        for chunk in bytes.chunks_exact(4) {
            self.hasher.write(chunk);
            out.push(u32::from_le_bytes(chunk.try_into().expect("4 bytes")));
        }
        Ok(out)
    }
}

/// Deserialize a graph from `input`.
pub fn read_snapshot<R: Read>(input: R) -> Result<Graph, SnapshotError> {
    let mut r = ChecksumReader {
        inner: input,
        hasher: FxHasher::default(),
    };
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.read_u32()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let node_count = r.read_u64()? as usize;
    let edge_count = r.read_u64()? as usize;
    // Arbitrary sanity cap: a snapshot cannot legitimately exceed u32 ids.
    if node_count > u32::MAX as usize || edge_count > u32::MAX as usize {
        return Err(SnapshotError::Malformed(
            "counts exceed u32 id space".into(),
        ));
    }

    let node_weights = r.read_f64_array(node_count)?;
    let offsets = r.read_u32_array(node_count + 1)?;
    if offsets.first() != Some(&0) || offsets.last() != Some(&(edge_count as u32)) {
        return Err(SnapshotError::Malformed("offset endpoints".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Malformed("offsets not monotone".into()));
    }
    let targets = r.read_u32_array(edge_count)?;
    if let Some(&t) = targets.iter().find(|&&t| t as usize >= node_count) {
        return Err(SnapshotError::Malformed(format!("target {t} out of range")));
    }
    let weights = r.read_f64_array(edge_count)?;
    let expected = r.hasher.finish();
    let mut checksum_bytes = [0u8; 8];
    r.inner.read_exact(&mut checksum_bytes)?;
    if u64::from_le_bytes(checksum_bytes) != expected {
        return Err(SnapshotError::BadChecksum);
    }

    // A graph serialized from CSR form lists each node's adjacency in
    // strictly increasing target order ([`crate::GraphBuilder::build`]
    // sorts and coalesces); verify that cheaply, then hand the arrays
    // straight to [`Graph::from_csr`] — no builder, no re-sort, no edge
    // triple materialization.
    for node in 0..node_count {
        let lo = offsets[node] as usize;
        let hi = offsets[node + 1] as usize;
        if targets[lo..hi].windows(2).any(|w| w[0] >= w[1]) {
            return Err(SnapshotError::Malformed(format!(
                "adjacency of node {node} not strictly sorted"
            )));
        }
    }
    Ok(Graph::from_csr(node_weights, offsets, targets, weights))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..50).map(|i| b.add_node(i as f64 * 0.5)).collect();
        for i in 0..nodes.len() {
            b.add_edge(nodes[i], nodes[(i + 1) % nodes.len()], 1.0 + i as f64);
            if i % 3 == 0 {
                b.add_edge(nodes[i], nodes[(i + 7) % nodes.len()], 2.5);
            }
        }
        b.build()
    }

    fn roundtrip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        write_snapshot(g, &mut buf).unwrap();
        read_snapshot(buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let h = roundtrip(&g);
        assert_eq!(g.node_count(), h.node_count());
        assert_eq!(g.edge_count(), h.edge_count());
        assert_eq!(g.min_edge_weight(), h.min_edge_weight());
        assert_eq!(g.max_node_weight(), h.max_node_weight());
        for v in g.nodes() {
            assert_eq!(g.node_weight(v), h.node_weight(v));
            let a: Vec<_> = g.out_edges(v).collect();
            let b: Vec<_> = h.out_edges(v).collect();
            assert_eq!(a, b);
            let a: Vec<_> = g.in_edges(v).collect();
            let b: Vec<_> = h.in_edges(v).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = GraphBuilder::new().build();
        let h = roundtrip(&g);
        assert_eq!(h.node_count(), 0);
        assert_eq!(h.edge_count(), 0);
    }

    #[test]
    fn corruption_detected() {
        let g = sample();
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        // Flip one payload byte.
        let mid = buf.len() / 2;
        buf[mid] ^= 0xff;
        match read_snapshot(buf.as_slice()) {
            Err(SnapshotError::BadChecksum) | Err(SnapshotError::Malformed(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let g = sample();
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 9);
        assert!(matches!(
            read_snapshot(buf.as_slice()),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn bad_magic_and_version() {
        let err = read_snapshot(&b"NOTAGRPH________"[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic));

        let g = GraphBuilder::new().build();
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        buf[8] = 99; // version byte
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        // Version check fires before the checksum is verified.
        assert!(matches!(err, SnapshotError::BadVersion(_)));
    }

    #[test]
    fn save_snapshot_is_atomic_and_loadable() {
        let g = sample();
        let dir = std::env::temp_dir().join(format!("banks_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.graph");
        save_snapshot(&g, &path).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let h = read_snapshot(std::io::BufReader::new(file)).unwrap();
        assert_eq!(g.node_count(), h.node_count());
        assert_eq!(g.edge_count(), h.edge_count());
        // No temp files survive a successful save.
        let temps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(temps.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn display_messages() {
        assert!(SnapshotError::BadMagic.to_string().contains("snapshot"));
        assert!(SnapshotError::BadVersion(7).to_string().contains('7'));
        assert!(SnapshotError::BadChecksum.to_string().contains("checksum"));
    }
}
