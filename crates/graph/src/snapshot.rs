//! Binary graph snapshots.
//!
//! §5.2 measures a "graph load" phase; with the CSR representation that
//! load can be reduced to a single sequential read. A snapshot is a
//! versioned little-endian dump of the graph arrays with a checksum, so a
//! 100K-node graph restores in milliseconds without re-deriving edge
//! weights from the database.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "BNKSGRPH"            8 bytes
//! version u32                  (currently 1)
//! node_count u64, edge_count u64
//! node_weights  [f64; node_count]
//! fwd_offsets   [u32; node_count + 1]
//! fwd_targets   [u32; edge_count]
//! fwd_weights   [f64; edge_count]
//! checksum u64                 (FxHasher over everything above)
//! ```
//!
//! The reverse CSR is rebuilt on load (it is derived data), keeping
//! snapshots at ~60% of the in-memory footprint.

use crate::fxhash::FxHasher;
use crate::graph::{Graph, GraphBuilder, NodeId};
use std::hash::Hasher;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"BNKSGRPH";
const VERSION: u32 = 1;

/// Errors raised while reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a snapshot file (bad magic).
    BadMagic,
    /// Snapshot produced by an incompatible version.
    BadVersion(u32),
    /// Payload corrupted (checksum mismatch).
    BadChecksum,
    /// Structurally invalid payload (e.g. offsets out of order).
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a BANKS graph snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

struct ChecksumWriter<W: Write> {
    inner: W,
    hasher: FxHasher,
}

impl<W: Write> ChecksumWriter<W> {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hasher.write(bytes);
        self.inner.write_all(bytes)
    }
}

/// Serialize `graph` to `out`.
pub fn write_snapshot<W: Write>(graph: &Graph, out: W) -> Result<(), SnapshotError> {
    let mut w = ChecksumWriter {
        inner: out,
        hasher: FxHasher::default(),
    };
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(graph.node_count() as u64).to_le_bytes())?;
    w.write_all(&(graph.edge_count() as u64).to_le_bytes())?;
    for node in graph.nodes() {
        w.write_all(&graph.node_weight(node).to_le_bytes())?;
    }
    // Forward CSR, reconstructed from the public adjacency view.
    let mut offset = 0u32;
    w.write_all(&offset.to_le_bytes())?;
    for node in graph.nodes() {
        offset += graph.out_degree(node) as u32;
        w.write_all(&offset.to_le_bytes())?;
    }
    for node in graph.nodes() {
        for (target, _) in graph.out_edges(node) {
            w.write_all(&target.0.to_le_bytes())?;
        }
    }
    for node in graph.nodes() {
        for (_, weight) in graph.out_edges(node) {
            w.write_all(&weight.to_le_bytes())?;
        }
    }
    let checksum = w.hasher.finish();
    w.inner.write_all(&checksum.to_le_bytes())?;
    Ok(())
}

struct ChecksumReader<R: Read> {
    inner: R,
    hasher: FxHasher,
}

impl<R: Read> ChecksumReader<R> {
    fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact(buf)?;
        self.hasher.write(buf);
        Ok(())
    }

    fn read_u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn read_f64(&mut self) -> io::Result<f64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
}

/// Deserialize a graph from `input`.
pub fn read_snapshot<R: Read>(input: R) -> Result<Graph, SnapshotError> {
    let mut r = ChecksumReader {
        inner: input,
        hasher: FxHasher::default(),
    };
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.read_u32()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let node_count = r.read_u64()? as usize;
    let edge_count = r.read_u64()? as usize;
    // Arbitrary sanity cap: a snapshot cannot legitimately exceed u32 ids.
    if node_count > u32::MAX as usize || edge_count > u32::MAX as usize {
        return Err(SnapshotError::Malformed(
            "counts exceed u32 id space".into(),
        ));
    }

    let mut node_weights = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        node_weights.push(r.read_f64()?);
    }
    let mut offsets = Vec::with_capacity(node_count + 1);
    for _ in 0..=node_count {
        offsets.push(r.read_u32()?);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&(edge_count as u32)) {
        return Err(SnapshotError::Malformed("offset endpoints".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Malformed("offsets not monotone".into()));
    }
    let mut targets = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        let t = r.read_u32()?;
        if t as usize >= node_count {
            return Err(SnapshotError::Malformed(format!("target {t} out of range")));
        }
        targets.push(t);
    }
    let mut weights = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        weights.push(r.read_f64()?);
    }
    let expected = r.hasher.finish();
    let mut checksum_bytes = [0u8; 8];
    r.inner.read_exact(&mut checksum_bytes)?;
    if u64::from_le_bytes(checksum_bytes) != expected {
        return Err(SnapshotError::BadChecksum);
    }

    let mut builder = GraphBuilder::with_capacity(node_count, edge_count);
    for &w in &node_weights {
        builder.add_node(w);
    }
    for node in 0..node_count {
        let lo = offsets[node] as usize;
        let hi = offsets[node + 1] as usize;
        for e in lo..hi {
            builder.add_edge(NodeId(node as u32), NodeId(targets[e]), weights[e]);
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..50).map(|i| b.add_node(i as f64 * 0.5)).collect();
        for i in 0..nodes.len() {
            b.add_edge(nodes[i], nodes[(i + 1) % nodes.len()], 1.0 + i as f64);
            if i % 3 == 0 {
                b.add_edge(nodes[i], nodes[(i + 7) % nodes.len()], 2.5);
            }
        }
        b.build()
    }

    fn roundtrip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        write_snapshot(g, &mut buf).unwrap();
        read_snapshot(buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let h = roundtrip(&g);
        assert_eq!(g.node_count(), h.node_count());
        assert_eq!(g.edge_count(), h.edge_count());
        assert_eq!(g.min_edge_weight(), h.min_edge_weight());
        assert_eq!(g.max_node_weight(), h.max_node_weight());
        for v in g.nodes() {
            assert_eq!(g.node_weight(v), h.node_weight(v));
            let a: Vec<_> = g.out_edges(v).collect();
            let b: Vec<_> = h.out_edges(v).collect();
            assert_eq!(a, b);
            let a: Vec<_> = g.in_edges(v).collect();
            let b: Vec<_> = h.in_edges(v).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = GraphBuilder::new().build();
        let h = roundtrip(&g);
        assert_eq!(h.node_count(), 0);
        assert_eq!(h.edge_count(), 0);
    }

    #[test]
    fn corruption_detected() {
        let g = sample();
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        // Flip one payload byte.
        let mid = buf.len() / 2;
        buf[mid] ^= 0xff;
        match read_snapshot(buf.as_slice()) {
            Err(SnapshotError::BadChecksum) | Err(SnapshotError::Malformed(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let g = sample();
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 9);
        assert!(matches!(
            read_snapshot(buf.as_slice()),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn bad_magic_and_version() {
        let err = read_snapshot(&b"NOTAGRPH________"[..]).unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic));

        let g = GraphBuilder::new().build();
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        buf[8] = 99; // version byte
        let err = read_snapshot(buf.as_slice()).unwrap_err();
        // Version check fires before the checksum is verified.
        assert!(matches!(err, SnapshotError::BadVersion(_)));
    }

    #[test]
    fn display_messages() {
        assert!(SnapshotError::BadMagic.to_string().contains("snapshot"));
        assert!(SnapshotError::BadVersion(7).to_string().contains('7'));
        assert!(SnapshotError::BadChecksum.to_string().contains("checksum"));
    }
}
