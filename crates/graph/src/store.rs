//! Pluggable graph storage backends.
//!
//! [`Graph`] began life as a plain in-RAM CSR. To serve corpora larger
//! than memory, the graph can instead be backed by an out-of-core store
//! (the `banks-pager` crate's segment-paged CSR) that decodes adjacency
//! on demand. This module defines the seam between the two worlds: the
//! [`GraphStore`] trait is everything a backend must answer for the
//! search kernel to run unchanged, and [`StorageStats`] is the paging
//! telemetry a backend exposes to `/stats`.
//!
//! The trait deliberately mirrors the slice-returning accessors of the
//! in-RAM CSR (`out_adjacency_slots` and friends) rather than an
//! iterator protocol: the PR-4 `DijkstraState` relaxation loop is
//! written against raw `(&[u32], &[f64])` slices and must not grow an
//! allocation or a virtual call per *edge* — one virtual call per
//! *node expansion* is the entire dispatch cost of a paged backend.
//!
//! # Slice lifetime contract
//!
//! A paged backend cannot hand out slices borrowed from a cache entry
//! that a later access might evict. Backends therefore guarantee, and
//! callers rely on, the following contract for every slice-returning
//! method ([`GraphStore::out_adjacency_slots`],
//! [`GraphStore::in_adjacency_slots`], [`GraphStore::out_escores`]):
//!
//! > The returned slices stay valid until the same thread performs
//! > **63 further** adjacency accesses on *any* paged store, or the
//! > store is dropped, whichever comes first.
//!
//! (The pager implements this with a per-thread keep-alive ring of the
//! last 64 decoded segments; the in-RAM backend trivially satisfies it
//! since its arrays live as long as the graph.) The contract is exactly
//! what the search kernel needs: the relaxation loop consumes each
//! adjacency slice before requesting the next node's, and path
//! reconstruction reads single weights by value via
//! [`GraphStore::fwd_weight_at`]/[`GraphStore::rev_weight_at`] instead
//! of holding slices across iterations. Code that must hold many
//! adjacency lists at once (e.g. graph analysis sweeps) should copy the
//! slices or use the owned [`Graph::out_edges`] iterator.
//!
//! [`Graph`]: crate::Graph
//! [`Graph::out_edges`]: crate::Graph::out_edges

use crate::graph::Graph;
use crate::patch::GraphPatch;
use std::sync::Arc;

/// Paging telemetry for a [`GraphStore`] backend, surfaced through the
/// server's `/stats` endpoint as the `storage` object.
///
/// All byte figures count *decoded* (resident) data, not on-disk
/// compressed bytes; `resident_bytes` is what the `--memory-budget`
/// bound constrains.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StorageStats {
    /// Bytes of decoded segment data currently held in memory
    /// (pinned + LRU-cached).
    pub resident_bytes: usize,
    /// Bytes of decoded segment data in the pinned hot set (never
    /// evicted; a subset of `resident_bytes`).
    pub pinned_bytes: usize,
    /// The configured memory budget the cache evicts against, in bytes.
    pub budget_bytes: usize,
    /// Total segments in the store (forward + backward directions).
    pub segment_count: usize,
    /// Segments currently decoded and resident.
    pub resident_segments: usize,
    /// Segments in the pinned hot set.
    pub pinned_segments: usize,
    /// Cumulative count of segment decodes (cold page-ins; a re-decode
    /// after eviction counts again).
    pub page_ins: u64,
    /// Cumulative count of segments evicted from the LRU cache.
    pub evictions: u64,
    /// Cumulative wall-clock time spent decoding segments, in
    /// nanoseconds.
    pub decode_nanos: u64,
}

/// A storage backend for [`Graph`]: everything the search kernel, the
/// scorer, and the ingest pipeline need to answer about a CSR graph,
/// with the freedom to keep the underlying data out of core.
///
/// Two implementations exist: the built-in in-RAM CSR (the `InRam`
/// variant inside [`Graph`], which does not go through this trait on
/// its hot path) and `banks_pager::PagedGraphStore` (segment-paged,
/// budget-bounded). Node arguments are raw dense indexes (`NodeId.0`);
/// passing an out-of-range node may panic, as with the in-RAM arrays.
///
/// See the [module docs](self) for the slice lifetime contract that
/// all slice-returning methods share.
pub trait GraphStore: Send + Sync + std::fmt::Debug {
    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Number of directed edges.
    fn edge_count(&self) -> usize;

    /// Prestige weight of `node` (§2.2 node weight).
    fn node_weight(&self, node: u32) -> f64;

    /// Smallest strictly-positive edge weight (the paper's `w_min`
    /// normalizer); infinity for an edgeless graph.
    fn min_edge_weight(&self) -> f64;

    /// Largest node weight (`w_max`); zero for an empty graph.
    fn max_node_weight(&self) -> f64;

    /// Forward adjacency of `node` as `(first_slot, targets, weights)`,
    /// targets sorted ascending — the shape
    /// `Graph::out_adjacency_slots` promises the kernel.
    fn out_adjacency_slots(&self, node: u32) -> (u32, &[u32], &[f64]);

    /// Reverse adjacency of `node` as `(first_slot, sources, weights)`,
    /// sources sorted ascending.
    fn in_adjacency_slots(&self, node: u32) -> (u32, &[u32], &[f64]);

    /// Precomputed log-mode edge scores parallel to the forward
    /// adjacency of `node` — bit-identical to recomputing
    /// `log2(1 + w/w_min)` from this store's weights and
    /// [`min_edge_weight`](GraphStore::min_edge_weight).
    fn out_escores(&self, node: u32) -> &[f64];

    /// Weight stored at a forward CSR slot (by value, so path
    /// reconstruction never holds a slice across iterations).
    fn fwd_weight_at(&self, slot: u32) -> f64;

    /// Weight stored at a reverse CSR slot.
    fn rev_weight_at(&self, slot: u32) -> f64;

    /// Current in-memory footprint in bytes (resident decoded data plus
    /// directories/bookkeeping), i.e. what this backend actually costs
    /// in RAM right now — not the full decoded size of the graph.
    fn memory_bytes(&self) -> usize;

    /// Paging telemetry snapshot.
    fn storage_stats(&self) -> StorageStats;

    /// Copy-on-write fast path for ingest: produce a new [`Graph`]
    /// equal to this store patched by `patch`, sharing unchanged
    /// segments with `self`. Returns `None` when the backend cannot
    /// apply this patch structurally (e.g. the patch renumbers nodes),
    /// in which case the caller falls back to an in-RAM merge followed
    /// by [`reencode`](GraphStore::reencode).
    ///
    /// `patch` is pre-normalized by the caller: replacements sorted by
    /// `(from, to)` and deduplicated keeping the minimum weight.
    fn apply_patch(&self, patch: &GraphPatch) -> Option<Graph> {
        let _ = patch;
        None
    }

    /// Re-encode an in-RAM `graph` into a fresh store of this backend's
    /// kind, so a fallback in-RAM patch application can return to paged
    /// form. Returns `None` if the backend does not support re-encoding
    /// (the caller then publishes the in-RAM graph as-is).
    fn reencode(&self, graph: &Graph) -> Option<Arc<dyn GraphStore>> {
        let _ = graph;
        None
    }
}
