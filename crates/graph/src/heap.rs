//! A 4-ary min-heap specialized for the Dijkstra distance queue.
//!
//! `std::collections::BinaryHeap` is binary and max-ordered, which the old
//! kernel worked around with a reversed `Ord` wrapper. A 4-ary layout
//! halves the tree depth, keeps each sift-down's children in one cache
//! line (four `(f64, u32)` entries), and lets the arena recycle the
//! backing buffer between queries without reallocation.
//!
//! Ordering matches the old wrapper exactly — smallest distance first,
//! ties broken by the smaller node id — so pop order (and therefore every
//! downstream answer) is bit-identical to the `BinaryHeap` kernel.

/// Arity of the heap. Four children share a 64-byte line at 12 bytes per
/// packed entry.
const ARITY: usize = 4;

/// A min-heap of `(dist, node)` keys ordered by `f64::total_cmp` on the
/// distance, then ascending node id.
#[derive(Debug, Clone, Default)]
pub struct DistHeap {
    data: Vec<(f64, u32)>,
}

#[inline]
fn less(a: (f64, u32), b: (f64, u32)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    }
}

impl DistHeap {
    /// An empty heap.
    pub fn new() -> DistHeap {
        DistHeap::default()
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drop all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Current backing-buffer capacity, in entries.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Shrink policy: clamp the retained backing buffer to at most
    /// `max_entries` (keeping at least the current length). One huge
    /// query can grow the queue toward O(edges); without this, every
    /// recycled state would pin that worst case forever.
    pub fn shrink_to_entries(&mut self, max_entries: usize) {
        if self.data.capacity() > max_entries {
            self.data.shrink_to(max_entries);
        }
    }

    /// Bytes retained by the backing buffer.
    pub fn retained_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<(f64, u32)>()
    }

    /// The smallest entry, if any.
    #[inline]
    pub fn peek(&self) -> Option<(f64, u32)> {
        self.data.first().copied()
    }

    /// Insert an entry.
    #[inline]
    pub fn push(&mut self, dist: f64, node: u32) {
        self.data.push((dist, node));
        self.sift_up(self.data.len() - 1);
    }

    /// Remove and return the smallest entry.
    #[inline]
    pub fn pop(&mut self) -> Option<(f64, u32)> {
        let last = self.data.len().checked_sub(1)?;
        self.data.swap(0, last);
        let top = self.data.pop();
        if !self.data.is_empty() {
            self.sift_down(0);
        }
        top
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let entry = self.data[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if less(entry, self.data[parent]) {
                self.data[i] = self.data[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.data[i] = entry;
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.data.len();
        let entry = self.data[i];
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let mut best = first_child;
            let end = (first_child + ARITY).min(len);
            for c in first_child + 1..end {
                if less(self.data[c], self.data[best]) {
                    best = c;
                }
            }
            if less(self.data[best], entry) {
                self.data[i] = self.data[best];
                i = best;
            } else {
                break;
            }
        }
        self.data[i] = entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_distance_then_node_order() {
        let mut h = DistHeap::new();
        for &(d, n) in &[(2.0, 7), (1.0, 3), (2.0, 1), (0.5, 9), (1.0, 2)] {
            h.push(d, n);
        }
        let mut out = Vec::new();
        while let Some(e) = h.pop() {
            out.push(e);
        }
        assert_eq!(
            out,
            vec![(0.5, 9), (1.0, 2), (1.0, 3), (2.0, 1), (2.0, 7)],
            "ties break by node id"
        );
    }

    #[test]
    fn peek_matches_pop_and_clear_retains_capacity() {
        let mut h = DistHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
        h.push(3.0, 0);
        h.push(1.0, 1);
        assert_eq!(h.peek(), Some((1.0, 1)));
        assert_eq!(h.pop(), Some((1.0, 1)));
        assert_eq!(h.len(), 1);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.peek(), None);
    }

    #[test]
    fn shrink_policy_caps_capacity() {
        let mut h = DistHeap::new();
        for i in 0..10_000u32 {
            h.push(i as f64, i);
        }
        while h.pop().is_some() {}
        assert!(h.capacity() >= 10_000);
        h.shrink_to_entries(64);
        assert!(h.capacity() <= 64, "capacity {} not capped", h.capacity());
        assert!(h.retained_bytes() <= 64 * std::mem::size_of::<(f64, u32)>());
        // Shrinking never drops live entries.
        for i in 0..128u32 {
            h.push(i as f64, i);
        }
        h.shrink_to_entries(64);
        assert_eq!(h.len(), 128);
        assert_eq!(h.pop(), Some((0.0, 0)));
    }

    #[test]
    fn agrees_with_a_sort_on_random_input() {
        // Deterministic xorshift fuzz: heap order == lexicographic sort.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut h = DistHeap::new();
        let mut expected: Vec<(f64, u32)> = Vec::new();
        for _ in 0..500 {
            let d = (next() % 64) as f64 / 8.0;
            let n = (next() % 97) as u32;
            h.push(d, n);
            expected.push((d, n));
        }
        expected.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut got = Vec::new();
        while let Some(e) = h.pop() {
            got.push(e);
        }
        assert_eq!(got, expected);
    }
}
