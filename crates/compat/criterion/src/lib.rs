//! A minimal, dependency-free stand-in for the [`criterion`] benchmark
//! harness, so `cargo bench` works in fully offline environments.
//!
//! It implements the API subset the workspace's benches use — benchmark
//! groups, `sample_size`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — and reports median / min / max
//! nanoseconds-per-iteration on stdout. There is no statistical
//! analysis, outlier detection, or HTML report.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Target measurement time per sample batch.
const TARGET_BATCH: Duration = Duration::from_millis(25);
/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 10;

/// Smoke mode: `BANKS_BENCH_SMOKE=1` caps every benchmark at 2 samples
/// with a 1 ms batch target, so CI can execute each bench end to end in
/// seconds — catching bench bit-rot without producing usable numbers.
fn smoke_mode() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| {
        std::env::var("BANKS_BENCH_SMOKE")
            .map(|v| v != "0" && !v.is_empty())
            .unwrap_or(false)
    })
}

fn effective_samples(requested: usize) -> usize {
    if smoke_mode() {
        requested.min(2)
    } else {
        requested
    }
}

fn target_batch() -> Duration {
    if smoke_mode() {
        Duration::from_millis(1)
    } else {
        TARGET_BATCH
    }
}

/// The harness entry point, one per process.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().id, DEFAULT_SAMPLES, f);
        self
    }
}

/// A named benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Run a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; records one sample per [`Bencher::iter`]
/// call.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it enough times to fill the target batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: how many calls fit the batch target?
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let calls = (target_batch().as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let t0 = Instant::now();
        for _ in 0..calls {
            std::hint::black_box(f());
        }
        self.elapsed += t0.elapsed();
        self.iters += calls;
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let samples = effective_samples(samples);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        if bencher.iters > 0 {
            per_iter.push(bencher.ns_per_iter());
        }
    }
    if per_iter.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{name:<50} median {} (min {}, max {}, {} samples)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
        per_iter.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:7.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:7.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:7.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:7.3} s ", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("dedup", true).id, "dedup/true");
        assert_eq!(BenchmarkId::from_parameter(30).id, "30");
    }

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_function("noop", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }
}
