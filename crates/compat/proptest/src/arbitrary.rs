//! `any::<T>()` — default strategies per type.

use crate::strategy::Strategy;
use crate::TestRng;
use std::marker::PhantomData;

/// Types with a canonical strategy.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mix of boundary and uniform values: edge cases are
                    // where integer handling breaks.
                    match rng.below(8) {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => 1 as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(6) {
            0 => 0.0,
            1 => -1.0,
            2 => f64::MAX,
            _ => rng.next_f64() * 1e6 - 5e5,
        }
    }
}

/// Characters arbitrary strings draw from — deliberately adversarial for
/// text processing: CSV metacharacters, whitespace (including newlines),
/// and multibyte code points.
const STRING_CHARS: &[char] = &[
    'a', 'b', 'c', 'd', 'm', 'z', 'A', 'Z', '0', '7', ' ', ' ', ',', '"', '\'', '\n', '\r', '\t',
    ';', '|', '\\', '/', '{', '}', 'é', 'ü', '北', '京', '🦀', '\u{0}',
];

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        STRING_CHARS[rng.below(STRING_CHARS.len() as u64) as usize]
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.below(20) as usize;
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Vec<T> {
        let len = rng.below(12) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}
