//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// Admissible element counts for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// `Vec` strategy with element strategy and size range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
