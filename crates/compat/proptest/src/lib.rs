//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! This workspace builds in fully offline environments, so the property
//! tests cannot pull the real `proptest` from crates.io. This crate
//! implements exactly the API subset the workspace uses:
//!
//! * [`Strategy`](strategy::Strategy) with `prop_map` / `prop_flat_map`,
//! * integer/float range strategies, tuple strategies,
//!   [`Just`](strategy::Just),
//! * [`collection::vec`], [`bool::ANY`], `any::<T>()` for a few types,
//!   and `&'static str` patterns of the `.{lo,hi}` form,
//! * the [`proptest!`] macro with optional `#![proptest_config(..)]`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_oneof!`.
//!
//! Differences from the real crate: generated values are **not shrunk**
//! on failure, and each test's random stream is seeded deterministically
//! from the test's module path plus the case index, so failures are
//! reproducible run to run. The number of cases per property defaults to
//! 64 and can be overridden with the `PROPTEST_CASES` environment
//! variable or `ProptestConfig::with_cases`.
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod arbitrary;
pub mod collection;
pub mod strategy;

#[allow(clippy::module_inception)]
pub mod bool {
    //! Strategies for `bool` values.
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Uniform `true` / `false`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// The canonical boolean strategy.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// SplitMix64 — the same generator `banks-datagen` uses, duplicated here
/// so the compat crate stays dependency-free.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Deterministic per-test, per-case seed: FNV-1a over the test name mixed
/// with the case index.
pub fn test_rng(test_name: &str, case: u64) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Runner configuration. Only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Defines property tests. Each function body runs `config.cases` times
/// with freshly generated inputs; assertion macros panic on failure (no
/// shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the config expression is
/// threaded as a depth-0 capture so it can be reused in every test.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($p:pat_param in $s:expr),* $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    let _ = &mut __rng;
                    $(
                        let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);
                    )*
                    $body
                }
            }
        )+
    };
}

/// Assertion inside a property: plain `assert!` (failing cases are not
/// shrunk).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::arm($s) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_rng("x", 0);
        let mut b = crate::test_rng("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5, f in 0.25f64..=0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u16..9, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 9));
        }

        #[test]
        fn oneof_and_maps_compose(op in prop_oneof![
            (0u16..4).prop_map(|v| v as u32),
            Just(99u32),
        ]) {
            prop_assert!(op < 4 || op == 99);
        }

        #[test]
        fn string_pattern_lengths(s in ".{0,12}") {
            prop_assert!(s.chars().count() <= 12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_attribute_parses(b in crate::bool::ANY, o in any::<Option<i64>>()) {
            let _ = (b, o);
        }
    }
}
