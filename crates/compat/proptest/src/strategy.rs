//! The [`Strategy`] trait and its combinators.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values. Unlike the real proptest, a strategy
/// produces values directly (no value trees, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Characters `.{lo,hi}` patterns draw from: ASCII text, punctuation the
/// CSV layer finds adversarial, and a few multibyte code points. `\n` is
/// excluded because regex `.` does not match it.
const DOT_CHARS: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Q', '0', '1', '9', ' ', ' ', ',', '"', '\'', ';', ':', '-',
    '_', '.', '!', '?', '(', ')', '/', '\\', '\t', 'é', 'ß', '漢', '字', '→', '№',
];

/// `&'static str` regex-ish patterns. Only the `.{lo,hi}` form the
/// workspace uses is parsed; anything else falls back to a short random
/// string.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 24));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| DOT_CHARS[rng.below(DOT_CHARS.len() as u64) as usize])
            .collect()
    }
}

/// Parse `.{lo,hi}` into `(lo, hi)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Type-erased strategy arm used by `prop_oneof!`.
pub type Arm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Box a strategy into an [`Arm`].
pub fn arm<S: Strategy + 'static>(s: S) -> Arm<S::Value> {
    Box::new(move |rng| s.generate(rng))
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Arm<T>>,
}

impl<T> Union<T> {
    /// Build from at least one arm.
    pub fn new(arms: Vec<Arm<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}
