//! The observability smoke benchmark behind CI's `metrics-smoke` job.
//!
//! Starts a real `banks-server` over loopback TCP, drives a mixed
//! workload (cold queries, cache hits, a traced query, `/node`,
//! `/stats`, `/health`), then:
//!
//! * scrapes `GET /metrics` and **fails** if any documented family is
//!   missing or if a family that must have counted traffic reports a
//!   zero `_count`/total;
//! * checks `/debug/slow` retained the cold queries and `?trace=1`
//!   returned a span breakdown;
//! * emits `BENCH_serve.json` with client-observed `/search` latency
//!   quantiles (p50/p95/p99) and the scrape-side counters.
//!
//! ```text
//! metrics_smoke [--queries N] [--workers N] [--out PATH]
//! ```

use banks_bench::{banks_for, corpus};
use banks_server::{BanksServer, QueryService, ServerConfig, ServiceConfig};
use banks_util::http::{http_request, HttpResponse};
use banks_util::json::Json;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The planted anecdote queries every generated corpus answers.
const QUERIES: &[&str] = &[
    "soumen sunita",
    "seltzer sunita",
    "gray transaction",
    "mohan",
    "sunita",
];

/// Families `/metrics` must always expose on a server role.
const REQUIRED_FAMILIES: &[&str] = &[
    "banks_http_requests_total",
    "banks_http_request_seconds",
    "banks_http_queue_depth",
    "banks_query_seconds",
    "banks_queries_total",
    "banks_query_errors_total",
    "banks_cache_hits_total",
    "banks_cache_misses_total",
    "banks_cache_insertions_total",
    "banks_cache_evictions_total",
    "banks_cache_invalidations_total",
    "banks_cache_entries",
    "banks_cache_hit_ratio",
    "banks_epoch",
    "banks_graph_nodes",
    "banks_graph_edges",
    "banks_memory_bytes",
    "banks_search_shards_total",
    "banks_search_sequential_fallbacks_total",
    "banks_search_merge_stall_seconds_total",
    "banks_search_early_terminations_total",
    "banks_uptime_seconds",
    "banks_pager_budget_bytes",
    "banks_pager_resident_bytes",
    "banks_pager_pinned_bytes",
    "banks_pager_page_ins_total",
    "banks_pager_evictions_total",
];

/// Samples that must be non-zero after the workload ran.
const NONZERO_SAMPLES: &[&str] = &[
    "banks_queries_total",
    "banks_cache_hits_total",
    "banks_cache_misses_total",
    r#"banks_query_seconds_count{cache="miss"}"#,
    r#"banks_query_seconds_count{cache="hit"}"#,
    r#"banks_http_requests_total{endpoint="/search"}"#,
    r#"banks_http_request_seconds_count{endpoint="/search"}"#,
];

fn fail(msg: &str) -> ! {
    eprintln!("metrics_smoke: {msg}");
    std::process::exit(1);
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn get(addr: &str, target: &str) -> HttpResponse {
    match http_request(addr, "GET", target, None, Duration::from_secs(30)) {
        Ok(resp) if resp.status == 200 => resp,
        Ok(resp) => fail(&format!("GET {target}: status {}", resp.status)),
        Err(e) => fail(&format!("GET {target}: {e}")),
    }
}

/// Value of the exposition line starting with `sample ` (exact family
/// name or `family{labels}` prefix).
fn sample_value(text: &str, sample: &str) -> Option<f64> {
    text.lines()
        .find(|l| {
            l.strip_prefix(sample)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * q).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let total_queries: usize = flag_value(&args, "--queries")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail("--queries: not a number"))
        })
        .unwrap_or(200);
    let workers: usize = flag_value(&args, "--workers")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail("--workers: not a number"))
        })
        .unwrap_or(4);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());

    // The same tiny planted corpus the other benches use.
    let dataset = corpus("tiny");
    let banks = Arc::new(banks_for(&dataset));
    let service = Arc::new(QueryService::new(banks, ServiceConfig::default()));
    let server = BanksServer::bind(
        service,
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("bind: {e}")));
    let addr = server.local_addr().to_string();
    eprintln!("metrics_smoke: serving on {addr} ({workers} workers)");

    // --- drive traffic ---------------------------------------------------
    // Rotating over the query set makes all but the first round cache
    // hits, so both `cache="miss"` and `cache="hit"` histograms count.
    let mut latencies_us: Vec<u64> = Vec::with_capacity(total_queries);
    for i in 0..total_queries {
        let q = QUERIES[i % QUERIES.len()].replace(' ', "+");
        let t0 = Instant::now();
        let resp = get(&addr, &format!("/search?q={q}"));
        latencies_us.push(t0.elapsed().as_micros() as u64);
        if !resp.text().contains("\"answers\"") {
            fail(&format!("search {q}: no answers array"));
        }
    }
    let traced = get(&addr, "/search?q=soumen+sunita&trace=1").text();
    if !traced.contains("\"trace\"") || !traced.contains("\"spans\"") {
        fail("?trace=1 returned no span breakdown");
    }
    get(&addr, "/node?id=0");
    get(&addr, "/health");
    let stats = get(&addr, "/stats").text();
    if !stats.contains("\"cache\"") {
        fail("/stats: no cache section");
    }
    let slow = get(&addr, "/debug/slow").text();
    if slow.contains("\"count\":0") {
        fail(&format!("/debug/slow retained nothing: {slow}"));
    }

    // --- scrape and validate ---------------------------------------------
    let scrape = get(&addr, "/metrics");
    let content_type = scrape.header("content-type").unwrap_or("").to_string();
    if !content_type.starts_with("text/plain; version=0.0.4") {
        fail(&format!("/metrics content type `{content_type}`"));
    }
    let text = scrape.text();
    for family in REQUIRED_FAMILIES {
        if !text.contains(&format!("# TYPE {family} ")) {
            fail(&format!("family {family} missing from /metrics"));
        }
    }
    for sample in NONZERO_SAMPLES {
        match sample_value(&text, sample) {
            Some(v) if v > 0.0 => {}
            Some(_) => fail(&format!("{sample} is zero after {total_queries} queries")),
            None => fail(&format!("{sample} not found in /metrics")),
        }
    }

    // --- report -----------------------------------------------------------
    latencies_us.sort_unstable();
    let doc = Json::obj([
        ("queries", Json::Uint(total_queries as u64)),
        ("workers", Json::Uint(workers as u64)),
        ("p50_us", Json::Uint(quantile(&latencies_us, 0.50))),
        ("p95_us", Json::Uint(quantile(&latencies_us, 0.95))),
        ("p99_us", Json::Uint(quantile(&latencies_us, 0.99))),
        (
            "cache_hits",
            Json::Num(sample_value(&text, "banks_cache_hits_total").unwrap_or(0.0)),
        ),
        (
            "cache_misses",
            Json::Num(sample_value(&text, "banks_cache_misses_total").unwrap_or(0.0)),
        ),
        (
            "families_checked",
            Json::Uint(REQUIRED_FAMILIES.len() as u64),
        ),
        (
            "nonzero_samples_checked",
            Json::Uint(NONZERO_SAMPLES.len() as u64),
        ),
    ]);
    let mut file =
        std::fs::File::create(&out).unwrap_or_else(|e| fail(&format!("create {out}: {e}")));
    file.write_all(doc.pretty().as_bytes())
        .unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    eprintln!(
        "metrics_smoke: OK — {} queries, p50 {}µs p95 {}µs p99 {}µs, report at {out}",
        total_queries,
        quantile(&latencies_us, 0.50),
        quantile(&latencies_us, 0.95),
        quantile(&latencies_us, 0.99),
    );
    server.shutdown();
}
