//! The memory-budget smoke benchmark behind CI's `paged-smoke` job.
//!
//! Two phases over a shared work directory, so CI can run the second
//! under a hard address-space cap (`ulimit -v`) without constraining
//! the first:
//!
//! * `--phase prepare --corpus DIR --work DIR` — load a `banks datagen`
//!   shard corpus, build the in-RAM system, save it as a bundle
//!   laid out as a data directory (`snapshot-…` name, so `banks serve
//!   --data-dir WORK/data --paged` can recover from it directly), time
//!   a **full** bundle decode, record the reference answer fingerprints
//!   and the fully-decoded graph size (every segment touched through a
//!   paged store with an unbounded budget).
//! * `--phase run --work DIR --budget BYTES [--out PATH]` — reopen the
//!   same bundle *paged* under the budget, replay the query set (and
//!   render every answer, which decodes tuple values through the lazy
//!   DATA section), and fail unless (a) every fingerprint is
//!   bit-identical to the in-RAM reference, (b) the budget really is
//!   below the decoded graph size, and (c) both the resident segment
//!   bytes and the resident tuple bytes stayed within the budget.
//!   Emits `BENCH_paged.json` with cold-start times (including
//!   `data_open_ms`, the O(blocks) directory-only open of the DATA
//!   section alone), page-in/eviction counts for both stores, and
//!   per-query latencies.
//!
//! The fingerprint format is `banks_bench::fingerprint_answers` — the
//! same order-sensitive digest the thread-equivalence CI check uses.

use banks_bench::fingerprint_answers;
use banks_core::{Banks, BanksConfig};
use banks_datagen::stream;
use banks_persist::{load_bundle, open_bundle_paged, save_bundle, snapshot_file};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The smoke query set: the planted §5.1-style anecdotes every stream
/// corpus carries, plus a joining and a single-tuple query.
const QUERIES: &[&str] = &[
    "soumen sunita",
    "mohan",
    "hypertext categorization",
    "sunita",
];

fn fail(msg: &str) -> ! {
    eprintln!("paged_bench: {msg}");
    std::process::exit(1);
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_bytes(s: &str) -> u64 {
    let (digits, shift) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 10),
        Some('m') | Some('M') => (&s[..s.len() - 1], 20),
        Some('g') | Some('G') => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    match digits.parse::<u64>() {
        Ok(n) => n << shift,
        Err(e) => fail(&format!("bad byte size `{s}`: {e}")),
    }
}

/// Offset and length of the `BNKSDATA` section, read straight from the
/// bundle's four-entry directory (32 bytes per entry from offset 16:
/// 8 magic, 8 offset, 8 len, 8 checksum; DATA is the second).
fn data_section(bundle: &Path) -> (u64, u64) {
    use std::io::Read;
    let mut header = [0u8; 16 + 4 * 32];
    let mut file =
        std::fs::File::open(bundle).unwrap_or_else(|e| fail(&format!("open bundle: {e}")));
    file.read_exact(&mut header)
        .unwrap_or_else(|e| fail(&format!("read bundle directory: {e}")));
    let entry = 16 + 32;
    if &header[entry..entry + 8] != b"BNKSDATA" {
        fail("bundle directory does not carry a DATA section where expected");
    }
    let word = |at: usize| u64::from_le_bytes(header[at..at + 8].try_into().unwrap());
    (word(entry + 8), word(entry + 16))
}

/// Force every graph segment resident and report the decoded total —
/// the number the serving budget must stay well below.
fn decoded_graph_bytes(bundle: &Path) -> u64 {
    let (banks, _) = open_bundle_paged(bundle, usize::MAX / 2, &BanksConfig::default())
        .unwrap_or_else(|e| fail(&format!("unbounded paged open: {e}")));
    let graph = banks.tuple_graph().graph();
    for v in graph.nodes() {
        let _ = graph.out_adjacency(v);
        let _ = graph.in_adjacency(v);
    }
    let stats = graph.storage_stats().expect("paged backend");
    stats.resident_bytes as u64
}

fn prepare(corpus: &Path, work: &Path) {
    let manifest =
        stream::read_manifest(corpus).unwrap_or_else(|e| fail(&format!("corpus manifest: {e}")));
    let data_dir = work.join("data");
    std::fs::create_dir_all(&data_dir).unwrap_or_else(|e| fail(&format!("mkdir work: {e}")));

    let start = Instant::now();
    let db = stream::build_database(corpus).unwrap_or_else(|e| fail(&format!("load corpus: {e}")));
    let load_corpus_ms = start.elapsed().as_millis();

    let start = Instant::now();
    let banks = Banks::new(db).unwrap_or_else(|e| fail(&format!("build banks: {e}")));
    let build_ms = start.elapsed().as_millis();

    let bundle = data_dir.join(snapshot_file(0));
    let start = Instant::now();
    save_bundle(&banks, 0, &bundle).unwrap_or_else(|e| fail(&format!("save bundle: {e}")));
    let save_ms = start.elapsed().as_millis();
    let bundle_bytes = std::fs::metadata(&bundle).map(|m| m.len()).unwrap_or(0);

    // Reference cold start: a full decode of everything.
    let start = Instant::now();
    let (full, _) = load_bundle(&bundle, &BanksConfig::default())
        .unwrap_or_else(|e| fail(&format!("full load: {e}")));
    let full_load_ms = start.elapsed().as_millis();

    let decoded = decoded_graph_bytes(&bundle);

    let mut fingerprints = String::new();
    for query in QUERIES {
        let answers = full
            .search(query)
            .unwrap_or_else(|e| fail(&format!("search `{query}`: {e}")));
        fingerprints.push_str(&format!("{query}\t{}\n", fingerprint_answers(&answers)));
    }
    std::fs::write(work.join("fingerprints.tsv"), fingerprints)
        .unwrap_or_else(|e| fail(&format!("write fingerprints: {e}")));
    let prep = format!(
        "tuples={}\nbundle_bytes={bundle_bytes}\nfull_load_ms={full_load_ms}\n\
         decoded_graph_bytes={decoded}\nload_corpus_ms={load_corpus_ms}\n\
         build_ms={build_ms}\nsave_ms={save_ms}\n",
        manifest.config.tuples,
    );
    std::fs::write(work.join("prepare.tsv"), prep)
        .unwrap_or_else(|e| fail(&format!("write prepare record: {e}")));
    println!(
        "prepared {} tuples: corpus load {load_corpus_ms} ms, build {build_ms} ms, \
         bundle {bundle_bytes} B saved in {save_ms} ms, full decode {full_load_ms} ms, \
         decoded graph {decoded} B",
        manifest.config.tuples,
    );
}

fn prep_value(prep: &str, key: &str) -> u64 {
    prep.lines()
        .find_map(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fail(&format!("prepare.tsv missing `{key}`")))
}

fn run(work: &Path, budget: u64, out: &Path) {
    let prep = std::fs::read_to_string(work.join("prepare.tsv")).unwrap_or_else(|e| {
        fail(&format!(
            "read prepare record (run `--phase prepare` first): {e}"
        ))
    });
    let tuples = prep_value(&prep, "tuples");
    let bundle_bytes = prep_value(&prep, "bundle_bytes");
    let full_load_ms = prep_value(&prep, "full_load_ms");
    let decoded = prep_value(&prep, "decoded_graph_bytes");
    if budget >= decoded {
        fail(&format!(
            "budget {budget} is not below the decoded graph size {decoded} — \
             the run would not prove out-of-core serving"
        ));
    }

    let bundle = work.join("data").join(snapshot_file(0));

    // Cold open of the DATA section in isolation: directory + PK lanes
    // only, O(blocks) — not one tuple block is decoded. This is the
    // number the v3 layout exists to shrink.
    let (data_offset, data_len) = data_section(&bundle);
    let start = Instant::now();
    let file = std::sync::Arc::new(
        std::fs::File::open(&bundle).unwrap_or_else(|e| fail(&format!("open bundle: {e}"))),
    );
    let probe = banks_pager::PagedTupleStore::open_file(
        file,
        data_offset,
        data_len,
        banks_pager::SharedBudget::new(budget as usize),
    )
    .unwrap_or_else(|e| fail(&format!("DATA section open: {e}")));
    let data_open_ms = start.elapsed().as_millis();
    drop(probe);

    let start = Instant::now();
    let (banks, _) = open_bundle_paged(&bundle, budget as usize, &BanksConfig::default())
        .unwrap_or_else(|e| fail(&format!("paged open: {e}")));
    let paged_open_ms = start.elapsed().as_millis();

    let reference = std::fs::read_to_string(work.join("fingerprints.tsv"))
        .unwrap_or_else(|e| fail(&format!("read fingerprints: {e}")));
    let mut latencies = Vec::new();
    let mut mismatches = Vec::new();
    for line in reference.lines() {
        let Some((query, expected)) = line.split_once('\t') else {
            fail(&format!("malformed fingerprint line `{line}`"));
        };
        let start = Instant::now();
        let answers = banks
            .search(query)
            .unwrap_or_else(|e| fail(&format!("search `{query}`: {e}")));
        let micros = start.elapsed().as_micros();
        let actual = fingerprint_answers(&answers);
        if actual != expected {
            mismatches.push(query.to_string());
        }
        latencies.push((query.to_string(), micros, answers.len()));
        // Render outside the timed window: rendering is what decodes
        // tuple values, so it drives the tuple page-in/residency
        // figures below without polluting the search latencies.
        for answer in &answers {
            let _ = banks.render_answer(answer);
        }
    }

    let stats = banks
        .tuple_graph()
        .graph()
        .storage_stats()
        .expect("paged backend reports storage stats");
    if stats.resident_bytes > stats.budget_bytes {
        fail(&format!(
            "resident {} exceeds budget {}",
            stats.resident_bytes, stats.budget_bytes
        ));
    }
    let tstats = banks
        .db()
        .tuple_store_stats()
        .unwrap_or_else(|| fail("paged bundle did not open with a lazy tuple store"));
    if tstats.page_ins == 0 {
        fail("rendering answers paged no tuple blocks in — the DATA section is not lazy");
    }
    if tstats.resident_bytes > budget as usize {
        fail(&format!(
            "tuple resident {} exceeds budget {budget}",
            tstats.resident_bytes
        ));
    }
    if !mismatches.is_empty() {
        fail(&format!(
            "answer fingerprints diverged from the in-RAM reference: {mismatches:?}"
        ));
    }

    let speedup = full_load_ms as f64 / (paged_open_ms.max(1)) as f64;
    // Regression floor, far below the ~10x a quiet machine measures, so
    // CI noise in the full-decode baseline cannot flake the job.
    if speedup < 2.0 {
        fail(&format!(
            "paged cold start ({paged_open_ms} ms) is not meaningfully faster than a \
             full decode ({full_load_ms} ms)"
        ));
    }
    let queries_json: Vec<String> = latencies
        .iter()
        .map(|(q, us, n)| format!(r#"    {{"query": "{q}", "latency_us": {us}, "answers": {n}}}"#))
        .collect();
    let json = format!(
        "{{\n  \"corpus_tuples\": {tuples},\n  \"bundle_bytes\": {bundle_bytes},\n  \
         \"decoded_graph_bytes\": {decoded},\n  \"budget_bytes\": {budget},\n  \
         \"cold_start_full_ms\": {full_load_ms},\n  \"cold_start_paged_ms\": {paged_open_ms},\n  \
         \"cold_start_speedup\": {speedup:.2},\n  \"data_open_ms\": {data_open_ms},\n  \
         \"resident_bytes\": {},\n  \
         \"pinned_bytes\": {},\n  \"segments_total\": {},\n  \"segments_resident\": {},\n  \
         \"page_ins\": {},\n  \"evictions\": {},\n  \"decode_micros\": {},\n  \
         \"tuple_resident_bytes\": {},\n  \"tuple_page_ins\": {},\n  \
         \"tuple_evictions\": {},\n  \
         \"fingerprints_match\": true,\n  \"queries\": [\n{}\n  ]\n}}\n",
        stats.resident_bytes,
        stats.pinned_bytes,
        stats.segment_count,
        stats.resident_segments,
        stats.page_ins,
        stats.evictions,
        stats.decode_nanos / 1_000,
        tstats.resident_bytes,
        tstats.page_ins,
        tstats.evictions,
        queries_json.join(",\n"),
    );
    std::fs::write(out, &json).unwrap_or_else(|e| fail(&format!("write {}: {e}", out.display())));
    println!(
        "paged cold start {paged_open_ms} ms (DATA alone {data_open_ms} ms) vs full \
         {full_load_ms} ms ({speedup:.1}x), {} graph / {} tuple page-ins, \
         {} / {} evictions, resident {} + {} / budget {budget} — report at {}",
        stats.page_ins,
        tstats.page_ins,
        stats.evictions,
        tstats.evictions,
        stats.resident_bytes,
        tstats.resident_bytes,
        out.display(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let phase =
        flag_value(&args, "--phase").unwrap_or_else(|| fail("--phase prepare|run required"));
    let work =
        PathBuf::from(flag_value(&args, "--work").unwrap_or_else(|| fail("--work DIR required")));
    match phase.as_str() {
        "prepare" => {
            let corpus = PathBuf::from(
                flag_value(&args, "--corpus")
                    .unwrap_or_else(|| fail("--corpus DIR required for prepare")),
            );
            prepare(&corpus, &work);
        }
        "run" => {
            let budget = parse_bytes(
                &flag_value(&args, "--budget").unwrap_or_else(|| fail("--budget BYTES required")),
            );
            let out = PathBuf::from(
                flag_value(&args, "--out").unwrap_or_else(|| "BENCH_paged.json".to_string()),
            );
            run(&work, budget, &out);
        }
        other => fail(&format!("unknown phase `{other}`")),
    }
}
