//! Shared fixtures for the BANKS benchmarks.
//!
//! Every bench target regenerates one §5 measurement (see DESIGN.md's
//! experiment index):
//!
//! * `graph_build` — EXP-S52-LOAD: database → in-memory graph time.
//! * `query_latency` — EXP-S52-QUERY: the seven-query workload.
//! * `dijkstra` — the single-source shortest-path iterator underneath §3.
//! * `params_sweep` — EXP-F5: one full Figure 5 cell evaluation.
//! * `ablation` — ABL-DUP / ABL-FWD / ABL-HEAP toggles.

use banks_core::Banks;
use banks_datagen::dblp::{generate, DblpConfig, DblpDataset};
use banks_eval::workload::dblp_eval_config;
use banks_util::json::Json;
use std::io::Write;

/// Generate the benchmark corpus at a named scale.
pub fn corpus(scale: &str) -> DblpDataset {
    let config = match scale {
        "tiny" => DblpConfig::tiny(1),
        "small" => DblpConfig::small(1),
        "paper" => DblpConfig::paper_scale(1),
        other => panic!("unknown scale {other}"),
    };
    generate(config).expect("generation succeeds")
}

/// Build a query-ready BANKS instance with the evaluation configuration.
pub fn banks_for(dataset: &DblpDataset) -> Banks {
    Banks::with_config(dataset.db.clone(), dblp_eval_config()).expect("banks builds")
}

/// One query's measurements for the machine-readable search report.
#[derive(Debug, Clone)]
pub struct SearchBenchEntry {
    /// Workload query id (e.g. `Q7-three-keywords`).
    pub id: String,
    /// Corpus scale the measurement ran on.
    pub corpus: String,
    /// Result limit (`max_results`) of the measurement.
    pub limit: usize,
    /// Median uncached latency on a reused worker arena, nanoseconds.
    pub cold_ns: f64,
    /// Median cache-hit latency through the query service, nanoseconds.
    pub warm_ns: f64,
    /// Iterator pops of one representative execution.
    pub pops: usize,
    /// Whether the kernel stopped via the top-k relevance bound.
    pub early_terminated: bool,
}

/// Write `BENCH_search.json`: per-query cold/warm latency plus kernel
/// counters, and the aggregate early-termination rate — the
/// machine-readable artifact the `bench-smoke` CI job checks for bench
/// bit-rot and perf tracking diffs across commits.
pub fn write_search_report(path: &str, entries: &[SearchBenchEntry]) -> std::io::Result<()> {
    let queries: Vec<Json> = entries
        .iter()
        .map(|e| {
            Json::obj([
                ("id", Json::Str(e.id.clone())),
                ("corpus", Json::Str(e.corpus.clone())),
                ("limit", Json::Uint(e.limit as u64)),
                ("cold_ns", Json::Num(e.cold_ns.round())),
                ("warm_ns", Json::Num(e.warm_ns.round())),
                ("pops", Json::Uint(e.pops as u64)),
                ("early_terminated", Json::Bool(e.early_terminated)),
            ])
        })
        .collect();
    let terminated = entries.iter().filter(|e| e.early_terminated).count();
    let rate = if entries.is_empty() {
        0.0
    } else {
        terminated as f64 / entries.len() as f64
    };
    let report = Json::obj([
        ("bench", Json::Str("search".to_string())),
        ("queries", Json::Arr(queries)),
        ("early_termination_rate", Json::Num(rate)),
    ]);
    let mut file = std::fs::File::create(path)?;
    file.write_all(report.pretty().as_bytes())?;
    Ok(())
}
