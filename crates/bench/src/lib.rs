//! Shared fixtures for the BANKS benchmarks.
//!
//! Every bench target regenerates one §5 measurement (see DESIGN.md's
//! experiment index):
//!
//! * `graph_build` — EXP-S52-LOAD: database → in-memory graph time.
//! * `query_latency` — EXP-S52-QUERY: the seven-query workload.
//! * `dijkstra` — the single-source shortest-path iterator underneath §3.
//! * `params_sweep` — EXP-F5: one full Figure 5 cell evaluation.
//! * `ablation` — ABL-DUP / ABL-FWD / ABL-HEAP toggles.

use banks_core::Banks;
use banks_datagen::dblp::{generate, DblpConfig, DblpDataset};
use banks_eval::workload::dblp_eval_config;
use banks_util::json::Json;
use std::io::Write;

/// Generate the benchmark corpus at a named scale.
pub fn corpus(scale: &str) -> DblpDataset {
    let config = match scale {
        "tiny" => DblpConfig::tiny(1),
        "small" => DblpConfig::small(1),
        "paper" => DblpConfig::paper_scale(1),
        other => panic!("unknown scale {other}"),
    };
    generate(config).expect("generation succeeds")
}

/// Build a query-ready BANKS instance with the evaluation configuration.
pub fn banks_for(dataset: &DblpDataset) -> Banks {
    Banks::with_config(dataset.db.clone(), dblp_eval_config()).expect("banks builds")
}

/// Search threads for the primary cold measurement, from the
/// `BANKS_SEARCH_THREADS` environment variable (default 1 =
/// sequential). CI runs `query_latency` at 1 and 2 and diffs the
/// answer fingerprints.
pub fn search_threads_from_env() -> usize {
    std::env::var("BANKS_SEARCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// Order-sensitive FNV-1a fingerprint of a ranked answer list: roots,
/// keyword nodes, edge triples (weight bits included), and relevance
/// bits, in rank order. Bit-identical executors produce equal strings.
pub fn fingerprint_answers(answers: &[banks_core::Answer]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(answers.len() as u64);
    for a in answers {
        mix(a.tree.root.0 as u64);
        for &n in &a.tree.keyword_nodes {
            mix(n.0 as u64);
        }
        for &(f, t, w) in &a.tree.edges {
            mix(f.0 as u64);
            mix(t.0 as u64);
            mix(w.to_bits());
        }
        mix(a.relevance.to_bits());
    }
    let _ = mix;
    format!("{h:016x}")
}

/// One query's measurements for the machine-readable search report.
#[derive(Debug, Clone)]
pub struct SearchBenchEntry {
    /// Workload query id (e.g. `Q7-three-keywords`).
    pub id: String,
    /// Corpus scale the measurement ran on.
    pub corpus: String,
    /// Result limit (`max_results`) of the measurement.
    pub limit: usize,
    /// Search threads of the primary measurement (`BANKS_SEARCH_THREADS`).
    pub search_threads: usize,
    /// Median uncached latency on a reused worker arena at
    /// `search_threads`, nanoseconds.
    pub cold_ns: f64,
    /// Median cache-hit latency through the query service, nanoseconds.
    pub warm_ns: f64,
    /// Cold medians of the thread-scaling sweep (1/2/4 search threads),
    /// nanoseconds.
    pub cold_ns_t1: f64,
    /// See [`SearchBenchEntry::cold_ns_t1`].
    pub cold_ns_t2: f64,
    /// See [`SearchBenchEntry::cold_ns_t1`].
    pub cold_ns_t4: f64,
    /// `cold_ns_t1 / cold_ns_t4` — the cold-query speedup at 4 search
    /// threads (≤ ~1 on single-core machines).
    pub speedup_t4: f64,
    /// Iterator pops of one representative execution.
    pub pops: usize,
    /// Whether the kernel stopped via the top-k relevance bound.
    pub early_terminated: bool,
    /// Order-sensitive FNV fingerprint of the ranked answers (trees +
    /// relevance bits) at `search_threads` — CI runs the bench at
    /// different thread counts and fails if fingerprints differ.
    pub answers_fingerprint: String,
}

/// Write `BENCH_search.json`: per-query cold/warm latency plus kernel
/// counters, and the aggregate early-termination rate — the
/// machine-readable artifact the `bench-smoke` CI job checks for bench
/// bit-rot and perf tracking diffs across commits.
pub fn write_search_report(path: &str, entries: &[SearchBenchEntry]) -> std::io::Result<()> {
    let queries: Vec<Json> = entries
        .iter()
        .map(|e| {
            Json::obj([
                ("id", Json::Str(e.id.clone())),
                ("corpus", Json::Str(e.corpus.clone())),
                ("limit", Json::Uint(e.limit as u64)),
                ("search_threads", Json::Uint(e.search_threads as u64)),
                ("cold_ns", Json::Num(e.cold_ns.round())),
                ("warm_ns", Json::Num(e.warm_ns.round())),
                ("cold_ns_t1", Json::Num(e.cold_ns_t1.round())),
                ("cold_ns_t2", Json::Num(e.cold_ns_t2.round())),
                ("cold_ns_t4", Json::Num(e.cold_ns_t4.round())),
                (
                    "speedup_t4",
                    Json::Num((e.speedup_t4 * 100.0).round() / 100.0),
                ),
                ("pops", Json::Uint(e.pops as u64)),
                ("early_terminated", Json::Bool(e.early_terminated)),
                (
                    "answers_fingerprint",
                    Json::Str(e.answers_fingerprint.clone()),
                ),
            ])
        })
        .collect();
    let terminated = entries.iter().filter(|e| e.early_terminated).count();
    let rate = if entries.is_empty() {
        0.0
    } else {
        terminated as f64 / entries.len() as f64
    };
    let report = Json::obj([
        ("bench", Json::Str("search".to_string())),
        ("queries", Json::Arr(queries)),
        ("early_termination_rate", Json::Num(rate)),
    ]);
    let mut file = std::fs::File::create(path)?;
    file.write_all(report.pretty().as_bytes())?;
    Ok(())
}
