//! Shared fixtures for the BANKS benchmarks.
//!
//! Every bench target regenerates one §5 measurement (see DESIGN.md's
//! experiment index):
//!
//! * `graph_build` — EXP-S52-LOAD: database → in-memory graph time.
//! * `query_latency` — EXP-S52-QUERY: the seven-query workload.
//! * `dijkstra` — the single-source shortest-path iterator underneath §3.
//! * `params_sweep` — EXP-F5: one full Figure 5 cell evaluation.
//! * `ablation` — ABL-DUP / ABL-FWD / ABL-HEAP toggles.

use banks_core::Banks;
use banks_datagen::dblp::{generate, DblpConfig, DblpDataset};
use banks_eval::workload::dblp_eval_config;

/// Generate the benchmark corpus at a named scale.
pub fn corpus(scale: &str) -> DblpDataset {
    let config = match scale {
        "tiny" => DblpConfig::tiny(1),
        "small" => DblpConfig::small(1),
        "paper" => DblpConfig::paper_scale(1),
        other => panic!("unknown scale {other}"),
    };
    generate(config).expect("generation succeeds")
}

/// Build a query-ready BANKS instance with the evaluation configuration.
pub fn banks_for(dataset: &DblpDataset) -> Banks {
    Banks::with_config(dataset.db.clone(), dblp_eval_config()).expect("banks builds")
}
