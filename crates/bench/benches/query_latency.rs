//! EXP-S52-QUERY: per-query latency over the §5.3 workload (the paper:
//! "queries take about a second to a few seconds" on the untuned
//! prototype at 100K nodes).

use banks_bench::{banks_for, corpus};
use banks_eval::workload::dblp_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_query_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_latency_tiny");
    let dataset = corpus("tiny");
    let banks = banks_for(&dataset);
    for query in dblp_workload(&dataset.planted) {
        group.bench_with_input(BenchmarkId::from_parameter(query.id), &query, |b, query| {
            b.iter(|| black_box(banks.search(query.text).unwrap().len()));
        });
    }
    group.finish();

    // Selective queries at the larger scale; the metadata-heavy Q6 is
    // covered by the ablation bench (forward search) instead, because a
    // 4K-iterator backward search per sample would dominate the run.
    let mut group = c.benchmark_group("query_latency_small");
    group.sample_size(10);
    let dataset = corpus("small");
    let banks = banks_for(&dataset);
    for query in dblp_workload(&dataset.planted) {
        if query.id == "Q6-metadata" {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(query.id), &query, |b, query| {
            b.iter(|| black_box(banks.search(query.text).unwrap().len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_latency);
criterion_main!(benches);
