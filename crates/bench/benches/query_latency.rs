//! EXP-S52-QUERY: per-query latency over the §5.3 workload (the paper:
//! "queries take about a second to a few seconds" on the untuned
//! prototype at 100K nodes).
//!
//! Cold latency is measured the way a server worker runs: uncached, on a
//! persistent per-worker [`banks_core::SearchArena`], so the dense
//! Dijkstra states and cross-product scratch are recycled across
//! iterations instead of reallocated. Warm latency goes through the
//! `banks-server` result cache. Besides the stdout report, the bench
//! writes `BENCH_search.json` (cold/warm medians, pops, early-termination
//! rate) for machine consumption by CI and perf diffs.

use banks_bench::{
    banks_for, corpus, fingerprint_answers, search_threads_from_env, write_search_report,
    SearchBenchEntry,
};
use banks_core::SearchArena;
use banks_eval::workload::dblp_workload;
use banks_server::{QueryOptions, QueryService, ServiceConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Median uncached latency (ns) over `samples` runs on the given arena.
fn cold_median_ns(
    banks: &banks_core::Banks,
    config: &banks_core::BanksConfig,
    arena: &mut SearchArena,
    query: &str,
    samples: usize,
) -> f64 {
    let parsed = banks.parse(query).unwrap();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            let outcome = banks
                .search_parsed_in(&parsed, banks_core::SearchStrategy::Backward, config, arena)
                .unwrap();
            black_box(outcome.answers.len());
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Median cache-hit latency (ns) through the query service.
fn warm_median_ns(service: &QueryService, query: &str, limit: usize, samples: usize) -> f64 {
    let options = QueryOptions {
        limit: Some(limit),
        ..QueryOptions::default()
    };
    // Prime the cache, then time hits only.
    service.search(query, options).unwrap();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            let resp = service.search(query, options).unwrap();
            assert!(resp.cached, "warm measurement must hit the cache");
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench_query_latency(c: &mut Criterion) {
    let mut report: Vec<SearchBenchEntry> = Vec::new();

    let mut group = c.benchmark_group("query_latency_tiny");
    let dataset = corpus("tiny");
    let banks = banks_for(&dataset);
    let mut arena = SearchArena::new();
    for query in dblp_workload(&dataset.planted) {
        group.bench_with_input(BenchmarkId::from_parameter(query.id), &query, |b, query| {
            b.iter(|| {
                black_box(banks.search_outcome_in(query.text, &mut arena).unwrap())
                    .answers
                    .len()
            });
        });
    }
    group.finish();

    // Selective queries at the larger scale; the metadata-heavy Q6 is
    // covered by the ablation bench (forward search) instead, because a
    // 4K-iterator backward search per sample would dominate the run.
    let mut group = c.benchmark_group("query_latency_small");
    group.sample_size(10);
    let dataset = corpus("small");
    let banks = banks_for(&dataset);
    for query in dblp_workload(&dataset.planted) {
        if query.id == "Q6-metadata" {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(query.id), &query, |b, query| {
            b.iter(|| {
                black_box(banks.search_outcome_in(query.text, &mut arena).unwrap())
                    .answers
                    .len()
            });
        });
    }
    group.finish();

    // Machine-readable report over the small-corpus workload, at the
    // full result limit and at top-1 (where the early-termination bound
    // does most of its work). The primary cold column runs at
    // BANKS_SEARCH_THREADS (default 1); every entry also carries a
    // 1/2/4-thread cold sweep so the intra-query-parallelism speedup is
    // machine-readable, plus an answer fingerprint the CI thread-count
    // equivalence check diffs.
    let search_threads = search_threads_from_env();
    let service = QueryService::new(Arc::new(banks_for(&dataset)), ServiceConfig::default());
    let service_banks = service.banks();
    for limit in [service_banks.config().search.max_results, 1] {
        let mut config = service_banks.config().clone();
        config.search.max_results = limit;
        config.search.search_threads = search_threads;
        for query in dblp_workload(&dataset.planted) {
            if query.id == "Q6-metadata" {
                continue;
            }
            let parsed = service_banks.parse(query.text).unwrap();
            let outcome = service_banks
                .search_parsed_in(
                    &parsed,
                    banks_core::SearchStrategy::Backward,
                    &config,
                    &mut arena,
                )
                .unwrap();
            let mut sweep = [0.0f64; 3];
            for (i, threads) in [1usize, 2, 4].into_iter().enumerate() {
                let mut sweep_config = config.clone();
                sweep_config.search.search_threads = threads;
                sweep[i] = cold_median_ns(&service_banks, &sweep_config, &mut arena, query.text, 7);
            }
            // The primary column reuses its sweep twin when the env
            // thread count is one of the sweep points (it always is in
            // CI) instead of re-measuring.
            let cold_ns = match [1usize, 2, 4].iter().position(|&t| t == search_threads) {
                Some(i) => sweep[i],
                None => cold_median_ns(&service_banks, &config, &mut arena, query.text, 7),
            };
            report.push(SearchBenchEntry {
                id: query.id.to_string(),
                corpus: "small".to_string(),
                limit,
                search_threads,
                cold_ns,
                warm_ns: warm_median_ns(&service, query.text, limit, 7),
                cold_ns_t1: sweep[0],
                cold_ns_t2: sweep[1],
                cold_ns_t4: sweep[2],
                speedup_t4: sweep[0] / sweep[2].max(1.0),
                pops: outcome.stats.pops,
                early_terminated: outcome.stats.early_terminations > 0,
                answers_fingerprint: fingerprint_answers(&outcome.answers),
            });
        }
    }
    write_search_report("BENCH_search.json", &report).expect("write BENCH_search.json");
    let rate = report.iter().filter(|e| e.early_terminated).count() as f64 / report.len() as f64;
    println!(
        "wrote BENCH_search.json ({} queries at {} search thread(s), early-termination rate {:.0}%)",
        report.len(),
        search_threads,
        rate * 100.0
    );
}

criterion_group!(benches, bench_query_latency);
criterion_main!(benches);
