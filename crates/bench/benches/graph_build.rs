//! EXP-S52-LOAD: time to materialize the BANKS data graph (the paper's
//! "graph currently takes about 2 minutes to load" for 100K nodes; a
//! tuned implementation was expected to be far faster).

use banks_bench::corpus;
use banks_core::{GraphConfig, TupleGraph};
use banks_storage::{MetadataIndex, TextIndex, Tokenizer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    group.sample_size(10);
    for scale in ["tiny", "small"] {
        let dataset = corpus(scale);
        group.bench_with_input(
            BenchmarkId::new("tuple_graph", scale),
            &dataset,
            |b, dataset| {
                b.iter(|| {
                    let tg = TupleGraph::build(&dataset.db, &GraphConfig::default()).unwrap();
                    black_box(tg.node_count())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("text_index", scale),
            &dataset,
            |b, dataset| {
                let tokenizer = Tokenizer::new();
                b.iter(|| {
                    let idx = TextIndex::build(&dataset.db, &tokenizer);
                    black_box(idx.distinct_tokens())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("metadata_index", scale),
            &dataset,
            |b, dataset| {
                let tokenizer = Tokenizer::new();
                b.iter(|| {
                    let idx = MetadataIndex::build(&dataset.db, &tokenizer);
                    black_box(idx.distinct_tokens())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_graph_build);
criterion_main!(benches);
