//! Durability benchmarks: restore-vs-rebuild and the WAL's ingest cost.
//!
//! **Phase 1 — restore vs rebuild.** The full-system bundle's reason to
//! exist is restart latency: loading catalog + tuples + postings + CSR
//! graph from one sequential file must beat re-deriving everything.
//! Compared per iteration:
//!
//! * *restore* — `banks_persist::load_bundle`: one pass over the bundle,
//!   `Banks::from_parts` re-deriving only the cheap metadata index;
//! * *rebuild* — the pre-persist restart story: regenerate the corpus
//!   (`banks-datagen`), then `Banks::new` (graph derivation + text-index
//!   tokenization from scratch).
//!
//! The acceptance bar is restore ≥ 5× faster on the small corpus; the
//! bench prints the measured speedup and warns loudly when it regresses.
//!
//! **Phase 2 — WAL-on vs WAL-off publish latency.** The price of
//! durability on the write path: `SnapshotPublisher::publish` timed
//! bare, with a WAL hook (fsync off), and with a WAL hook (fsync on).
//!
//! Run with `cargo bench -p banks-bench --bench persist`. Knobs:
//! `BANKS_BENCH_SCALE` (`tiny`|`small`|`paper`, default `small`),
//! `BANKS_BENCH_ITERS` (timing repetitions, default 5).

use banks_bench::corpus;
use banks_core::{Banks, BanksConfig};
use banks_ingest::{DeltaBatch, SnapshotPublisher, TupleOp};
use banks_persist::{load_bundle, save_bundle, PersistOptions, PersistentStore};
use banks_storage::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn growth_batch(banks: &Banks, authors: usize, tag: &str) -> DeltaBatch {
    let paper_ids: Vec<String> = banks
        .db()
        .relation("Paper")
        .expect("dblp corpus has Paper")
        .scan()
        .map(|(_, t)| t.values()[0].as_text().expect("text pk").to_string())
        .collect();
    let mut ops = Vec::with_capacity(authors * 2);
    for i in 0..authors {
        let id = format!("wal-{tag}-{i}");
        ops.push(TupleOp::Insert {
            relation: "Author".into(),
            values: vec![
                Value::text(&id),
                Value::text(format!("Durable Author {tag} {i}")),
            ],
        });
        ops.push(TupleOp::Insert {
            relation: "Writes".into(),
            values: vec![
                Value::text(&id),
                Value::text(&paper_ids[i % paper_ids.len()]),
            ],
        });
    }
    DeltaBatch { ops }
}

fn restore_vs_rebuild(scale: &str, banks: &Banks, iters: usize) -> (Duration, Duration) {
    let dir = std::env::temp_dir().join(format!("banks_bench_persist_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.banks");

    let t0 = Instant::now();
    save_bundle(banks, 0, &path).expect("save bundle");
    let save_elapsed = t0.elapsed();
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "bundle: {:.2} MiB written in {:.1} ms",
        bytes as f64 / (1024.0 * 1024.0),
        save_elapsed.as_secs_f64() * 1e3,
    );

    let config = BanksConfig::default();
    let mut restore = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let (restored, meta) = load_bundle(&path, &config).expect("load bundle");
        restore.push(t0.elapsed());
        assert_eq!(meta.epoch, 0);
        assert_eq!(restored.db().total_tuples(), banks.db().total_tuples());
    }

    let mut rebuild = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let dataset = corpus(scale);
        let rebuilt = Banks::new(dataset.db).expect("banks builds");
        rebuild.push(t0.elapsed());
        assert_eq!(rebuilt.db().total_tuples(), banks.db().total_tuples());
    }

    std::fs::remove_dir_all(&dir).ok();
    (median(restore), median(rebuild))
}

fn publish_latency(banks: &Arc<Banks>, iters: usize) {
    // Each mode publishes the same shaped batch from the same base
    // snapshot; the WAL cost is the only difference.
    let authors = 8;
    let time_mode = |label: &str, fsync: Option<bool>| {
        let dir =
            std::env::temp_dir().join(format!("banks_bench_wal_{label}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = fsync.map(|fsync| {
            let options = PersistOptions {
                fsync,
                ..PersistOptions::default()
            };
            let (store, _) =
                PersistentStore::open(&dir, &BanksConfig::default(), options).expect("open store");
            store.save_snapshot(banks, 0).expect("initial snapshot");
            store
        });
        let mut samples = Vec::with_capacity(iters * 4);
        for round in 0..iters.max(2) * 2 {
            let mut publisher = SnapshotPublisher::new(Arc::clone(banks));
            if let Some(store) = &store {
                publisher.set_durability_hook(store.wal_hook());
            }
            let batch = growth_batch(banks, authors, &format!("{label}{round}"));
            let t0 = Instant::now();
            publisher.publish(&batch, None).expect("publish");
            samples.push(t0.elapsed());
        }
        let med = median(samples);
        println!(
            "publish ({label:<22}) {:>10.3} ms per {}-op batch",
            med.as_secs_f64() * 1e3,
            authors * 2,
        );
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
        med
    };

    let bare = time_mode("no WAL", None);
    let nosync = time_mode("WAL, fsync off", Some(false));
    let fsync = time_mode("WAL, fsync on", Some(true));
    println!(
        "WAL overhead: {:+.3} ms buffered, {:+.3} ms fsync'd (the durability price per ack)",
        (nosync.as_secs_f64() - bare.as_secs_f64()) * 1e3,
        (fsync.as_secs_f64() - bare.as_secs_f64()) * 1e3,
    );
}

fn main() {
    let scale = std::env::var("BANKS_BENCH_SCALE").unwrap_or_else(|_| "small".to_string());
    let iters = env_usize("BANKS_BENCH_ITERS", 5).max(1);

    let dataset = corpus(&scale);
    let banks = Arc::new(Banks::new(dataset.db.clone()).expect("banks builds"));
    println!(
        "corpus {scale}: {} tuples, {} nodes, {} edges, {} postings",
        banks.db().total_tuples(),
        banks.tuple_graph().node_count(),
        banks.tuple_graph().graph().edge_count(),
        banks.text_index().posting_count(),
    );

    let (restore, rebuild) = restore_vs_rebuild(&scale, &banks, iters);
    let speedup = rebuild.as_secs_f64() / restore.as_secs_f64().max(1e-12);
    println!(
        "restore {:>10.3} ms | rebuild-from-corpus {:>10.3} ms | speedup {:>6.1}×",
        restore.as_secs_f64() * 1e3,
        rebuild.as_secs_f64() * 1e3,
        speedup,
    );
    if speedup < 5.0 {
        println!("WARNING: bundle restore less than 5× faster than rebuild — regression?");
    }

    publish_latency(&banks, iters);
}
