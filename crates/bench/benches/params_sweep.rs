//! EXP-F5: cost of evaluating one Figure 5 cell (the whole seven-query
//! workload at one parameter setting) and of the full main-axis sweep.

use banks_bench::corpus;
use banks_eval::fig5::run_fig5;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_params_sweep(c: &mut Criterion) {
    let dataset = corpus("tiny");
    let mut group = c.benchmark_group("params_sweep");
    group.sample_size(10);
    group.bench_function("fig5_main_axes", |b| {
        b.iter(|| {
            let report = run_fig5(&dataset, false);
            black_box(report.cells.len())
        });
    });
    group.bench_function("fig5_full", |b| {
        b.iter(|| {
            let report = run_fig5(&dataset, true);
            black_box(report.cells.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_params_sweep);
criterion_main!(benches);
