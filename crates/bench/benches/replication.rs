//! Replication and routing benchmarks: what the cluster story costs.
//!
//! **Phase 1 — follower bootstrap.** A cold `banks-replica` start
//! against a live leader: snapshot download over loopback HTTP,
//! bundle decode, local persist, serving. This is the "add capacity"
//! latency — how long until a new follower answers queries.
//!
//! **Phase 2 — replication lag.** Publish batches at the leader and
//! time how long each takes to become visible at a tailing follower
//! (ack at the leader → follower epoch advance). The long-poll WAL
//! feed should keep the median in single-digit milliseconds.
//!
//! **Phase 3 — router overhead.** The same `/search` measured directly
//! against a backend and through `banks-router` (one extra loopback
//! hop, affinity hashing, registry bookkeeping). The delta is the
//! front door's per-read price.
//!
//! Run with `cargo bench -p banks-bench --bench replication`. Knobs:
//! `BANKS_BENCH_SCALE` (`tiny`|`small`|`paper`, default `small`),
//! `BANKS_BENCH_OPS` (batches in phase 2 / reads in phase 3,
//! default 40).

use banks_bench::corpus;
use banks_core::{Banks, BanksConfig};
use banks_ingest::{DeltaBatch, SnapshotPublisher, TupleOp};
use banks_persist::{PersistOptions, PersistentStore};
use banks_replica::{Replica, ReplicaConfig};
use banks_router::{Router, RouterConfig};
use banks_server::{BanksServer, IngestEndpoint, QueryService, ServerConfig, ServiceConfig};
use banks_storage::Value;
use banks_util::http::http_request;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("banks_bench_repl_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn leader(dir: &Path, banks: Arc<Banks>) -> (Arc<QueryService>, BanksServer, Arc<IngestEndpoint>) {
    let (store, _) = PersistentStore::open(dir, &BanksConfig::default(), PersistOptions::default())
        .expect("open leader store");
    store.save_snapshot(&banks, 0).expect("initial bundle");
    let service = Arc::new(QueryService::with_epoch(
        Arc::clone(&banks),
        0,
        ServiceConfig::default(),
    ));
    let mut publisher = SnapshotPublisher::with_epoch(banks, 0);
    publisher.set_durability_hook(store.wal_hook());
    let ingest = IngestEndpoint::with_publisher(Arc::clone(&service), publisher, Some(store));
    let server = BanksServer::bind_full(
        Arc::clone(&service),
        Some(Arc::clone(&ingest)),
        ingest.store().cloned(),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind leader");
    (service, server, ingest)
}

fn follower(dir: &Path, leader_addr: SocketAddr) -> (Replica, BanksServer) {
    let replica = Replica::start(
        ReplicaConfig {
            leader: leader_addr.to_string(),
            data_dir: dir.to_path_buf(),
            poll_wait_ms: 2_000,
            ..ReplicaConfig::default()
        },
        ServiceConfig::default(),
    )
    .expect("follower start");
    let server = BanksServer::bind_full(
        replica.service(),
        None,
        Some(replica.store()),
        ServerConfig {
            workers: 2,
            leader_hint: Some(leader_addr.to_string()),
            ..ServerConfig::default()
        },
    )
    .expect("bind follower");
    (replica, server)
}

fn one_author_batch(tag: &str) -> DeltaBatch {
    DeltaBatch {
        ops: vec![TupleOp::Insert {
            relation: "Author".into(),
            values: vec![
                Value::text(format!("repl-{tag}")),
                Value::text(format!("Replicated Author {tag}")),
            ],
        }],
    }
}

fn timed_get(addr: SocketAddr, target: &str) -> Duration {
    let t0 = Instant::now();
    let resp = http_request(
        &addr.to_string(),
        "GET",
        target,
        None,
        Duration::from_secs(30),
    )
    .expect("GET");
    assert_eq!(resp.status, 200, "{}", resp.text());
    t0.elapsed()
}

fn main() {
    let scale = std::env::var("BANKS_BENCH_SCALE").unwrap_or_else(|_| "small".to_string());
    let ops = env_usize("BANKS_BENCH_OPS", 40).max(4);

    let dataset = corpus(&scale);
    let banks = Arc::new(Banks::new(dataset.db.clone()).expect("banks builds"));
    println!(
        "corpus {scale}: {} tuples, {} nodes, {} edges",
        banks.db().total_tuples(),
        banks.tuple_graph().node_count(),
        banks.tuple_graph().graph().edge_count(),
    );

    let leader_dir = tmp_dir("leader");
    let (_leader_service, leader_server, ingest) = leader(&leader_dir, Arc::clone(&banks));
    let leader_addr = leader_server.local_addr();

    // Phase 1: cold bootstrap (download + decode + persist + serve).
    let boot_dir = tmp_dir("boot");
    let t0 = Instant::now();
    let (replica, follower_server) = follower(&boot_dir, leader_addr);
    let bootstrap = t0.elapsed();
    assert_eq!(replica.stats().snapshots_downloaded, 1);
    println!(
        "bootstrap: {:>10.3} ms (snapshot download → decode → persist → serving)",
        bootstrap.as_secs_f64() * 1e3,
    );

    // Phase 2: leader-ack → follower-visible lag per batch.
    let mut lags = Vec::with_capacity(ops);
    for i in 0..ops {
        let target = replica.service().epoch() + 1;
        let t0 = Instant::now();
        ingest
            .ingest(&one_author_batch(&i.to_string()), None)
            .expect("leader ingest");
        while replica.service().epoch() < target {
            std::thread::yield_now();
        }
        lags.push(t0.elapsed());
    }
    println!(
        "replication lag: {:>8.3} ms median over {ops} batches (leader ack → follower visible)",
        median(lags).as_secs_f64() * 1e3,
    );

    // Phase 3: direct read vs routed read.
    let router = Router::bind(RouterConfig {
        addr: "127.0.0.1:0".into(),
        leader: leader_addr.to_string(),
        followers: vec![follower_server.local_addr().to_string()],
        workers: 2,
        probe_interval: Duration::from_millis(200),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let front = router.local_addr();
    let target = "/search?q=replicated+author";
    let mut direct = Vec::with_capacity(ops);
    let mut routed = Vec::with_capacity(ops);
    timed_get(follower_server.local_addr(), target); // warm both caches
    timed_get(front, target);
    for _ in 0..ops {
        direct.push(timed_get(follower_server.local_addr(), target));
        routed.push(timed_get(front, target));
    }
    let (d, r) = (median(direct), median(routed));
    println!(
        "read latency: direct {:>8.3} ms | routed {:>8.3} ms | front-door overhead {:+.3} ms",
        d.as_secs_f64() * 1e3,
        r.as_secs_f64() * 1e3,
        (r.as_secs_f64() - d.as_secs_f64()) * 1e3,
    );

    router.shutdown();
    follower_server.shutdown();
    replica.shutdown();
    leader_server.shutdown();
    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&boot_dir).ok();
}
