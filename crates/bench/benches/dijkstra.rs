//! Microbenchmark of the lazy Dijkstra iterator underlying §3: full
//! expansion, bounded expansion, and the peek/next interleave pattern the
//! iterator heap exercises — each in the one-shot form (fresh dense state
//! per run) and the pooled form (one recycled arena block, the
//! steady-state serving shape where "clearing" is an epoch bump).

use banks_bench::corpus;
use banks_core::{GraphConfig, TupleGraph};
use banks_graph::{Dijkstra, Direction, NodeId, SearchArena};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_dijkstra(c: &mut Criterion) {
    let dataset = corpus("small");
    let tg = TupleGraph::build(&dataset.db, &GraphConfig::default()).unwrap();
    let graph = tg.graph();
    let start = NodeId(0);

    let mut group = c.benchmark_group("dijkstra");
    group.sample_size(20);
    group.bench_function("full_expansion_reverse", |b| {
        b.iter(|| {
            let it = Dijkstra::new(graph, start, Direction::Reverse);
            black_box(it.count())
        });
    });
    group.bench_function("full_expansion_forward", |b| {
        b.iter(|| {
            let it = Dijkstra::new(graph, start, Direction::Forward);
            black_box(it.count())
        });
    });
    let mut arena = SearchArena::new();
    group.bench_function("full_expansion_reverse_pooled", |b| {
        b.iter(|| {
            let it = Dijkstra::new_in(
                graph,
                start,
                Direction::Reverse,
                arena.checkout(graph.node_count()),
            );
            let mut it = black_box(it);
            let n = it.by_ref().count();
            arena.recycle(it.into_state());
            black_box(n)
        });
    });
    group.bench_function("bounded_expansion_pooled/1000", |b| {
        b.iter(|| {
            let it = Dijkstra::new_in(
                graph,
                start,
                Direction::Reverse,
                arena.checkout(graph.node_count()),
            )
            .with_max_settled(1000);
            let mut it = black_box(it);
            let n = it.by_ref().count();
            arena.recycle(it.into_state());
            black_box(n)
        });
    });
    for budget in [100usize, 1000, 10000] {
        group.bench_with_input(
            BenchmarkId::new("bounded_expansion", budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    let it =
                        Dijkstra::new(graph, start, Direction::Reverse).with_max_settled(budget);
                    black_box(it.count())
                });
            },
        );
    }
    // Satellite check for the precomputed per-edge score term: summing
    // the CSR-parallel score array vs recomputing `log2(1 + w/w_min)`
    // per edge — the work `Scorer::tree_edge_score` saves on every
    // generated connection tree.
    group.bench_function("edge_score_precomputed", |b| {
        b.iter(|| {
            let mut sum = 0.0;
            for v in graph.nodes() {
                for &e in graph.out_escores(v) {
                    sum += e;
                }
            }
            black_box(sum)
        });
    });
    group.bench_function("edge_score_recomputed", |b| {
        let w_min = graph.min_edge_weight();
        b.iter(|| {
            let mut sum = 0.0;
            for v in graph.nodes() {
                let (_, weights) = graph.out_adjacency(v);
                for &w in weights {
                    sum += (1.0 + w / w_min).log2();
                }
            }
            black_box(sum)
        });
    });
    group.bench_function("peek_next_interleave", |b| {
        b.iter(|| {
            let mut it = Dijkstra::new(graph, start, Direction::Reverse).with_max_settled(1000);
            let mut sum = 0.0;
            while let Some(d) = it.peek_dist() {
                sum += d;
                if it.next().is_none() {
                    break;
                }
            }
            black_box(sum)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dijkstra);
criterion_main!(benches);
