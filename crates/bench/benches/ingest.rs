//! Ingestion benchmarks: incremental apply vs full rebuild, and a mixed
//! read/write closed-loop workload.
//!
//! **Phase 1 — ingest vs rebuild.** A delta batch touching ~1% of the
//! corpus (new authors writing existing papers) is applied two ways
//! from identical cloned starting states (the clone — the shared price
//! of snapshot atomicity — sits outside the timers):
//!
//! * *incremental* — `apply_batch`: apply the ops, patch the graph
//!   (`GraphPatch`) and text index in the touched neighborhood only;
//! * *rebuild* — apply the ops, then re-derive `TupleGraph` and
//!   `TextIndex` from scratch, the pre-ingest restart story.
//!
//! The acceptance bar is incremental ≥ 5× faster; the bench prints the
//! measured speedup and warns loudly when it regresses below that. The
//! end-to-end `SnapshotPublisher::publish` wall time (clone included)
//! is printed alongside for operational context.
//!
//! **Phase 2 — mixed read/write closed loop.** N reader threads issue
//! Zipf-distributed keyword queries through the `QueryService` while
//! one writer publishes a small batch every few milliseconds through
//! the same `IngestEndpoint` the HTTP server uses. Reported: read QPS,
//! publishes, final epoch, cache hit ratio and epoch invalidations.
//!
//! Run with `cargo bench -p banks-bench --bench ingest`. Knobs:
//! `BANKS_BENCH_SCALE` (`tiny`|`small`|`paper`, default `tiny`),
//! `BANKS_BENCH_ITERS` (timing repetitions, default 5),
//! `BANKS_BENCH_THREADS` (readers, default 8), `BANKS_BENCH_OPS`
//! (queries per reader, default 2000).

use banks_bench::corpus;
use banks_core::Banks;
use banks_datagen::rng::Rng;
use banks_datagen::zipf::Zipf;
use banks_ingest::{apply_to_database, DeltaBatch, SnapshotPublisher, TupleOp};
use banks_server::{IngestEndpoint, QueryOptions, QueryService, ServiceConfig};
use banks_storage::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A batch inserting `authors` new authors, each writing one existing
/// paper — ~2 tuples and 1 link per author, the steady-state shape of a
/// growing bibliography.
fn growth_batch(banks: &Banks, authors: usize, tag: &str) -> DeltaBatch {
    let paper_ids: Vec<String> = banks
        .db()
        .relation("Paper")
        .expect("dblp corpus has Paper")
        .scan()
        .map(|(_, t)| t.values()[0].as_text().expect("text pk").to_string())
        .collect();
    let mut ops = Vec::with_capacity(authors * 2);
    for i in 0..authors {
        let id = format!("ingest-{tag}-{i}");
        ops.push(TupleOp::Insert {
            relation: "Author".into(),
            values: vec![
                Value::text(&id),
                Value::text(format!("Ingested Author {tag} {i}")),
            ],
        });
        ops.push(TupleOp::Insert {
            relation: "Writes".into(),
            values: vec![
                Value::text(&id),
                Value::text(&paper_ids[i % paper_ids.len()]),
            ],
        });
    }
    DeltaBatch { ops }
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn ingest_vs_rebuild(banks: &Arc<Banks>, iters: usize) -> (Duration, Duration) {
    let total = banks.db().total_tuples();
    // ~1% of the corpus; each author contributes 2 tuples.
    let authors = (total / 200).max(4);
    let batch = growth_batch(banks, authors, "bench");
    println!(
        "delta batch: {} ops (~{:.2}% of {} tuples)",
        batch.len(),
        100.0 * batch.len() as f64 / total as f64,
        total,
    );
    let config = banks.config().clone();
    let tokenizer = banks_storage::Tokenizer::new();

    // The derivation comparison: both sides start from an identical
    // cloned state (the clone is the price of snapshot atomicity and is
    // paid equally by either strategy, so it stays outside the timer)
    // and produce the post-batch graph + text index.
    let mut incremental = Vec::with_capacity(iters);
    for _ in 0..iters {
        let mut db = banks.db().clone();
        let mut text = banks.text_index().clone();
        let t0 = Instant::now();
        let (tg, stats) = banks_ingest::apply_batch(
            &mut db,
            banks.tuple_graph(),
            &mut text,
            &batch,
            &config.graph,
            &tokenizer,
        )
        .expect("incremental apply");
        incremental.push(t0.elapsed());
        assert_eq!(stats.counts.inserted, batch.len());
        assert_eq!(tg.node_count(), total + batch.len());
    }

    let mut rebuild = Vec::with_capacity(iters);
    for _ in 0..iters {
        let mut db = banks.db().clone();
        let t0 = Instant::now();
        apply_to_database(&mut db, &batch, None).expect("apply");
        let tg = banks_core::TupleGraph::build(&db, &config.graph).expect("graph rebuild");
        let text = banks_storage::TextIndex::build(&db, &tokenizer);
        rebuild.push(t0.elapsed());
        assert!(text.posting_count() > 0);
        assert_eq!(tg.node_count(), total + batch.len());
    }

    // End-to-end publication (clone + derive + re-assemble `Banks`),
    // reported for context: the clone is shared cost, so the ratio here
    // is smaller than the derivation ratio above.
    let mut publish = Vec::with_capacity(iters);
    for _ in 0..iters {
        let mut publisher = SnapshotPublisher::new(Arc::clone(banks));
        let t0 = Instant::now();
        let published = publisher.publish(&batch, None).expect("publish");
        publish.push(t0.elapsed());
        assert!(published.info.incremental);
    }
    println!(
        "end-to-end publish (clone + apply + assemble): {:>8.3} ms",
        median(publish).as_secs_f64() * 1e3,
    );

    (median(incremental), median(rebuild))
}

fn mixed_read_write(banks: &Arc<Banks>, threads: usize, ops_per_thread: usize) {
    let service = Arc::new(QueryService::new(
        Arc::clone(banks),
        ServiceConfig::default(),
    ));
    let endpoint = IngestEndpoint::new(Arc::clone(&service));

    // Two-keyword query pool from the corpus's own tokens.
    let mut tokens: Vec<String> = banks.text_index().tokens().map(|t| t.to_string()).collect();
    tokens.sort();
    let mut rng = Rng::new(42);
    let pool: Vec<String> = (0..512)
        .map(|_| format!("{} {}", rng.pick(&tokens), rng.pick(&tokens)))
        .collect();
    let zipf = Zipf::new(pool.len(), 1.0);

    let done = AtomicBool::new(false);
    let publishes = AtomicU64::new(0);
    let reads = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let service = Arc::clone(&service);
            let (pool, zipf, done, reads) = (&pool, &zipf, &done, &reads);
            scope.spawn(move || {
                let mut rng = Rng::new(0x5eed + t as u64);
                for _ in 0..ops_per_thread {
                    let q = &pool[zipf.sample(&mut rng)];
                    let resp = service.search(q, QueryOptions::default()).expect("query");
                    assert!(resp.epoch <= service.epoch(), "epochs move forward only");
                    reads.fetch_add(1, Ordering::Relaxed);
                }
                done.store(true, Ordering::Relaxed);
            });
        }
        // Writer: publish a small batch every 2 ms until any reader
        // finishes its quota (closed loop bounded by the read side).
        // Batches only reference Paper keys from the base corpus (they
        // never disappear) and mint epoch-unique author ids, so the
        // writer can derive every batch from the base snapshot.
        let (endpoint, done, publishes) = (&endpoint, &done, &publishes);
        let base = Arc::clone(banks);
        scope.spawn(move || {
            let mut round = 0u64;
            while !done.load(Ordering::Relaxed) {
                let batch = growth_batch(&base, 2, &format!("rw{round}"));
                let info = endpoint.ingest(&batch, None).expect("writer publish");
                publishes.fetch_add(1, Ordering::Relaxed);
                round = info.epoch;
                std::thread::sleep(Duration::from_millis(2));
            }
        });
    });
    let wall = t0.elapsed();

    let stats = service.stats();
    let lookups = stats.cache.hits + stats.cache.misses;
    println!(
        "mixed      {:>8} reads in {:>8.3} s → {:>9.0} QPS | {} publishes (final epoch {}) | hit ratio {:>5.1}% | {} epoch invalidations",
        reads.load(Ordering::Relaxed),
        wall.as_secs_f64(),
        reads.load(Ordering::Relaxed) as f64 / wall.as_secs_f64(),
        publishes.load(Ordering::Relaxed),
        stats.epoch,
        if lookups == 0 {
            0.0
        } else {
            100.0 * stats.cache.hits as f64 / lookups as f64
        },
        stats.cache.invalidations,
    );
    assert_eq!(
        lookups, stats.queries,
        "every query accounted as hit or miss even under publication churn"
    );
}

fn main() {
    let scale = std::env::var("BANKS_BENCH_SCALE").unwrap_or_else(|_| "tiny".to_string());
    let iters = env_usize("BANKS_BENCH_ITERS", 5).max(1);
    let threads = env_usize("BANKS_BENCH_THREADS", 8).max(1);
    let ops = env_usize("BANKS_BENCH_OPS", 2000);

    let dataset = corpus(&scale);
    let banks = Arc::new(Banks::new(dataset.db.clone()).expect("banks builds"));
    println!(
        "corpus {scale}: {} nodes, {} edges",
        banks.tuple_graph().node_count(),
        banks.tuple_graph().graph().edge_count(),
    );

    let (incremental, rebuild) = ingest_vs_rebuild(&banks, iters);
    let speedup = rebuild.as_secs_f64() / incremental.as_secs_f64().max(1e-12);
    println!(
        "incremental {:>10.3} ms | full rebuild {:>10.3} ms | speedup {:>6.1}×",
        incremental.as_secs_f64() * 1e3,
        rebuild.as_secs_f64() * 1e3,
        speedup,
    );
    if speedup < 5.0 {
        println!("WARNING: incremental apply less than 5× faster than rebuild — regression?");
    }

    mixed_read_write(&banks, threads, ops);
}
