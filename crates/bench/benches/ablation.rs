//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * ABL-DUP — duplicate elimination on/off;
//! * ABL-FWD — §7 forward search vs §3 backward search on a
//!   metadata-heavy query (the blow-up case) and on a selective one;
//! * ABL-HEAP — output-heap capacity;
//! * backward-edge weighting (eq. 1) on/off at graph build time.

use banks_bench::{banks_for, corpus};
use banks_core::{Banks, GraphConfig, SearchStrategy, TupleGraph};
use banks_eval::workload::dblp_eval_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let dataset = corpus("tiny");
    let banks = banks_for(&dataset);

    // ABL-DUP: dedup cost on a duplicate-heavy query.
    let mut group = c.benchmark_group("ablation_dedup");
    for dedup in [true, false] {
        let mut config = dblp_eval_config();
        config.search.deduplicate = dedup;
        let banks = Banks::with_config(dataset.db.clone(), config).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(dedup), &banks, |b, banks| {
            b.iter(|| black_box(banks.search("soumen sunita").unwrap().len()));
        });
    }
    group.finish();

    // ABL-FWD: strategy comparison.
    let mut group = c.benchmark_group("ablation_strategy");
    group.sample_size(20);
    for (label, query) in [
        ("metadata_heavy", "author sunita"),
        ("selective", "seltzer sunita"),
    ] {
        group.bench_with_input(BenchmarkId::new("backward", label), &query, |b, query| {
            b.iter(|| {
                let outcome = banks
                    .search_with(query, SearchStrategy::Backward, banks.config())
                    .unwrap();
                black_box(outcome.stats.pops)
            });
        });
        group.bench_with_input(BenchmarkId::new("forward", label), &query, |b, query| {
            b.iter(|| {
                let outcome = banks
                    .search_with(query, SearchStrategy::Forward, banks.config())
                    .unwrap();
                black_box(outcome.stats.pops)
            });
        });
    }
    group.finish();

    // ABL-HEAP: output buffer capacity.
    let mut group = c.benchmark_group("ablation_heap");
    for size in [1usize, 30, 1000] {
        let mut config = dblp_eval_config();
        config.search.output_heap_size = size;
        let banks = Banks::with_config(dataset.db.clone(), config).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(size), &banks, |b, banks| {
            b.iter(|| black_box(banks.search("soumen sunita byron").unwrap().len()));
        });
    }
    group.finish();

    // Backward-edge weighting at build time (eq. 1 vs symmetric).
    let mut group = c.benchmark_group("ablation_backward_weights");
    group.sample_size(10);
    for weighted in [true, false] {
        let config = GraphConfig {
            indegree_backward_weights: weighted,
            ..GraphConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(weighted),
            &config,
            |b, config| {
                b.iter(|| {
                    let tg = TupleGraph::build(&dataset.db, config).unwrap();
                    black_box(tg.graph().edge_count())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
