//! Closed-loop throughput benchmark for the `banks-server` query
//! service: N client threads issue keyword queries back-to-back against
//! one shared snapshot and its result cache.
//!
//! Two workloads bracket the caching behaviour:
//!
//! * **distinct** — every query in the pool exactly once per thread
//!   round-robin, defeating the cache (cold QPS, pure search speed);
//! * **zipf** — queries drawn Zipf(s = 1.0) from the pool, the shape of
//!   real keyword traffic (hot QPS; the cache absorbs the head).
//!
//! Reported per workload: wall-clock QPS, cache hit ratio, and the
//! median cold vs cached response latency. Run with
//! `cargo bench -p banks-bench --bench throughput`; environment knobs:
//! `BANKS_BENCH_THREADS` (default 8), `BANKS_BENCH_OPS` (per-thread
//! query count, default 2000), `BANKS_BENCH_SCALE` (corpus, default
//! `tiny`).

use banks_bench::{banks_for, corpus};
use banks_datagen::rng::Rng;
use banks_datagen::zipf::Zipf;
use banks_server::{QueryOptions, QueryService, ServiceConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Build a pool of two-keyword queries from the corpus's own indexed
/// tokens, so every query does real multi-iterator search work.
fn query_pool(service: &QueryService, size: usize, seed: u64) -> Vec<String> {
    let mut tokens: Vec<String> = service
        .banks()
        .text_index()
        .tokens()
        .map(|t| t.to_string())
        .collect();
    tokens.sort();
    let mut rng = Rng::new(seed);
    (0..size)
        .map(|_| {
            let a = rng.pick(&tokens).clone();
            let b = rng.pick(&tokens).clone();
            format!("{a} {b}")
        })
        .collect()
}

struct WorkloadReport {
    name: &'static str,
    wall: Duration,
    ops: usize,
    hit_ratio: f64,
    cold_median: Duration,
    cached_median: Duration,
    cached_ops: usize,
}

impl WorkloadReport {
    fn qps(&self) -> f64 {
        self.ops as f64 / self.wall.as_secs_f64()
    }

    fn print(&self) {
        println!(
            "{:<10} {:>8} ops in {:>8.3} s → {:>9.0} QPS | hit ratio {:>5.1}% | median latency cold {:>9.1} µs / cached {:>7.1} µs ({} cached responses)",
            self.name,
            self.ops,
            self.wall.as_secs_f64(),
            self.qps(),
            self.hit_ratio * 100.0,
            self.cold_median.as_secs_f64() * 1e6,
            self.cached_median.as_secs_f64() * 1e6,
            self.cached_ops,
        );
    }
}

fn median(mut xs: Vec<Duration>) -> Duration {
    if xs.is_empty() {
        return Duration::ZERO;
    }
    xs.sort();
    xs[xs.len() / 2]
}

/// Run `threads` closed-loop clients; `pick(thread, op, rng)` chooses
/// each query index.
fn run_workload(
    name: &'static str,
    service: &Arc<QueryService>,
    pool: &[String],
    threads: usize,
    ops_per_thread: usize,
    pick: impl Fn(usize, usize, &mut Rng) -> usize + Sync,
) -> WorkloadReport {
    let before = service.stats();
    let t0 = Instant::now();
    let samples: Vec<(Vec<Duration>, Vec<Duration>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let service = Arc::clone(service);
                let pick = &pick;
                scope.spawn(move || {
                    let mut rng = Rng::new(0x5eed + t as u64);
                    let mut cold = Vec::new();
                    let mut cached = Vec::new();
                    for op in 0..ops_per_thread {
                        let q = &pool[pick(t, op, &mut rng)];
                        let resp = service
                            .search(q, QueryOptions::default())
                            .expect("pool queries are valid");
                        if resp.cached {
                            cached.push(resp.elapsed);
                        } else {
                            cold.push(resp.elapsed);
                        }
                    }
                    (cold, cached)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall = t0.elapsed();
    let after = service.stats();

    let mut cold = Vec::new();
    let mut cached = Vec::new();
    for (c, h) in samples {
        cold.extend(c);
        cached.extend(h);
    }
    let lookups =
        (after.cache.hits + after.cache.misses) - (before.cache.hits + before.cache.misses);
    let hits = after.cache.hits - before.cache.hits;
    WorkloadReport {
        name,
        wall,
        ops: threads * ops_per_thread,
        hit_ratio: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
        cached_ops: cached.len(),
        cold_median: median(cold),
        cached_median: median(cached),
    }
}

fn main() {
    let threads = env_usize("BANKS_BENCH_THREADS", 8);
    let ops = env_usize("BANKS_BENCH_OPS", 2000);
    let scale = std::env::var("BANKS_BENCH_SCALE").unwrap_or_else(|_| "tiny".to_string());

    let dataset = corpus(&scale);
    let banks = Arc::new(banks_for(&dataset));
    println!(
        "corpus {scale}: {} nodes, {} edges; {threads} client threads × {ops} queries",
        banks.tuple_graph().node_count(),
        banks.tuple_graph().graph().edge_count(),
    );

    let pool_size = 512.min(ops.max(2));
    // Distinct phase: every lookup misses (pool cycled round-robin with a
    // per-thread offset, and the cache is smaller than the pool's miss
    // stream is varied — use a dedicated service with a tiny cache to
    // guarantee misses stay misses).
    let cold_service = Arc::new(QueryService::new(
        Arc::clone(&banks),
        ServiceConfig {
            cache_capacity: 2,
            cache_shards: 1,
            ..ServiceConfig::default()
        },
    ));
    let pool = query_pool(&cold_service, pool_size, 42);
    let distinct = run_workload(
        "distinct",
        &cold_service,
        &pool,
        threads,
        ops,
        |t, op, _rng| (t * 31 + op * 7) % pool_size,
    );
    distinct.print();

    // Zipf phase: skewed repetition through a production-sized cache.
    let hot_service = Arc::new(QueryService::new(
        Arc::clone(&banks),
        ServiceConfig::default(),
    ));
    let zipf = Zipf::new(pool_size, 1.0);
    let hot = run_workload("zipf", &hot_service, &pool, threads, ops, |_t, _op, rng| {
        zipf.sample(rng)
    });
    hot.print();

    println!(
        "speedup: zipf {:.2}× the distinct QPS; cached median latency {:.1}× below cold",
        hot.qps() / distinct.qps().max(1e-9),
        distinct.cold_median.as_secs_f64() / hot.cached_median.as_secs_f64().max(1e-9),
    );
    if hot.cached_median >= distinct.cold_median {
        println!("WARNING: cached latency not below cold latency — cache regression?");
    }
}
