//! Host crate for the workspace's runnable examples.
//!
//! The example sources live in the repository-level `examples/` directory;
//! run them with:
//!
//! ```text
//! cargo run -p banks-examples --example quickstart
//! cargo run -p banks-examples --example bibliography_search
//! cargo run -p banks-examples --example thesis_browsing
//! cargo run -p banks-examples --example parameter_tuning
//! ```
