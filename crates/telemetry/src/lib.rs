//! # banks-telemetry
//!
//! The unified telemetry layer for the BANKS workspace: a process-wide
//! metric [`Registry`] with lock-free sharded [`Counter`]s, [`Gauge`]s,
//! and log-linear HDR-style [`Histogram`]s, rendered as Prometheus text
//! exposition; plus per-query trace [`SpanBuffer`]s and a bounded
//! [`SlowLog`] of the worst queries.
//!
//! Design constraints, in order:
//!
//! 1. **Std-only.** Like the rest of the workspace, no crates.io
//!    dependencies — the exposition format and histograms are small
//!    enough to own.
//! 2. **Hot path pays nothing it didn't ask for.** Instruments are
//!    plain `Arc`s handed out at registration; recording is one or two
//!    relaxed `fetch_add`s. Span recording behind a disabled
//!    [`SpanBuffer`] is a single branch. The registry mutex is only
//!    taken at registration and scrape time.
//! 3. **Mergeable and testable.** Every histogram shares one fixed
//!    bucket layout, so shard-local histograms merge by addition and
//!    quantiles are exact with respect to the layout — properties the
//!    test suite checks directly.

pub mod counter;
pub mod histogram;
pub mod registry;
pub mod slowlog;
pub mod span;

pub use counter::{Counter, Gauge};
pub use histogram::{latency_boundaries, Histogram, HistogramSnapshot};
pub use registry::{CollectedFamily, Collector, Kind, LabelSet, Registry, Sample};
pub use slowlog::{SlowLog, SlowQuery};
pub use span::{Span, SpanBuffer};
