//! The metric registry and Prometheus text-format exposition.
//!
//! A [`Registry`] owns labeled instrument families (counters, gauges,
//! histograms) and a list of *collectors* — closures that derive scalar
//! families from existing stats snapshots at scrape time (the server's
//! cache, epoch, pager, and WAL families all come from collectors, so
//! subsystems keep their own counters and the registry never dictates
//! their storage). Registration takes a mutex; the returned `Arc`
//! instruments are lock-free, so the hot path never touches the
//! registry again.
//!
//! [`Registry::render`] emits the Prometheus text format, version
//! 0.0.4: families sorted by name, one `# HELP` / `# TYPE` pair each,
//! label values escaped per the spec (`\\`, `\"`, `\n`), histograms as
//! cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.

use crate::counter::{Counter, Gauge};
use crate::histogram::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Metric family kinds, mirroring Prometheus `# TYPE` values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing.
    Counter,
    /// Free-moving value.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// A label set: name/value pairs, rendered in insertion order.
pub type LabelSet = Vec<(&'static str, String)>;

/// One scalar sample produced by a collector.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Label name/value pairs.
    pub labels: LabelSet,
    /// Sample value.
    pub value: f64,
}

/// A scalar family produced by a collector at scrape time.
#[derive(Clone, Debug)]
pub struct CollectedFamily {
    /// Family name (e.g. `banks_cache_hits_total`).
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// Counter or gauge; collectors cannot emit histograms (owned
    /// histogram instruments cover that case).
    pub kind: Kind,
    /// The samples.
    pub samples: Vec<Sample>,
}

impl CollectedFamily {
    /// A family with a single unlabeled sample — the common case for
    /// stats-snapshot collectors.
    pub fn scalar(name: &'static str, help: &'static str, kind: Kind, value: f64) -> Self {
        CollectedFamily {
            name,
            help,
            kind,
            samples: vec![Sample {
                labels: Vec::new(),
                value,
            }],
        }
    }
}

/// A scrape-time family source.
pub type Collector = Arc<dyn Fn() -> Vec<CollectedFamily> + Send + Sync>;

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct OwnedFamily {
    help: &'static str,
    kind: Kind,
    /// Histogram export ladder in ticks; empty for scalar families.
    boundaries: Vec<u64>,
    /// Multiplier from ticks to the exported unit (1e-9 for ns → s).
    scale: f64,
    metrics: Vec<(LabelSet, Instrument)>,
}

#[derive(Default)]
struct Inner {
    families: BTreeMap<&'static str, OwnedFamily>,
    collectors: Vec<Collector>,
}

/// A process-wide metric registry. Cheap to share (`Arc<Registry>`);
/// see the module docs for the locking story.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create a counter with the given family name and labels.
    ///
    /// # Panics
    /// If `name` is already registered with a different kind.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let family = family_entry(&mut inner, name, help, Kind::Counter, Vec::new(), 1.0);
        let labels = own_labels(labels);
        if let Some((_, Instrument::Counter(c))) = family.metrics.iter().find(|(l, _)| *l == labels)
        {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        family
            .metrics
            .push((labels, Instrument::Counter(Arc::clone(&c))));
        c
    }

    /// Get or create a gauge.
    ///
    /// # Panics
    /// If `name` is already registered with a different kind.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let family = family_entry(&mut inner, name, help, Kind::Gauge, Vec::new(), 1.0);
        let labels = own_labels(labels);
        if let Some((_, Instrument::Gauge(g))) = family.metrics.iter().find(|(l, _)| *l == labels) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        family
            .metrics
            .push((labels, Instrument::Gauge(Arc::clone(&g))));
        g
    }

    /// Get or create a histogram exported over the `boundaries` ladder
    /// (tick values; `tick * scale` is the unit shown in `le=`).
    ///
    /// # Panics
    /// If `name` is already registered with a different kind.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        boundaries: &[u64],
        scale: f64,
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.register_histogram(name, help, labels, Arc::clone(&h), boundaries, scale);
        h
    }

    /// Register an externally owned histogram (e.g. one a service
    /// created before the HTTP layer existed). Re-registering the same
    /// labels replaces nothing — first registration wins.
    pub fn register_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        histogram: Arc<Histogram>,
        boundaries: &[u64],
        scale: f64,
    ) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let family = family_entry(
            &mut inner,
            name,
            help,
            Kind::Histogram,
            boundaries.to_vec(),
            scale,
        );
        let labels = own_labels(labels);
        if family.metrics.iter().any(|(l, _)| *l == labels) {
            return;
        }
        family
            .metrics
            .push((labels, Instrument::Histogram(histogram)));
    }

    /// Add a scrape-time collector.
    pub fn register_collector<F>(&self, f: F)
    where
        F: Fn() -> Vec<CollectedFamily> + Send + Sync + 'static,
    {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.collectors.push(Arc::new(f));
    }

    /// Render the Prometheus text exposition (format version 0.0.4).
    pub fn render(&self) -> String {
        // Snapshot owned instruments and collector handles under the
        // lock, then run collectors unlocked so a collector may itself
        // consult shared state without deadlock risk.
        struct FamilySnapshot {
            help: &'static str,
            kind: Kind,
            boundaries: Vec<u64>,
            scale: f64,
            scalars: Vec<(LabelSet, f64)>,
            histograms: Vec<(LabelSet, crate::histogram::HistogramSnapshot)>,
        }
        let (mut families, collectors): (BTreeMap<&'static str, FamilySnapshot>, Vec<Collector>) = {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let families = inner
                .families
                .iter()
                .map(|(&name, fam)| {
                    let mut snap = FamilySnapshot {
                        help: fam.help,
                        kind: fam.kind,
                        boundaries: fam.boundaries.clone(),
                        scale: fam.scale,
                        scalars: Vec::new(),
                        histograms: Vec::new(),
                    };
                    for (labels, instrument) in &fam.metrics {
                        match instrument {
                            Instrument::Counter(c) => {
                                snap.scalars.push((labels.clone(), c.get() as f64));
                            }
                            Instrument::Gauge(g) => {
                                snap.scalars.push((labels.clone(), g.get() as f64));
                            }
                            Instrument::Histogram(h) => {
                                snap.histograms.push((labels.clone(), h.snapshot()));
                            }
                        }
                    }
                    (name, snap)
                })
                .collect();
            (families, inner.collectors.clone())
        };
        for collector in &collectors {
            for fam in collector() {
                let entry = families.entry(fam.name).or_insert_with(|| FamilySnapshot {
                    help: fam.help,
                    kind: fam.kind,
                    boundaries: Vec::new(),
                    scale: 1.0,
                    scalars: Vec::new(),
                    histograms: Vec::new(),
                });
                for s in fam.samples {
                    entry.scalars.push((s.labels, s.value));
                }
            }
        }

        let mut out = String::new();
        for (name, fam) in &families {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(fam.help));
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind.as_str());
            for (labels, value) in &fam.scalars {
                let _ = writeln!(out, "{name}{} {}", render_labels(labels), fmt_value(*value));
            }
            for (labels, snap) in &fam.histograms {
                for &bound in &fam.boundaries {
                    let le = fmt_value(bound as f64 * fam.scale);
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {}",
                        render_labels_with(labels, "le", &le),
                        snap.cumulative_le(bound)
                    );
                }
                let count = snap.count();
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {count}",
                    render_labels_with(labels, "le", "+Inf")
                );
                let _ = writeln!(
                    out,
                    "{name}_sum{} {}",
                    render_labels(labels),
                    fmt_value(snap.sum() as f64 * fam.scale)
                );
                let _ = writeln!(out, "{name}_count{} {count}", render_labels(labels));
            }
        }
        out
    }
}

fn family_entry<'a>(
    inner: &'a mut Inner,
    name: &'static str,
    help: &'static str,
    kind: Kind,
    boundaries: Vec<u64>,
    scale: f64,
) -> &'a mut OwnedFamily {
    let family = inner.families.entry(name).or_insert_with(|| OwnedFamily {
        help,
        kind,
        boundaries,
        scale,
        metrics: Vec::new(),
    });
    assert!(
        family.kind == kind,
        "metric family {name} registered as {} and {}",
        family.kind.as_str(),
        kind.as_str()
    );
    family
}

fn own_labels(labels: &[(&'static str, &str)]) -> LabelSet {
    labels.iter().map(|&(k, v)| (k, v.to_string())).collect()
}

fn render_labels(labels: &LabelSet) -> String {
    if labels.is_empty() {
        return String::new();
    }
    render_parts(labels.iter().map(|(k, v)| (*k, v.as_str())))
}

fn render_labels_with(labels: &LabelSet, extra_key: &'static str, extra_value: &str) -> String {
    render_parts(
        labels
            .iter()
            .map(|(k, v)| (*k, v.as_str()))
            .chain(std::iter::once((extra_key, extra_value))),
    )
}

fn render_parts<'a>(parts: impl Iterator<Item = (&'a str, &'a str)>) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in parts.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Escape a label value per the text-format spec.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `# HELP` text (backslash and newline only, per the spec).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a sample value: integral values without a fractional part,
/// everything else via the shortest `f64` round-trip form.
fn fmt_value(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::latency_boundaries;

    /// A parsed exposition row: `(metric, labels, value)`.
    type Row = (String, Vec<(String, String)>, f64);

    /// Minimal exposition-format parser: returns `(metric, labels,
    /// value)` rows and panics on any malformed line — the "scraped
    /// output parses" check.
    fn parse(text: &str) -> Vec<Row> {
        let mut rows = Vec::new();
        let mut seen_families = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap().to_string();
                assert!(!seen_families.contains(&name), "duplicate HELP for {name}");
                seen_families.push(name);
                continue;
            }
            if line.starts_with("# TYPE ") {
                continue;
            }
            assert!(!line.starts_with('#'), "unexpected comment: {line}");
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            let value: f64 = if value == "+Inf" {
                f64::INFINITY
            } else {
                value
                    .parse()
                    .unwrap_or_else(|_| panic!("bad value in {line}"))
            };
            let (name, labels) = match series.split_once('{') {
                None => (series.to_string(), Vec::new()),
                Some((name, rest)) => {
                    let body = rest.strip_suffix('}').expect("closing brace");
                    let mut labels = Vec::new();
                    let mut remaining = body;
                    while !remaining.is_empty() {
                        let (key, rest) = remaining.split_once("=\"").expect("label key");
                        assert!(key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
                        // Scan to the closing unescaped quote.
                        let mut val = String::new();
                        let mut chars = rest.chars();
                        loop {
                            match chars.next().expect("unterminated label value") {
                                '\\' => {
                                    let e = chars.next().expect("dangling escape");
                                    match e {
                                        '\\' | '"' => val.push(e),
                                        'n' => val.push('\n'),
                                        e => panic!("bad escape \\{e}"),
                                    }
                                }
                                '"' => break,
                                c => {
                                    assert!(c != '\n');
                                    val.push(c);
                                }
                            }
                        }
                        labels.push((key.to_string(), val));
                        remaining = chars.as_str().strip_prefix(',').unwrap_or(chars.as_str());
                    }
                    (name.to_string(), labels)
                }
            };
            assert!(name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
            rows.push((name, labels, value));
        }
        rows
    }

    #[test]
    fn renders_sorted_families_with_help_and_type() {
        let r = Registry::new();
        r.counter("zeta_total", "Last family.", &[]).add(3);
        r.gauge("alpha_depth", "First family.", &[]).set(7);
        let text = r.render();
        let alpha = text.find("# HELP alpha_depth").unwrap();
        let zeta = text.find("# HELP zeta_total").unwrap();
        assert!(alpha < zeta, "families must be sorted by name");
        assert!(text.contains("# TYPE alpha_depth gauge"));
        assert!(text.contains("# TYPE zeta_total counter"));
        let rows = parse(&text);
        assert!(rows.contains(&("alpha_depth".into(), vec![], 7.0)));
        assert!(rows.contains(&("zeta_total".into(), vec![], 3.0)));
    }

    #[test]
    fn escapes_label_values() {
        let r = Registry::new();
        r.counter(
            "requests_total",
            "Requests with a hostile label: back\\slash.",
            &[("path", "a\"b\\c\nd")],
        )
        .inc();
        let text = r.render();
        assert!(text.contains(r#"path="a\"b\\c\nd""#), "got: {text}");
        let rows = parse(&text);
        assert_eq!(
            rows[0].1,
            vec![("path".to_string(), "a\"b\\c\nd".to_string())]
        );
    }

    #[test]
    fn same_labels_return_same_instrument() {
        let r = Registry::new();
        let a = r.counter("hits_total", "h", &[("shard", "0")]);
        let b = r.counter("hits_total", "h", &[("shard", "0")]);
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        let c = r.counter("hits_total", "h", &[("shard", "1")]);
        c.inc();
        let text = r.render();
        assert!(text.contains("hits_total{shard=\"0\"} 5"));
        assert!(text.contains("hits_total{shard=\"1\"} 1"));
    }

    #[test]
    #[should_panic(expected = "registered as counter and gauge")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("x_total", "x", &[]);
        r.gauge("x_total", "x", &[]);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_consistent() {
        let r = Registry::new();
        let h = r.histogram(
            "latency_seconds",
            "Latency.",
            &[("endpoint", "/search")],
            &latency_boundaries(),
            1e-9,
        );
        for v in [5_000u64, 80_000, 80_000, 2_000_000, 900_000_000] {
            h.record(v);
        }
        let text = r.render();
        let rows = parse(&text);
        let buckets: Vec<(f64, f64)> = rows
            .iter()
            .filter(|(name, _, _)| name == "latency_seconds_bucket")
            .map(|(_, labels, value)| {
                let le = &labels.iter().find(|(k, _)| k == "le").unwrap().1;
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap()
                };
                (le, *value)
            })
            .collect();
        assert_eq!(buckets.len(), latency_boundaries().len() + 1);
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "le values must increase");
            assert!(w[0].1 <= w[1].1, "cumulative counts must not decrease");
        }
        let count = rows
            .iter()
            .find(|(name, _, _)| name == "latency_seconds_count")
            .unwrap()
            .2;
        let sum = rows
            .iter()
            .find(|(name, _, _)| name == "latency_seconds_sum")
            .unwrap()
            .2;
        assert_eq!(buckets.last().unwrap().1, count, "+Inf bucket == _count");
        assert_eq!(count, 5.0);
        let expected_sum = (5_000.0 + 80_000.0 + 80_000.0 + 2_000_000.0 + 900_000_000.0) * 1e-9;
        assert!((sum - expected_sum).abs() < 1e-9);
    }

    #[test]
    fn collectors_contribute_families() {
        let r = Registry::new();
        r.register_collector(|| {
            vec![
                CollectedFamily::scalar("cache_hits_total", "Hits.", Kind::Counter, 42.0),
                CollectedFamily {
                    name: "backend_healthy",
                    help: "Per-backend health.",
                    kind: Kind::Gauge,
                    samples: vec![Sample {
                        labels: vec![("backend", "127.0.0.1:7000".to_string())],
                        value: 1.0,
                    }],
                },
            ]
        });
        let text = r.render();
        let rows = parse(&text);
        assert!(rows.contains(&("cache_hits_total".into(), vec![], 42.0)));
        assert!(rows.iter().any(|(name, labels, value)| {
            name == "backend_healthy"
                && labels == &[("backend".to_string(), "127.0.0.1:7000".to_string())]
                && *value == 1.0
        }));
    }
}
