//! Lock-free sharded counters and plain gauges.
//!
//! [`Counter`] spreads increments across a small fixed array of
//! cache-line-padded atomic cells indexed by a per-thread shard id, so
//! concurrent writers on different cores do not bounce a single cache
//! line. Reads sum every cell; they are monotone but not linearizable
//! with respect to in-flight increments, which is exactly what a scrape
//! needs and nothing more.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of padded cells per counter. A small power of two: enough to
/// spread the worker pool, cheap enough to sum on every scrape.
const SHARDS: usize = 16;

/// One cache line worth of counter cell so neighbouring shards never
/// share a line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

/// Next thread shard id; assigned once per thread on first use.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's home cell index, stable for the thread's lifetime.
    static THREAD_SHARD: usize =
        NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

#[inline]
fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| *s)
}

/// A monotonically increasing counter with sharded storage.
#[derive(Default)]
pub struct Counter {
    cells: [PaddedCell; SHARDS],
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[thread_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.get())
            .finish()
    }
}

/// A gauge: a value that can go up and down (queue depth, resident
/// bytes, current epoch). Single atomic — gauges are written rarely
/// compared to counters, so sharding would only complicate `set`.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replace the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge").field("value", &self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }
}
