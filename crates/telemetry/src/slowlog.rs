//! Bounded in-memory slow-query log.
//!
//! Keeps the `capacity` worst queries seen so far, ranked by total
//! duration, each with its span breakdown. Recording happens once per
//! *cold* query (cache hits never reach it), so a mutex is fine here —
//! the hot path never touches this module.

use crate::span::Span;
use std::sync::Mutex;

/// One retained slow query.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// The normalized query text.
    pub query: String,
    /// End-to-end cold duration in microseconds.
    pub total_us: u64,
    /// Snapshot epoch the query ran against.
    pub epoch: u64,
    /// Wall-clock completion time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Phase breakdown (empty when span recording was off).
    pub spans: Vec<Span>,
}

/// A bounded worst-N collection of [`SlowQuery`] entries.
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    entries: Mutex<Vec<SlowQuery>>,
}

impl SlowLog {
    /// A log retaining the `capacity` slowest queries.
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            capacity,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offer a query; it is retained if the log has room or it is slower
    /// than the current fastest retained entry.
    pub fn record(&self, entry: SlowQuery) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.len() < self.capacity {
            entries.push(entry);
            return;
        }
        let (min_idx, min) = entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.total_us)
            .expect("non-empty at capacity");
        if entry.total_us > min.total_us {
            entries[min_idx] = entry;
        }
    }

    /// The retained queries, slowest first.
    pub fn snapshot(&self) -> Vec<SlowQuery> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = entries.clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.total_us));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(name: &str, total_us: u64) -> SlowQuery {
        SlowQuery {
            query: name.to_string(),
            total_us,
            epoch: 1,
            unix_ms: 0,
            spans: Vec::new(),
        }
    }

    #[test]
    fn keeps_the_worst_n() {
        let log = SlowLog::new(3);
        for (name, us) in [("a", 10), ("b", 50), ("c", 20), ("d", 40), ("e", 5)] {
            log.record(q(name, us));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        let names: Vec<&str> = snap.iter().map(|e| e.query.as_str()).collect();
        assert_eq!(names, ["b", "d", "c"]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let log = SlowLog::new(0);
        log.record(q("a", 10));
        assert!(log.snapshot().is_empty());
    }
}
