//! Per-query trace spans.
//!
//! A [`SpanBuffer`] lives inside a reusable search arena: one per worker
//! thread, cleared (not freed) between queries. When disabled — the
//! default, and always the case on the bench kernels — every call is a
//! branch on a bool and nothing else: no clock reads, no allocation.
//! When a traced query runs, phases record `(name, index, start, end)`
//! tuples as nanosecond offsets from the buffer's enable time.

use std::time::Instant;

/// One recorded phase of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Phase name (`"parse"`, `"match"`, `"expand"`, `"merge"`,
    /// `"score"`, `"render"`).
    pub name: &'static str,
    /// Disambiguator for repeated phases — the shard id for per-shard
    /// expansion spans, 0 elsewhere.
    pub index: u32,
    /// Start, nanoseconds since the buffer was enabled.
    pub start_ns: u64,
    /// End, nanoseconds since the buffer was enabled.
    pub end_ns: u64,
}

/// A reusable buffer of spans with near-zero disabled cost.
#[derive(Debug)]
pub struct SpanBuffer {
    enabled: bool,
    origin: Instant,
    spans: Vec<Span>,
}

impl Default for SpanBuffer {
    fn default() -> Self {
        SpanBuffer::new()
    }
}

impl SpanBuffer {
    /// A disabled buffer; recording costs one predictable branch.
    pub fn new() -> SpanBuffer {
        SpanBuffer {
            enabled: false,
            origin: Instant::now(),
            spans: Vec::new(),
        }
    }

    /// Start recording: clears prior spans (keeping capacity) and resets
    /// the clock origin.
    pub fn enable(&mut self) {
        self.enabled = true;
        self.spans.clear();
        self.origin = Instant::now();
    }

    /// Stop recording; existing spans stay until the next [`enable`].
    ///
    /// [`enable`]: SpanBuffer::enable
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The instant offsets are measured from. Only meaningful while
    /// enabled; parallel shard workers use it to timestamp from their
    /// own threads.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Current offset in nanoseconds, or 0 when disabled (no clock
    /// read). Use as the `start` handle for [`end`].
    ///
    /// [`end`]: SpanBuffer::end
    #[inline]
    pub fn begin(&self) -> u64 {
        if self.enabled {
            elapsed_ns(self.origin)
        } else {
            0
        }
    }

    /// Close a span opened with [`begin`]. No-op when disabled.
    ///
    /// [`begin`]: SpanBuffer::begin
    #[inline]
    pub fn end(&mut self, name: &'static str, index: u32, start_ns: u64) {
        if self.enabled {
            let end_ns = elapsed_ns(self.origin);
            self.spans.push(Span {
                name,
                index,
                start_ns,
                end_ns,
            });
        }
    }

    /// Push a span measured externally (e.g. on a shard thread) against
    /// this buffer's origin. No-op when disabled.
    pub fn push(&mut self, name: &'static str, index: u32, start_ns: u64, end_ns: u64) {
        if self.enabled {
            self.spans.push(Span {
                name,
                index,
                start_ns,
                end_ns,
            });
        }
    }

    /// Recorded spans so far.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Move the recorded spans out (the buffer keeps no capacity; only
    /// called once per traced query, off the hot path).
    pub fn take(&mut self) -> Vec<Span> {
        std::mem::take(&mut self.spans)
    }
}

#[inline]
fn elapsed_ns(origin: Instant) -> u64 {
    u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut b = SpanBuffer::new();
        let s = b.begin();
        assert_eq!(s, 0);
        b.end("parse", 0, s);
        b.push("expand", 3, 10, 20);
        assert!(b.spans().is_empty());
    }

    #[test]
    fn enabled_buffer_records_ordered_spans() {
        let mut b = SpanBuffer::new();
        b.enable();
        let s = b.begin();
        std::thread::sleep(std::time::Duration::from_millis(1));
        b.end("parse", 0, s);
        b.push("expand", 1, 5, 9);
        let spans = b.take();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "parse");
        assert!(spans[0].end_ns >= spans[0].start_ns);
        assert!(spans[0].end_ns >= 1_000_000);
        assert_eq!(
            spans[1],
            Span {
                name: "expand",
                index: 1,
                start_ns: 5,
                end_ns: 9
            }
        );
        // enable() resets for reuse.
        b.enable();
        assert!(b.spans().is_empty());
    }
}
