//! Log-linear (HDR-style) latency histograms.
//!
//! Values are non-negative integer "ticks" (the serving layer records
//! nanoseconds). The bucket layout is fixed at compile time: values
//! below [`SUB_BUCKETS`] get exact unit buckets, and every power-of-two
//! octave above that is split into [`SUB_BUCKETS`] linear sub-buckets,
//! bounding relative error by `1 / SUB_BUCKETS` (6.25%). The layout is
//! identical for every histogram, so two histograms merge by bucket-wise
//! addition and a merged histogram answers quantile queries exactly as
//! if every sample had been recorded into one instrument — the property
//! the shard-merge proptest pins down.
//!
//! Recording is a single `fetch_add` on the bucket plus one on the sum;
//! there are no locks anywhere.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bits of sub-bucket resolution per octave.
const SUB_BITS: u32 = 4;

/// Linear sub-buckets per octave (and exact unit buckets below it).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Total bucket count: unit buckets plus `SUB_BUCKETS` per octave for
/// octaves `SUB_BITS..64`.
pub const BUCKET_COUNT: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Bucket index for a value. Exact below `SUB_BUCKETS`; log-linear above.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let top = 63 - v.leading_zeros();
        let group = (top - SUB_BITS) as usize;
        let offset = (v >> group) as usize - SUB_BUCKETS;
        SUB_BUCKETS + group * SUB_BUCKETS + offset
    }
}

/// Inclusive upper bound of bucket `i` (saturating for the last octave).
pub fn bucket_upper_bound(i: usize) -> u64 {
    debug_assert!(i < BUCKET_COUNT);
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let group = (i - SUB_BUCKETS) / SUB_BUCKETS;
        let offset = (i - SUB_BUCKETS) % SUB_BUCKETS;
        let upper = ((SUB_BUCKETS + offset + 1) as u128) << group;
        u64::try_from(upper - 1).unwrap_or(u64::MAX)
    }
}

/// Default export ladder for nanosecond latency histograms: native bucket
/// boundaries of the form `2^k - 1` every two octaves, spanning ~4 µs to
/// ~17 s. Because each rung is an exact bucket edge, the cumulative
/// Prometheus `_bucket` counts are exact, not interpolated.
pub fn latency_boundaries() -> Vec<u64> {
    (12..=34).step_by(2).map(|k| (1u64 << k) - 1).collect()
}

/// A fixed-layout concurrent histogram.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKET_COUNT]>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram (~8 KiB of buckets).
    pub fn new() -> Histogram {
        let buckets: Vec<AtomicU64> = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKET_COUNT]> = buckets
            .into_boxed_slice()
            .try_into()
            .map_err(|_| ())
            .expect("layout");
        Histogram {
            buckets,
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration in nanosecond ticks.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the buckets, for quantiles and export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count())
            .field("sum", &snap.sum())
            .finish()
    }
}

/// An owned copy of a histogram's state. Mergeable; answers quantile and
/// cumulative-count queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// An all-zero snapshot, useful as a merge accumulator.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; BUCKET_COUNT],
            sum: 0,
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all recorded values, in ticks.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Bucket-wise addition; the layout is fixed so this is exact.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.sum += other.sum;
    }

    /// Number of samples with value `<= bound`. Exact whenever `bound`
    /// is a bucket upper bound (all `2^k - 1` are, for `k >= SUB_BITS`);
    /// otherwise conservatively excludes the straddling bucket.
    pub fn cumulative_le(&self, bound: u64) -> u64 {
        let mut total = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if bucket_upper_bound(i) > bound {
                break;
            }
            total += c;
        }
        total
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the sample of rank `ceil(q * count)`. Returns 0 for an
    /// empty snapshot. Relative error is bounded by the bucket width
    /// (≤ 6.25%).
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKET_COUNT - 1)
    }

    /// Raw bucket counts (fixed layout, see [`bucket_upper_bound`]).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn index_and_bounds_agree() {
        for v in (0u64..4096).chain([(1 << 40) - 3, 1 << 40, u64::MAX - 1, u64::MAX]) {
            let i = bucket_index(v);
            assert!(i < BUCKET_COUNT, "index {i} out of range for {v}");
            assert!(
                bucket_upper_bound(i) >= v,
                "upper bound {} below value {v}",
                bucket_upper_bound(i)
            );
            if i > 0 {
                assert!(bucket_upper_bound(i - 1) < v);
            }
        }
    }

    #[test]
    fn upper_bounds_are_strictly_monotone() {
        for i in 1..BUCKET_COUNT {
            assert!(bucket_upper_bound(i - 1) < bucket_upper_bound(i));
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(snap.quantile((v + 1) as f64 / SUB_BUCKETS as f64), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Values are increasing, so quantile(1.0) always lands in the
        // bucket of the most recent recording.
        let h = Histogram::new();
        for v in [100u64, 1_000, 10_000, 123_456_789, 1 << 33] {
            h.record(v);
            let q = h.snapshot().quantile(1.0);
            assert!(q >= v);
            assert!((q - v) as f64 <= v as f64 / SUB_BUCKETS as f64 + 1.0);
        }
    }

    #[test]
    fn cumulative_le_exact_on_boundaries() {
        let h = Histogram::new();
        for v in [10u64, 100, 5_000, 70_000, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.cumulative_le((1 << 7) - 1), 2); // <=127: 10, 100
        assert_eq!(snap.cumulative_le((1 << 13) - 1), 3); // <=8191: +5000
        assert_eq!(snap.cumulative_le(u64::MAX), 5);
        // Ladder rungs never decrease.
        let mut prev = 0;
        for b in latency_boundaries() {
            let c = snap.cumulative_le(b);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn latency_ladder_rungs_are_native_bucket_edges() {
        for b in latency_boundaries() {
            let i = bucket_index(b);
            assert_eq!(bucket_upper_bound(i), b, "rung {b} is not a bucket edge");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn merged_shards_match_single_histogram(
            values in proptest::collection::vec(0u64..=1 << 36, 1..400),
            shards in 2usize..6,
        ) {
            let single = Histogram::new();
            let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
            for (i, &v) in values.iter().enumerate() {
                single.record(v);
                parts[i % shards].record(v);
            }
            let mut merged = HistogramSnapshot::empty();
            for p in &parts {
                merged.merge(&p.snapshot());
            }
            let solo = single.snapshot();
            prop_assert_eq!(merged.count(), solo.count());
            prop_assert_eq!(merged.sum(), solo.sum());
            for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                prop_assert_eq!(merged.quantile(q), solo.quantile(q));
            }
            for b in latency_boundaries() {
                prop_assert_eq!(merged.cumulative_le(b), solo.cumulative_le(b));
            }
            prop_assert_eq!(&merged, &solo);
        }
    }
}
