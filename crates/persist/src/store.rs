//! The durable store: a data directory owning snapshot bundles and the
//! write-ahead log, with crash recovery and background compaction.
//!
//! ## Directory layout
//!
//! ```text
//! data-dir/
//!   snapshot-00000000000000000042.banks   full-system bundle at epoch 42
//!   wal.log                               frames for epochs > 42
//! ```
//!
//! Snapshot files embed their epoch zero-padded so lexicographic order
//! is epoch order. Normally one snapshot exists; a crash between
//! "write new snapshot" and "prune old ones" can briefly leave two —
//! recovery prefers the newest loadable one and compaction re-prunes.
//!
//! ## Write path
//!
//! [`PersistentStore::wal_hook`] plugs into
//! [`banks_ingest::SnapshotPublisher`]: every validated batch is
//! appended (and fsync'd, unless disabled) *before* the publication
//! promotes, so an acked ingest survives `kill -9`. After each publish
//! the serving layer calls [`PersistentStore::maybe_compact`]; once the
//! WAL crosses a size or batch threshold, a background thread writes a
//! fresh bundle at the current epoch, rewrites the WAL to only the
//! frames past it, and prunes superseded snapshot files.
//!
//! ## Recovery
//!
//! [`PersistentStore::open`] loads the newest valid snapshot, replays
//! WAL frames past its epoch through the ordinary publish machinery
//! (identical validation, identical derived state), truncates a torn
//! tail frame, and hands back the recovered `Arc<Banks>` plus its epoch.
//! A directory with durable state but no loadable snapshot refuses to
//! open ([`PersistError::NoValidSnapshot`]) instead of silently starting
//! empty.

use crate::bundle;
use crate::error::{PersistError, PersistResult};
use crate::wal::{scan_wal, WalWriter, WAL_FILE};
use banks_core::{Banks, BanksConfig};
use banks_ingest::{DeltaBatch, DurabilityHook, SnapshotPublisher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

/// A compaction job: the snapshot to persist and its epoch.
type CompactJob = (Arc<Banks>, u64);
type CompactSender = SyncSender<CompactJob>;
type CompactReceiver = Receiver<CompactJob>;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for the store.
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// Fsync the WAL on every append (and every snapshot/rename). On by
    /// default — turning it off trades the crash guarantee for latency
    /// (data survives process death but not power loss).
    pub fsync: bool,
    /// Roll a fresh snapshot once the WAL exceeds this many bytes.
    pub compact_wal_bytes: u64,
    /// … or this many batches, whichever comes first.
    pub compact_wal_batches: u64,
    /// Open snapshots *paged*: serve postings lazily off the bundle
    /// file and keep decoded graph segments under this many bytes
    /// ([`bundle::open_bundle_paged`]) instead of decoding the whole
    /// bundle into RAM. `None` (the default) loads fully. A version-1
    /// bundle cannot be paged; recovery falls back to a full load of it
    /// with a warning, and the next compaction rewrites it as v2.
    pub paged_budget: Option<u64>,
}

impl Default for PersistOptions {
    fn default() -> Self {
        PersistOptions {
            fsync: true,
            compact_wal_bytes: 8 * 1024 * 1024,
            compact_wal_batches: 256,
            paged_budget: None,
        }
    }
}

/// Counters for `/stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistStats {
    /// Bytes currently in the WAL.
    pub wal_bytes: u64,
    /// Whole batches currently in the WAL.
    pub wal_batches: u64,
    /// Compactions completed since the store opened.
    pub compactions: u64,
    /// Epoch of the most recent snapshot roll (initial snapshot
    /// included), if any.
    pub last_compaction_epoch: Option<u64>,
    /// Epoch recovered at open, when the directory held state.
    pub recovered_epoch: Option<u64>,
    /// WAL batches replayed during recovery.
    pub replayed_batches: u64,
    /// Torn-tail bytes truncated during recovery.
    pub truncated_wal_bytes: u64,
    /// Whether appends fsync.
    pub fsync: bool,
    /// Completed append fsyncs since the store opened.
    pub fsync_count: u64,
    /// Total nanoseconds spent inside append fsyncs — with
    /// `fsync_count`, exported as the fsync-latency `_sum`/`_count`
    /// pair on `/metrics`.
    pub fsync_nanos: u64,
}

/// What [`PersistentStore::open`] found.
#[derive(Debug)]
pub struct Recovery {
    /// The recovered state, or `None` for a fresh (empty) directory —
    /// the caller builds initial state and calls
    /// [`PersistentStore::save_snapshot`] with it.
    pub banks: Option<Arc<Banks>>,
    /// The recovered epoch (0 for a fresh directory).
    pub epoch: u64,
    /// WAL batches replayed past the snapshot.
    pub replayed_batches: usize,
    /// Torn-tail bytes truncated from the WAL.
    pub truncated_wal_bytes: u64,
    /// Non-fatal findings (e.g. a corrupt older snapshot that was
    /// skipped in favor of an older-still valid one).
    pub warnings: Vec<String>,
}

/// Epoch-stamped snapshot file name (zero-padded so lexicographic order
/// is epoch order). Public so a replication bootstrap can drop a
/// downloaded bundle into a fresh data directory under the exact name
/// recovery expects.
pub fn snapshot_file(epoch: u64) -> String {
    format!("snapshot-{epoch:020}.banks")
}

/// Parse an epoch out of a snapshot file name.
fn snapshot_epoch(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?
        .strip_suffix(".banks")?
        .parse()
        .ok()
}

struct Inner {
    dir: PathBuf,
    options: PersistOptions,
    wal: Mutex<WalWriter>,
    compactions: AtomicU64,
    /// `u64::MAX` = never.
    last_compaction_epoch: AtomicU64,
    compacting: AtomicBool,
    recovered_epoch: Option<u64>,
    replayed_batches: u64,
    truncated_wal_bytes: u64,
    /// Highest epoch whose batch is durable (on the WAL or inside a
    /// rolled snapshot). Replication long-polls block on this: the pair
    /// below is a `(Mutex<u64>, Condvar)` notified on every append.
    durable_epoch: Mutex<u64>,
    durable_advanced: Condvar,
}

impl Inner {
    fn advance_durable_epoch(&self, epoch: u64) {
        let mut durable = self.durable_epoch.lock().expect("durable epoch lock");
        if epoch > *durable {
            *durable = epoch;
            self.durable_advanced.notify_all();
        }
    }
}

impl Inner {
    /// Write the bundle for `(banks, epoch)`, drop superseded WAL frames,
    /// and prune older snapshot files. The expensive bundle write happens
    /// without any lock; only the WAL rewrite holds the append mutex.
    fn roll_snapshot(&self, banks: &Banks, epoch: u64) -> PersistResult<()> {
        bundle::save_bundle(banks, epoch, &self.dir.join(snapshot_file(epoch)))?;
        self.finish_roll(epoch)
    }

    /// The post-write half of a roll: the snapshot file for `epoch`
    /// already sits in the directory (just written, or dropped in by a
    /// streaming bootstrap) — compact the WAL past it, prune older
    /// snapshots, and advance the durable epoch.
    fn finish_roll(&self, epoch: u64) -> PersistResult<()> {
        // Drop superseded frames. The writer's in-memory frame index
        // makes this a raw copy of the surviving byte range, so the
        // append mutex — which every ingest ack needs — is held only
        // for that short rewrite, never for a re-read + re-parse of
        // the whole log.
        self.wal.lock().expect("wal lock").compact(epoch)?;
        // Prune strictly older snapshots; newer ones (a concurrent roll
        // racing ahead) stay.
        for entry in std::fs::read_dir(&self.dir)?.filter_map(|e| e.ok()) {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(e) = snapshot_epoch(name) {
                if e < epoch {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        banks_util::fs::sync_dir(&self.dir);
        self.last_compaction_epoch.store(epoch, Ordering::Release);
        // A rolled snapshot is durability too: a follower bootstrapping a
        // fresh directory from a downloaded bundle lands here without a
        // single WAL append, and its durable epoch must jump to the
        // bundle's. (On the ingest path this is a no-op — the epoch was
        // already appended.)
        self.advance_durable_epoch(epoch);
        Ok(())
    }
}

/// A live data directory. Create with [`PersistentStore::open`]; share
/// as `Arc` between the ingest path (WAL hook + compaction trigger) and
/// the stats endpoint.
pub struct PersistentStore {
    inner: Arc<Inner>,
    compact_tx: CompactSender,
    compactor: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for PersistentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentStore")
            .field("dir", &self.inner.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PersistentStore {
    /// Open (or create) the data directory at `dir` and recover whatever
    /// state it holds. `base_config` supplies the non-persisted config
    /// sections (matching/search knobs); the bundle's ranking and graph
    /// parameters override it on load.
    pub fn open(
        dir: &Path,
        base_config: &BanksConfig,
        options: PersistOptions,
    ) -> PersistResult<(Arc<PersistentStore>, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let mut warnings = Vec::new();

        // Newest loadable snapshot wins.
        let mut snapshot_files: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let epoch = snapshot_epoch(name.to_str()?)?;
                Some((epoch, e.path()))
            })
            .collect();
        snapshot_files.sort_by_key(|&(epoch, _)| std::cmp::Reverse(epoch));
        let snapshots_tried = snapshot_files.len();
        let mut loaded: Option<(Banks, u64)> = None;
        for (epoch, path) in &snapshot_files {
            let attempt = match options.paged_budget {
                Some(budget) => {
                    match bundle::open_bundle_paged(path, budget as usize, base_config) {
                        Ok(ok) => Ok(ok),
                        Err(PersistError::BadVersion(1)) => {
                            warnings.push(format!(
                                "{}: version-1 bundle cannot be paged — loading it fully; \
                                 the next compaction rewrites it as v2",
                                path.display()
                            ));
                            bundle::load_bundle(path, base_config)
                        }
                        Err(e) => Err(e),
                    }
                }
                None => bundle::load_bundle(path, base_config),
            };
            match attempt {
                Ok((banks, meta)) => {
                    if meta.epoch != *epoch {
                        warnings.push(format!(
                            "{}: file name says epoch {epoch} but the bundle is epoch {} — using the bundle's",
                            path.display(),
                            meta.epoch
                        ));
                    }
                    loaded = Some((banks, meta.epoch));
                    break;
                }
                Err(e) => {
                    warnings.push(format!("skipping corrupt snapshot {}: {e}", path.display()))
                }
            }
        }

        let wal_path = dir.join(WAL_FILE);
        let scan = scan_wal(&wal_path)?;
        if scan.torn_bytes > 0 {
            warnings.push(format!(
                "truncating {} torn byte(s) at the WAL tail (un-acked partial append)",
                scan.torn_bytes
            ));
        }

        let (banks, epoch, replayed) = match loaded {
            None if snapshots_tried == 0 && scan.frames.is_empty() => (None, 0, 0),
            None => {
                return Err(PersistError::NoValidSnapshot {
                    snapshots_tried,
                    wal_batches: scan.frames.len(),
                })
            }
            Some((banks, snap_epoch)) => {
                // Replay forward through the ordinary publish machinery.
                let mut publisher = SnapshotPublisher::with_epoch(Arc::new(banks), snap_epoch);
                let mut replayed = 0usize;
                for frame in &scan.frames {
                    if frame.epoch <= snap_epoch {
                        continue; // superseded by the snapshot, awaiting pruning
                    }
                    if frame.epoch != publisher.epoch() + 1 {
                        return Err(PersistError::EpochGap {
                            expected: publisher.epoch() + 1,
                            found: frame.epoch,
                        });
                    }
                    publisher.publish(&frame.batch, None)?;
                    replayed += 1;
                }
                let epoch = publisher.epoch();
                (Some(publisher.current()), epoch, replayed)
            }
        };

        let wal = WalWriter::open(&wal_path, &scan, options.fsync)?;
        let inner = Arc::new(Inner {
            dir: dir.to_path_buf(),
            options,
            wal: Mutex::new(wal),
            compactions: AtomicU64::new(0),
            last_compaction_epoch: AtomicU64::new(u64::MAX),
            compacting: AtomicBool::new(false),
            recovered_epoch: banks.as_ref().map(|_| epoch),
            replayed_batches: replayed as u64,
            truncated_wal_bytes: scan.torn_bytes,
            durable_epoch: Mutex::new(epoch),
            durable_advanced: Condvar::new(),
        });

        // The background compactor: at most one roll in flight, expensive
        // bundle writes off the ingest path.
        let (compact_tx, compact_rx): (CompactSender, CompactReceiver) = sync_channel(1);
        let worker = Arc::clone(&inner);
        let compactor = std::thread::Builder::new()
            .name("banks-persist-compact".into())
            .spawn(move || {
                while let Ok((banks, epoch)) = compact_rx.recv() {
                    let result = worker.roll_snapshot(&banks, epoch);
                    match result {
                        Ok(()) => {
                            worker.compactions.fetch_add(1, Ordering::Release);
                        }
                        Err(e) => {
                            banks_util::log_error!(
                                "persist",
                                "background compaction at epoch {epoch} failed: {e}"
                            );
                        }
                    }
                    worker.compacting.store(false, Ordering::Release);
                }
            })
            .expect("spawn compactor");

        let store = Arc::new(PersistentStore {
            inner,
            compact_tx,
            compactor: Mutex::new(Some(compactor)),
        });
        let recovery = Recovery {
            banks,
            epoch,
            replayed_batches: replayed,
            truncated_wal_bytes: scan.torn_bytes,
            warnings,
        };
        Ok((store, recovery))
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Append one validated batch to the WAL (the durability point).
    /// Wakes any replication long-poll waiting on this epoch.
    pub fn append_wal(&self, epoch: u64, batch: &DeltaBatch) -> PersistResult<()> {
        let mut wal = self.inner.wal.lock().expect("wal lock");
        wal.append(epoch, batch)?;
        // Advance durable *while still holding the WAL lock* (lock
        // order wal → durable, same as `wal_since`): a reader must
        // never observe a frame whose epoch is ahead of the durable
        // epoch, or the feed would stamp `X-Banks-Epoch` behind the
        // frames it just shipped.
        self.inner.advance_durable_epoch(epoch);
        Ok(())
    }

    /// Highest epoch durably recorded in this directory (recovered epoch
    /// at open, advanced by every WAL append).
    pub fn durable_epoch(&self) -> u64 {
        *self.inner.durable_epoch.lock().expect("durable epoch lock")
    }

    /// Block until the durable epoch exceeds `from_epoch` or `deadline`
    /// passes; returns the durable epoch either way. This is the leader
    /// side of a WAL long-poll: a follower that is fully caught up parks
    /// here instead of busy-polling an empty range.
    pub fn wait_past_epoch(&self, from_epoch: u64, deadline: Duration) -> u64 {
        let durable = self.inner.durable_epoch.lock().expect("durable epoch lock");
        let (guard, _timeout) = self
            .inner
            .durable_advanced
            .wait_timeout_while(durable, deadline, |&mut e| e <= from_epoch)
            .expect("durable epoch lock");
        *guard
    }

    /// The replication feed: raw on-disk bytes of every WAL frame with
    /// `epoch > from_epoch`, or `None` when compaction already dropped a
    /// frame in that range — the caller must bootstrap from a snapshot
    /// bundle instead ([`PersistentStore::newest_snapshot`]).
    ///
    /// An empty byte vector means the follower is caught up (every
    /// durable epoch ≤ `from_epoch`); a request *ahead* of the durable
    /// epoch is also just "caught up" — frames appear when writes do.
    pub fn wal_since(&self, from_epoch: u64) -> PersistResult<Option<Vec<u8>>> {
        let mut wal = self.inner.wal.lock().expect("wal lock");
        let bytes = wal.frames_since(from_epoch)?;
        // Read the durable epoch *under* the WAL lock (append takes
        // wal → durable in that order), so "empty range but durable is
        // ahead" can only mean compaction dropped the frames — a gap,
        // not a caught-up follower.
        let durable = *self.inner.durable_epoch.lock().expect("durable epoch lock");
        drop(wal);
        match bytes {
            Some(bytes) if bytes.is_empty() && durable > from_epoch => Ok(None),
            other => Ok(other),
        }
    }

    /// Newest snapshot bundle in the directory: `(epoch, bytes)`.
    /// Retries the list-then-read race against the background pruner (a
    /// listed file may be deleted before the read lands).
    pub fn newest_snapshot(&self) -> PersistResult<(u64, Vec<u8>)> {
        for _ in 0..8 {
            let newest = std::fs::read_dir(&self.inner.dir)?
                .filter_map(|e| e.ok())
                .filter_map(|e| {
                    let name = e.file_name();
                    let epoch = snapshot_epoch(name.to_str()?)?;
                    Some((epoch, e.path()))
                })
                .max_by_key(|&(epoch, _)| epoch);
            let Some((epoch, path)) = newest else {
                return Err(PersistError::NoValidSnapshot {
                    snapshots_tried: 0,
                    wal_batches: 0,
                });
            };
            match std::fs::read(&path) {
                Ok(bytes) => return Ok((epoch, bytes)),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Err(PersistError::Malformed(
            "snapshot files churned faster than they could be read".into(),
        ))
    }

    /// Synchronously write a snapshot bundle for `(banks, epoch)`,
    /// dropping superseded WAL frames and pruning older snapshot files.
    /// Used for the initial snapshot of a fresh directory and by tests;
    /// the ingest path uses [`PersistentStore::maybe_compact`] instead.
    pub fn save_snapshot(&self, banks: &Banks, epoch: u64) -> PersistResult<()> {
        self.inner.roll_snapshot(banks, epoch)
    }

    /// Adopt a snapshot file that was placed in the directory *without*
    /// going through [`PersistentStore::save_snapshot`] — a replication
    /// bootstrap streams the leader's bundle straight to
    /// `snapshot-<epoch>.banks` and calls this to finish the roll (WAL
    /// compaction past the epoch, pruning, durable-epoch advance),
    /// skipping the decode + re-encode a `save_snapshot` would cost.
    pub fn adopt_snapshot(&self, epoch: u64) -> PersistResult<()> {
        let path = self.inner.dir.join(snapshot_file(epoch));
        if !path.exists() {
            return Err(PersistError::Malformed(format!(
                "adopt_snapshot: {} does not exist",
                path.display()
            )));
        }
        self.inner.finish_roll(epoch)
    }

    /// Hand `(banks, epoch)` to the background compactor when the WAL
    /// has crossed a threshold. Returns whether a compaction was
    /// scheduled. Cheap: a counter read and a bounded channel send.
    pub fn maybe_compact(&self, banks: &Arc<Banks>, epoch: u64) -> bool {
        let (bytes, batches) = {
            let wal = self.inner.wal.lock().expect("wal lock");
            (wal.bytes(), wal.batches())
        };
        if bytes < self.inner.options.compact_wal_bytes
            && batches < self.inner.options.compact_wal_batches
        {
            return false;
        }
        if self.inner.compacting.swap(true, Ordering::AcqRel) {
            return false; // one roll at a time
        }
        if self
            .compact_tx
            .try_send((Arc::clone(banks), epoch))
            .is_err()
        {
            self.inner.compacting.store(false, Ordering::Release);
            return false;
        }
        true
    }

    /// Block until no compaction is in flight (tests and shutdown paths).
    pub fn quiesce(&self) {
        while self.inner.compacting.load(Ordering::Acquire) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PersistStats {
        let (wal_bytes, wal_batches, fsync_count, fsync_nanos) = {
            let wal = self.inner.wal.lock().expect("wal lock");
            let (fsync_count, fsync_nanos) = wal.fsync_totals();
            (wal.bytes(), wal.batches(), fsync_count, fsync_nanos)
        };
        let last = self.inner.last_compaction_epoch.load(Ordering::Acquire);
        PersistStats {
            wal_bytes,
            wal_batches,
            compactions: self.inner.compactions.load(Ordering::Acquire),
            last_compaction_epoch: (last != u64::MAX).then_some(last),
            recovered_epoch: self.inner.recovered_epoch,
            replayed_batches: self.inner.replayed_batches,
            truncated_wal_bytes: self.inner.truncated_wal_bytes,
            fsync: self.inner.options.fsync,
            fsync_count,
            fsync_nanos,
        }
    }

    /// A [`DurabilityHook`] wired to this store, for
    /// [`SnapshotPublisher::set_durability_hook`]: appends the batch to
    /// the WAL (fsync'd per the options) before the publish promotes.
    pub fn wal_hook(self: &Arc<Self>) -> Box<dyn DurabilityHook> {
        struct Hook(Arc<PersistentStore>);
        impl DurabilityHook for Hook {
            fn persist_batch(&mut self, epoch: u64, batch: &DeltaBatch) -> Result<(), String> {
                self.0.append_wal(epoch, batch).map_err(|e| e.to_string())
            }
        }
        Box::new(Hook(Arc::clone(self)))
    }
}

impl Drop for PersistentStore {
    fn drop(&mut self) {
        // Close the channel so the compactor drains and exits, then join
        // it — a half-written roll is harmless (atomic rename), but the
        // join keeps test directories quiescent before cleanup.
        let (dummy_tx, _) = sync_channel(1);
        drop(std::mem::replace(&mut self.compact_tx, dummy_tx));
        if let Some(handle) = self.compactor.lock().expect("compactor lock").take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_ingest::TupleOp;
    use banks_storage::{ColumnType, Database, RelationSchema, Value};

    fn dblp() -> Database {
        let mut db = Database::new("dblp");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["AuthorId", "PaperId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert(
            "Author",
            vec![Value::text("MohanC"), Value::text("C. Mohan")],
        )
        .unwrap();
        db.insert(
            "Paper",
            vec![Value::text("P1"), Value::text("Transaction Recovery")],
        )
        .unwrap();
        db.insert("Writes", vec![Value::text("MohanC"), Value::text("P1")])
            .unwrap();
        db
    }

    fn author_batch(i: usize) -> DeltaBatch {
        DeltaBatch {
            ops: vec![
                TupleOp::Insert {
                    relation: "Author".into(),
                    values: vec![
                        Value::text(format!("A{i}")),
                        Value::text(format!("Recovered Author {i}")),
                    ],
                },
                TupleOp::Insert {
                    relation: "Writes".into(),
                    values: vec![Value::text(format!("A{i}")), Value::text("P1")],
                },
            ],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "banks_store_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_publisher(
        store: &Arc<PersistentStore>,
        banks: Arc<Banks>,
        epoch: u64,
    ) -> SnapshotPublisher {
        let mut p = SnapshotPublisher::with_epoch(banks, epoch);
        p.set_durability_hook(store.wal_hook());
        p
    }

    #[test]
    fn fresh_dir_then_crash_then_recover_exact_state() {
        let dir = tmp_dir("crash");
        let config = BanksConfig::default();
        let banks = Arc::new(Banks::new(dblp()).unwrap());

        // First life: init, ingest 3 batches, *no* snapshot after — then
        // "crash" (drop everything without graceful teardown).
        let expectation = {
            let (store, recovery) =
                PersistentStore::open(&dir, &config, PersistOptions::default()).unwrap();
            assert!(recovery.banks.is_none(), "fresh dir");
            store.save_snapshot(&banks, 0).unwrap();
            let mut publisher = durable_publisher(&store, Arc::clone(&banks), 0);
            let mut last = None;
            for i in 0..3 {
                last = Some(publisher.publish(&author_batch(i), None).unwrap());
            }
            let last = last.unwrap();
            assert_eq!(last.info.epoch, 3);
            let answers = last.banks.search("recovered").unwrap();
            assert_eq!(store.stats().wal_batches, 3);
            (answers.len(), last.banks)
        };

        // Second life: recovery must replay the 3 batches to epoch 3 and
        // serve identical results.
        let (store, recovery) =
            PersistentStore::open(&dir, &config, PersistOptions::default()).unwrap();
        assert_eq!(recovery.epoch, 3);
        assert_eq!(recovery.replayed_batches, 3);
        let recovered = recovery.banks.expect("state recovered");
        let answers = recovered.search("recovered").unwrap();
        assert_eq!(answers.len(), expectation.0);
        let live = expectation.1.search("recovered").unwrap();
        for (a, b) in live.iter().zip(&answers) {
            assert_eq!(a.tree.signature(), b.tree.signature());
            assert!((a.relevance - b.relevance).abs() < 1e-12);
        }
        // Graph and index are bit-identical to the pre-crash state.
        let (g, h) = (
            expectation.1.tuple_graph().graph(),
            recovered.tuple_graph().graph(),
        );
        assert_eq!(g.node_count(), h.node_count());
        assert_eq!(g.edge_count(), h.edge_count());
        for v in g.nodes() {
            assert_eq!(g.node_weight(v), h.node_weight(v));
            assert_eq!(
                g.out_edges(v).collect::<Vec<_>>(),
                h.out_edges(v).collect::<Vec<_>>()
            );
        }
        let stats = store.stats();
        assert_eq!(stats.recovered_epoch, Some(3));
        assert_eq!(stats.replayed_batches, 3);
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let config = BanksConfig::default();
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        {
            let (store, _) =
                PersistentStore::open(&dir, &config, PersistOptions::default()).unwrap();
            store.save_snapshot(&banks, 0).unwrap();
            let mut publisher = durable_publisher(&store, Arc::clone(&banks), 0);
            publisher.publish(&author_batch(0), None).unwrap();
            publisher.publish(&author_batch(1), None).unwrap();
        }
        // Tear the tail: chop 5 bytes off the last frame.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();

        let (store, recovery) =
            PersistentStore::open(&dir, &config, PersistOptions::default()).unwrap();
        assert_eq!(recovery.epoch, 1, "only the whole frame replays");
        assert!(recovery.truncated_wal_bytes > 0);
        assert!(
            recovery.warnings.iter().any(|w| w.contains("torn")),
            "{:?}",
            recovery.warnings
        );
        // The file itself was truncated back to the valid prefix.
        let rescanned = scan_wal(&wal_path).unwrap();
        assert_eq!(rescanned.frames.len(), 1);
        assert_eq!(rescanned.torn_bytes, 0);
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_rolls_snapshot_prunes_and_preserves_recovery() {
        let dir = tmp_dir("compact");
        let config = BanksConfig::default();
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        let options = PersistOptions {
            compact_wal_batches: 2,
            ..PersistOptions::default()
        };
        {
            let (store, _) = PersistentStore::open(&dir, &config, options.clone()).unwrap();
            store.save_snapshot(&banks, 0).unwrap();
            let mut publisher = durable_publisher(&store, Arc::clone(&banks), 0);
            for i in 0..5 {
                let published = publisher.publish(&author_batch(i), None).unwrap();
                store.maybe_compact(&published.banks, published.info.epoch);
                store.quiesce();
            }
            let stats = store.stats();
            assert!(stats.compactions >= 1, "{stats:?}");
            assert!(
                stats.wal_batches < 5,
                "compaction dropped superseded frames: {stats:?}"
            );
            assert!(stats.last_compaction_epoch.unwrap() > 0);
        }
        // Exactly one snapshot file survives pruning…
        let snapshots: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("snapshot-"))
            .collect();
        assert_eq!(snapshots.len(), 1, "{snapshots:?}");
        // …and recovery lands on epoch 5 regardless of where the roll fell.
        let (store, recovery) = PersistentStore::open(&dir, &config, options).unwrap();
        assert_eq!(recovery.epoch, 5);
        let recovered = recovery.banks.unwrap();
        assert_eq!(recovered.search("recovered").unwrap().len(), 5);
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paged_open_recovers_and_replays_wal() {
        let dir = tmp_dir("paged");
        let config = BanksConfig::default();
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        {
            let (store, _) =
                PersistentStore::open(&dir, &config, PersistOptions::default()).unwrap();
            store.save_snapshot(&banks, 0).unwrap();
            let mut publisher = durable_publisher(&store, Arc::clone(&banks), 0);
            for i in 0..3 {
                publisher.publish(&author_batch(i), None).unwrap();
            }
        }
        let options = PersistOptions {
            paged_budget: Some(1 << 20),
            ..PersistOptions::default()
        };
        let (store, recovery) = PersistentStore::open(&dir, &config, options).unwrap();
        assert_eq!(recovery.epoch, 3);
        let paged = recovery.banks.unwrap();
        assert!(paged.text_index().is_lazy() || recovery.replayed_batches > 0);
        // Same answers as an ordinary full-load recovery.
        let (store2, recovery2) =
            PersistentStore::open(&dir, &config, PersistOptions::default()).unwrap();
        let full = recovery2.banks.unwrap();
        let (a, b) = (
            paged.search("recovered").unwrap(),
            full.search("recovered").unwrap(),
        );
        assert_eq!(a.len(), 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tree.signature(), y.tree.signature());
            assert!((x.relevance - y.relevance).abs() < 1e-12);
        }
        drop(store);
        drop(store2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_older_valid_one() {
        let dir = tmp_dir("fallback");
        let config = BanksConfig::default();
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        {
            let (store, _) =
                PersistentStore::open(&dir, &config, PersistOptions::default()).unwrap();
            store.save_snapshot(&banks, 0).unwrap();
        }
        // Plant a corrupt "newer" snapshot beside the valid epoch-0 one.
        std::fs::write(dir.join(snapshot_file(9)), b"BNKSBNDLgarbage").unwrap();
        let (store, recovery) =
            PersistentStore::open(&dir, &config, PersistOptions::default()).unwrap();
        assert_eq!(recovery.epoch, 0);
        assert!(recovery.banks.is_some());
        assert!(
            recovery.warnings.iter().any(|w| w.contains("corrupt")),
            "{:?}",
            recovery.warnings
        );
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_snapshots_corrupt_refuses_to_start_fresh() {
        let dir = tmp_dir("refuse");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(snapshot_file(2)), b"garbage").unwrap();
        let err = PersistentStore::open(&dir, &BanksConfig::default(), PersistOptions::default())
            .unwrap_err();
        assert!(matches!(err, PersistError::NoValidSnapshot { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epoch_gap_in_wal_is_a_typed_error() {
        let dir = tmp_dir("gap");
        let config = BanksConfig::default();
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        {
            let (store, _) =
                PersistentStore::open(&dir, &config, PersistOptions::default()).unwrap();
            store.save_snapshot(&banks, 0).unwrap();
            // Append epochs 1 then 3 — a gap no replay can bridge.
            store.append_wal(1, &author_batch(0)).unwrap();
            store.append_wal(3, &author_batch(1)).unwrap();
        }
        let err = PersistentStore::open(&dir, &config, PersistOptions::default()).unwrap_err();
        assert!(
            matches!(
                err,
                PersistError::EpochGap {
                    expected: 2,
                    found: 3
                }
            ),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
