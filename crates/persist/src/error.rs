//! Error types for the durability layer.

use banks_core::BanksError;
use banks_graph::SnapshotError;
use banks_ingest::IngestError;
use banks_pager::PagerError;
use banks_storage::StorageError;
use std::fmt;
use std::io;

/// Result alias for persistence operations.
pub type PersistResult<T> = Result<T, PersistError>;

/// Errors raised while writing, loading, or recovering durable state.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not the expected file kind (bad magic bytes).
    BadMagic {
        /// Which artifact was being read (bundle, section, WAL frame).
        what: &'static str,
    },
    /// Artifact written by an incompatible format version.
    BadVersion(u32),
    /// Payload corrupted: the trailing checksum does not match.
    BadChecksum,
    /// Structurally invalid payload (impossible length, unparseable
    /// checksummed frame, section out of order).
    Malformed(String),
    /// A storage-layer section failed to decode or restore.
    Storage(StorageError),
    /// The recovered parts would not assemble into a `Banks` instance.
    Banks(BanksError),
    /// A WAL batch failed to re-apply during recovery replay.
    Ingest(IngestError),
    /// The embedded CSR graph section failed to decode.
    Graph(SnapshotError),
    /// The paged graph blob (bundle v2 graph section) failed to open
    /// or decode.
    Pager(PagerError),
    /// A data directory holds durable state (snapshot files or WAL
    /// frames) but no snapshot could be loaded — refusing to continue,
    /// because starting fresh would silently discard acknowledged
    /// writes.
    NoValidSnapshot {
        /// Snapshot files found (all failed to load).
        snapshots_tried: usize,
        /// Whole WAL frames found alongside them.
        wal_batches: usize,
    },
    /// WAL replay found an epoch that does not continue the snapshot's
    /// sequence — the directory mixes artifacts from different runs.
    EpochGap {
        /// The epoch replay needed next.
        expected: u64,
        /// The epoch the WAL frame carries.
        found: u64,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::BadMagic { what } => write!(f, "not a BANKS {what} (bad magic)"),
            PersistError::BadVersion(v) => write!(f, "unsupported persist format version {v}"),
            PersistError::BadChecksum => write!(f, "checksum mismatch"),
            PersistError::Malformed(m) => write!(f, "malformed durable artifact: {m}"),
            PersistError::Storage(e) => write!(f, "storage section: {e}"),
            PersistError::Banks(e) => write!(f, "recovered parts rejected: {e}"),
            PersistError::Ingest(e) => write!(f, "WAL replay failed: {e}"),
            PersistError::Graph(e) => write!(f, "graph section: {e}"),
            PersistError::Pager(e) => write!(f, "paged graph section: {e}"),
            PersistError::NoValidSnapshot {
                snapshots_tried,
                wal_batches,
            } => write!(
                f,
                "data directory holds durable state ({snapshots_tried} snapshot file(s), \
                 {wal_batches} WAL batch(es)) but no snapshot loads — refusing to start fresh \
                 and lose acknowledged writes"
            ),
            PersistError::EpochGap { expected, found } => {
                write!(f, "WAL epoch gap: expected epoch {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Storage(e) => Some(e),
            PersistError::Banks(e) => Some(e),
            PersistError::Ingest(e) => Some(e),
            PersistError::Graph(e) => Some(e),
            PersistError::Pager(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<StorageError> for PersistError {
    fn from(e: StorageError) -> Self {
        PersistError::Storage(e)
    }
}

impl From<BanksError> for PersistError {
    fn from(e: BanksError) -> Self {
        PersistError::Banks(e)
    }
}

impl From<IngestError> for PersistError {
    fn from(e: IngestError) -> Self {
        PersistError::Ingest(e)
    }
}

impl From<SnapshotError> for PersistError {
    fn from(e: SnapshotError) -> Self {
        PersistError::Graph(e)
    }
}

impl From<PagerError> for PersistError {
    fn from(e: PagerError) -> Self {
        PersistError::Pager(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(PersistError::BadChecksum.to_string().contains("checksum"));
        assert!(PersistError::BadMagic { what: "bundle" }
            .to_string()
            .contains("bundle"));
        assert!(PersistError::BadVersion(9).to_string().contains('9'));
        assert!(PersistError::EpochGap {
            expected: 4,
            found: 7
        }
        .to_string()
        .contains("expected epoch 4"));
        let e = PersistError::NoValidSnapshot {
            snapshots_tried: 2,
            wal_batches: 5,
        };
        assert!(e.to_string().contains("refusing"));
        let io: PersistError = io::Error::other("boom").into();
        assert!(std::error::Error::source(&io).is_some());
    }
}
