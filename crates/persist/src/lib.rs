//! # banks-persist
//!
//! The durability layer of the BANKS workspace: everything the system
//! needs to restart in milliseconds and never lose an acknowledged
//! write.
//!
//! The paper's BANKS is purely in-memory — §5.2 measures a "graph load"
//! phase re-derived from the relational store on every start, and the
//! EMBANKS follow-up argues for moving BANKS onto disk-backed,
//! incrementally maintainable structures to reach database scale.
//! PR 1–2 gave this workspace a concurrent server and a live write path;
//! both were volatile: only the CSR graph had a binary snapshot, and
//! every acked `POST /ingest` evaporated on restart. This crate closes
//! that gap with three pieces:
//!
//! * [`bundle`] — **full-system snapshot bundles**: a single versioned,
//!   checksummed file carrying catalog + schemas, table tuples (slot
//!   layout preserved so rids stay valid), text-index postings, the CSR
//!   graph, ranking parameters, and the publication epoch. Version 2
//!   lays sections out behind a verified directory, stores the graph in
//!   the `banks-pager` segment format and the postings packed, so a
//!   bundle can be opened *paged* ([`bundle::open_bundle_paged`]) —
//!   lazy postings, bounded-memory graph — as well as fully loaded.
//!   Written atomically (temp file + fsync + rename).
//! * [`wal`] — a **write-ahead log** of length-prefixed, checksummed
//!   frames, each carrying one validated `DeltaBatch` (the PR-2 JSON
//!   wire format) and the epoch it produced. The
//!   [`banks_ingest::DurabilityHook`] contract appends the frame
//!   *before* a publication promotes, so an ingest ack implies the
//!   batch is on disk.
//! * [`store`] — the **data directory**: [`store::PersistentStore`]
//!   opens a directory, recovers the newest valid snapshot, replays WAL
//!   frames past its epoch (truncating a torn tail frame), and rolls
//!   fresh snapshots in the background once the WAL crosses a
//!   size/batch threshold, pruning what they supersede.
//!
//! `banks-server` surfaces the counters under `/stats`; `banks-cli`
//! wires a directory in via `serve --data-dir` and exposes bundles
//! directly through `banks snapshot save|load|inspect`.

pub mod bundle;
pub mod error;
pub mod store;
pub mod wal;

pub use bundle::{
    inspect_bundle, load_bundle, open_bundle_paged, peek_epoch, read_bundle, save_bundle,
    write_bundle, BundleInfo, BundleMeta,
};
pub use error::{PersistError, PersistResult};
pub use store::{snapshot_file, PersistOptions, PersistStats, PersistentStore, Recovery};
pub use wal::{scan_frames, scan_wal, WalFrame, WalScan, WalWriter};
