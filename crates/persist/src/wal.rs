//! The write-ahead log: length-prefixed, checksummed frames of validated
//! delta batches.
//!
//! Each acked `POST /ingest` appends one frame *before* the publication
//! is promoted (the [`banks_ingest::DurabilityHook`] contract), so any
//! batch a client saw succeed is re-playable after a crash.
//!
//! ## Frame layout (little-endian)
//!
//! ```text
//! u32  payload_len
//! payload:
//!   u64  epoch                  (the epoch this batch produced)
//!   …    batch JSON             (the PR-2 DeltaBatch wire format)
//! u64  checksum                 (FxHasher over the payload bytes)
//! ```
//!
//! The JSON wire format is reused deliberately: it is already validated,
//! versioned by its field grammar, diffable in a pager, and parsed by
//! machinery (`DeltaBatch::from_json`) with its own test suite. The
//! binary framing supplies what JSON lacks — boundaries and corruption
//! detection.
//!
//! ## Torn tails
//!
//! A crash mid-append leaves a *torn* final frame: a short length
//! prefix, a short payload, or a checksum that does not match. The
//! scanner ([`scan_wal`]) stops cleanly at the last whole frame and
//! reports where the valid prefix ends; recovery truncates the file
//! there before appending again. Anything torn was by definition never
//! acked (the ack happens after the fsync), so truncation never loses
//! an acknowledged write.

use crate::error::{PersistError, PersistResult};
use banks_graph::fxhash::FxHasher;
use banks_ingest::DeltaBatch;
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the log inside a data directory.
pub const WAL_FILE: &str = "wal.log";

/// Sanity cap on one frame's payload. The HTTP layer caps ingest bodies
/// at 8 MiB; anything bigger in a length prefix is corruption, not data.
pub const MAX_FRAME_PAYLOAD: u32 = 64 * 1024 * 1024;

fn checksum(payload: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(payload);
    h.finish()
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct WalFrame {
    /// The epoch this batch produced when it was first published.
    pub epoch: u64,
    /// The validated batch.
    pub batch: DeltaBatch,
}

/// Encode one frame (length prefix + payload + checksum).
pub fn encode_frame(epoch: u64, batch: &DeltaBatch) -> Vec<u8> {
    let json = batch.to_json().compact();
    let mut payload = Vec::with_capacity(8 + json.len());
    payload.extend_from_slice(&epoch.to_le_bytes());
    payload.extend_from_slice(json.as_bytes());
    let mut frame = Vec::with_capacity(4 + payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&checksum(&payload).to_le_bytes());
    frame
}

/// What a full scan of a WAL file finds.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Whole, checksum-valid frames, in file order.
    pub frames: Vec<WalFrame>,
    /// Start offset of each frame in `frames` (parallel vector) — the
    /// writer seeds its in-memory frame index from this so compaction
    /// never has to re-read or re-parse the log.
    pub offsets: Vec<u64>,
    /// Byte length of the valid prefix (== file length when the tail is
    /// clean). Recovery truncates the file to this length.
    pub valid_bytes: u64,
    /// Bytes past the valid prefix — the torn tail (0 when clean).
    pub torn_bytes: u64,
}

/// Scan `path`, decoding every whole frame and measuring the torn tail.
/// A missing file scans as empty.
///
/// Distinguishes two failure shapes: a *torn tail* (short read or
/// checksum mismatch at the end — expected after a crash, reported via
/// [`WalScan::torn_bytes`]) and a *checksum-valid frame that does not
/// parse* (impossible without a bug or tampering — a hard
/// [`PersistError::Malformed`]).
pub fn scan_wal(path: &Path) -> PersistResult<WalScan> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(e.into()),
    };
    scan_frames(&bytes)
}

/// Scan an in-memory frame stream — the same decoding `scan_wal` applies
/// to the on-disk log, reused by the replication tailer on HTTP bodies
/// (`GET /replication/wal` ships the on-disk bytes verbatim, so follower
/// and recovery parse with identical code).
pub fn scan_frames(bytes: &[u8]) -> PersistResult<WalScan> {
    let mut scan = WalScan::default();
    let mut at = 0usize;
    loop {
        let frame_start = at;
        // Length prefix.
        if bytes.len() - at < 4 {
            break;
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        if len as u64 > MAX_FRAME_PAYLOAD as u64 {
            // An implausible length is indistinguishable from garbage at
            // the tail; treat it as torn rather than trying to skip it.
            break;
        }
        at += 4;
        // Payload + checksum.
        if bytes.len() - at < len + 8 {
            break;
        }
        let payload = &bytes[at..at + len];
        at += len;
        let stored = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        at += 8;
        if stored != checksum(payload) {
            break;
        }
        if payload.len() < 8 {
            return Err(PersistError::Malformed(format!(
                "WAL frame at byte {frame_start} is checksum-valid but too short for an epoch"
            )));
        }
        let epoch = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        let json = std::str::from_utf8(&payload[8..]).map_err(|_| {
            PersistError::Malformed(format!(
                "WAL frame for epoch {epoch} is checksum-valid but not UTF-8"
            ))
        })?;
        let batch = DeltaBatch::from_json(json).map_err(|e| {
            PersistError::Malformed(format!(
                "WAL frame for epoch {epoch} is checksum-valid but unparseable: {e}"
            ))
        })?;
        scan.frames.push(WalFrame { epoch, batch });
        scan.offsets.push(frame_start as u64);
        scan.valid_bytes = at as u64;
    }
    scan.torn_bytes = bytes.len() as u64 - scan.valid_bytes;
    Ok(scan)
}

/// The append side of the log. One writer exists per store; callers
/// serialize access (the store wraps it in a mutex).
///
/// The writer keeps an in-memory `(epoch, offset)` index of every
/// frame it knows about, so compaction is a raw byte-range copy — no
/// re-reading, no re-parsing, and only a short hold on the caller's
/// lock.
///
/// Failure discipline: an append that cannot be rolled back, or a
/// compaction that cannot reopen the renamed log, **poisons** the
/// writer — every later operation fails loudly instead of risking an
/// ack whose bytes sit in a corrupt region or an unlinked inode.
/// A poisoned WAL means ingest returns errors until restart; it never
/// means silent data loss.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    fsync: bool,
    bytes: u64,
    /// `(epoch, start offset)` of each whole frame, in file order.
    index: Vec<(u64, u64)>,
    /// On-disk state may not match this bookkeeping; refuse everything.
    poisoned: bool,
    /// Completed `sync_data` calls (appends with fsync on).
    fsyncs: u64,
    /// Total nanoseconds spent inside `sync_data` — with `fsyncs`, the
    /// `_sum`/`_count` pair behind the fsync-latency metric.
    fsync_nanos: u64,
}

impl WalWriter {
    /// Open `path` for appending, first truncating it to the scan's
    /// valid prefix (dropping a torn tail found by [`scan_wal`]) and
    /// seeding the frame index from the scan.
    pub fn open(path: &Path, scan: &WalScan, fsync: bool) -> PersistResult<WalWriter> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        file.set_len(scan.valid_bytes)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        if fsync {
            file.sync_all()?;
        }
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            fsync,
            bytes: scan.valid_bytes,
            index: scan
                .frames
                .iter()
                .map(|f| f.epoch)
                .zip(scan.offsets.iter().copied())
                .collect(),
            poisoned: false,
            fsyncs: 0,
            fsync_nanos: 0,
        })
    }

    fn check_poisoned(&self) -> PersistResult<()> {
        if self.poisoned {
            return Err(PersistError::Malformed(
                "write-ahead log writer is poisoned after an unrecoverable I/O failure;                  restart to recover from the durable prefix"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Append one frame and (when fsync is on) force it to stable
    /// storage before returning — the durability point of an ingest ack.
    ///
    /// On failure the partial (or un-fsync'd) frame is rolled back —
    /// file truncated to the last good byte, offset restored — so a
    /// retried publish appends at a clean boundary and earlier acked
    /// frames can never be mistaken for a torn tail. A rollback that
    /// itself fails poisons the writer.
    pub fn append(&mut self, epoch: u64, batch: &DeltaBatch) -> PersistResult<()> {
        self.check_poisoned()?;
        let frame = encode_frame(epoch, batch);
        let mut fsync_elapsed = None;
        let result = (|| -> PersistResult<()> {
            if let Some(cut) = banks_util::fault::torn_write("wal.append.write", frame.len())? {
                // Simulated crash mid-write: a prefix of the frame hits
                // the file, then the append fails. The rollback below
                // (or, post-crash, the recovery scan) must erase it.
                self.file.write_all(&frame[..cut])?;
                self.file.flush()?;
                return Err(
                    std::io::Error::other("injected fault: wal.append.write (torn)").into(),
                );
            }
            self.file.write_all(&frame)?;
            self.file.flush()?;
            if self.fsync {
                banks_util::fault::maybe_fault("wal.append.fsync")?;
                let t0 = std::time::Instant::now();
                self.file.sync_data()?;
                fsync_elapsed = Some(t0.elapsed());
            }
            Ok(())
        })();
        if let Some(elapsed) = fsync_elapsed {
            self.fsyncs += 1;
            self.fsync_nanos = self
                .fsync_nanos
                .saturating_add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
        if let Err(e) = result {
            // Roll the file back to the pre-append state. Without this,
            // the garbage bytes would sit *before* any later successful
            // append, and a post-crash scan would truncate those later
            // acked frames as part of the "torn tail".
            let rolled_back = self.file.set_len(self.bytes).is_ok()
                && self.file.seek(SeekFrom::Start(self.bytes)).is_ok();
            if !rolled_back {
                self.poisoned = true;
            }
            return Err(e);
        }
        self.index.push((epoch, self.bytes));
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Bytes currently in the log.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whole frames currently in the log.
    pub fn batches(&self) -> u64 {
        self.index.len() as u64
    }

    /// `(count, total nanoseconds)` of completed append fsyncs.
    pub fn fsync_totals(&self) -> (u64, u64) {
        (self.fsyncs, self.fsync_nanos)
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Raw bytes of every whole frame with `epoch > from_epoch`, exactly
    /// as they sit on disk — the replication feed. Returns `None` when
    /// the log no longer reaches back that far (compaction dropped a
    /// frame the caller still needs; it must re-bootstrap from a
    /// snapshot instead of tailing).
    ///
    /// Frames carry consecutive epochs (recovery rejects gaps, appends
    /// are sequential), so "present" is a contiguous range: the request
    /// is serveable iff `from_epoch` is at or past `first_epoch - 1`.
    /// An empty log serves any request as zero bytes — the caller
    /// cross-checks against the durable epoch to distinguish "caught
    /// up" from "compacted away" (see `PersistentStore::wal_since`).
    pub fn frames_since(&mut self, from_epoch: u64) -> PersistResult<Option<Vec<u8>>> {
        self.check_poisoned()?;
        let Some(&(first_epoch, _)) = self.index.first() else {
            return Ok(Some(Vec::new()));
        };
        if from_epoch + 1 < first_epoch {
            return Ok(None);
        }
        let start = self
            .index
            .iter()
            .find(|&&(epoch, _)| epoch > from_epoch)
            .map(|&(_, offset)| offset)
            .unwrap_or(self.bytes);
        let mut out = vec![0u8; (self.bytes - start) as usize];
        self.file.seek(SeekFrom::Start(start))?;
        self.file.read_exact(&mut out)?;
        self.file.seek(SeekFrom::Start(self.bytes))?;
        Ok(Some(out))
    }

    /// Epoch of the newest frame in the log, if any.
    pub fn last_epoch(&self) -> Option<u64> {
        self.index.last().map(|&(epoch, _)| epoch)
    }

    /// Drop every frame with `epoch <= up_to_epoch` (superseded by a
    /// snapshot at that epoch). Uses the in-memory frame index to copy
    /// the surviving byte range verbatim — no re-read of dropped
    /// frames, no JSON parsing — into a temp file that is fsync'd and
    /// renamed over the log, then reopens the new file for appending.
    ///
    /// The rename unlinks the inode behind the old handle, so a failed
    /// reopen poisons the writer: appending to the dead inode would
    /// ack writes into a file nothing can ever read back.
    pub fn compact(&mut self, up_to_epoch: u64) -> PersistResult<()> {
        self.check_poisoned()?;
        let keep_from = self
            .index
            .iter()
            .find(|&&(epoch, _)| epoch > up_to_epoch)
            .map(|&(_, offset)| offset)
            .unwrap_or(self.bytes);
        let survivor_len = (self.bytes - keep_from) as usize;
        let mut survivors = vec![0u8; survivor_len];
        self.file.seek(SeekFrom::Start(keep_from))?;
        self.file.read_exact(&mut survivors)?;
        banks_util::fs::atomic_write(&self.path, |w| w.write_all(&survivors))?;
        match OpenOptions::new().read(true).write(true).open(&self.path) {
            Ok(mut file) => {
                let end = file.seek(SeekFrom::End(0))?;
                self.file = file;
                self.bytes = end;
                self.index = self
                    .index
                    .iter()
                    .filter(|&&(epoch, _)| epoch > up_to_epoch)
                    .map(|&(epoch, offset)| (epoch, offset - keep_from))
                    .collect();
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(PersistError::Io(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_ingest::TupleOp;
    use banks_storage::Value;

    fn batch(tag: &str, ops: usize) -> DeltaBatch {
        DeltaBatch {
            ops: (0..ops)
                .map(|i| TupleOp::Insert {
                    relation: "Author".into(),
                    values: vec![
                        Value::text(format!("{tag}-{i}")),
                        Value::text(format!("Author {tag} {i}")),
                    ],
                })
                .collect(),
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("banks_wal_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(WAL_FILE)
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, &WalScan::default(), true).unwrap();
        for (i, b) in [batch("a", 1), batch("b", 3), batch("c", 2)]
            .iter()
            .enumerate()
        {
            w.append(i as u64 + 1, b).unwrap();
        }
        assert_eq!(w.batches(), 3);
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.valid_bytes, w.bytes());
        assert_eq!(scan.frames[1].epoch, 2);
        assert_eq!(scan.frames[1].batch, batch("b", 3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_scans_empty() {
        let path = tmp("missing").with_file_name("never-written.log");
        let scan = scan_wal(&path).unwrap();
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_bytes, 0);
    }

    /// The satellite requirement: truncate the WAL at **every byte
    /// boundary** of the last frame and prove the scan stops cleanly at
    /// the last whole frame, never mis-decoding the torn tail.
    #[test]
    fn torn_tail_at_every_byte_boundary() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, &WalScan::default(), true).unwrap();
        w.append(1, &batch("first", 2)).unwrap();
        w.append(2, &batch("second", 1)).unwrap();
        let keep = w.bytes();
        w.append(3, &batch("third", 4)).unwrap();
        let full = std::fs::read(&path).unwrap();

        for cut in keep as usize..full.len() {
            let torn_path = path.with_file_name(format!("torn-{cut}.log"));
            std::fs::write(&torn_path, &full[..cut]).unwrap();
            let scan = scan_wal(&torn_path).unwrap();
            if cut == full.len() {
                assert_eq!(scan.frames.len(), 3);
            } else {
                assert_eq!(
                    scan.frames.len(),
                    2,
                    "cut at byte {cut}: the torn third frame must not decode"
                );
                assert_eq!(scan.valid_bytes, keep, "cut at byte {cut}");
                assert_eq!(scan.torn_bytes, cut as u64 - keep, "cut at byte {cut}");
            }
            // Reopening for append truncates the tail; a fresh append
            // then scans as frame 3.
            let mut w2 = WalWriter::open(&torn_path, &scan, false).unwrap();
            w2.append(3, &batch("retry", 1)).unwrap();
            let rescanned = scan_wal(&torn_path).unwrap();
            assert_eq!(rescanned.torn_bytes, 0);
            assert_eq!(rescanned.frames.last().unwrap().epoch, 3);
            std::fs::remove_file(&torn_path).ok();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bitflip_in_tail_frame_is_torn_not_misread() {
        let path = tmp("bitflip");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, &WalScan::default(), false).unwrap();
        w.append(1, &batch("keep", 1)).unwrap();
        let keep = w.bytes() as usize;
        w.append(2, &batch("flip", 1)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the last frame (skip its len prefix).
        bytes[keep + 6] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_bytes, keep as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_keeps_only_survivors() {
        let path = tmp("compact");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, &WalScan::default(), false).unwrap();
        for e in 1..=5u64 {
            w.append(e, &batch(&format!("e{e}"), 1)).unwrap();
        }
        w.compact(3).unwrap();
        assert_eq!(w.batches(), 2);
        let rescanned = scan_wal(&path).unwrap();
        assert_eq!(
            rescanned.frames.iter().map(|f| f.epoch).collect::<Vec<_>>(),
            vec![4, 5]
        );
        // Appends continue after a compaction, and the shifted index
        // still supports another compaction.
        w.append(6, &batch("e6", 1)).unwrap();
        assert_eq!(scan_wal(&path).unwrap().frames.len(), 3);
        w.compact(5).unwrap();
        assert_eq!(
            scan_wal(&path)
                .unwrap()
                .frames
                .iter()
                .map(|f| f.epoch)
                .collect::<Vec<_>>(),
            vec![6]
        );
        // Compacting everything empties the log.
        w.compact(6).unwrap();
        assert_eq!(w.bytes(), 0);
        assert_eq!(scan_wal(&path).unwrap().frames.len(), 0);
        w.append(7, &batch("e7", 1)).unwrap();
        assert_eq!(scan_wal(&path).unwrap().frames[0].epoch, 7);
        std::fs::remove_file(&path).ok();
    }

    /// The replication feed contract: `frames_since` serves the exact
    /// on-disk byte range past `from_epoch`, reports a gap (`None`) when
    /// compaction dropped a needed frame, and stays append-consistent
    /// after the interleaved reads.
    #[test]
    fn frames_since_serves_ranges_and_reports_gaps() {
        let path = tmp("since");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, &WalScan::default(), false).unwrap();
        assert_eq!(w.frames_since(0).unwrap(), Some(Vec::new()));
        for e in 1..=4u64 {
            w.append(e, &batch(&format!("e{e}"), 1)).unwrap();
        }

        let full = std::fs::read(&path).unwrap();
        // from_epoch=0 ships the whole log byte-for-byte.
        assert_eq!(w.frames_since(0).unwrap(), Some(full.clone()));
        // A mid-log cursor ships exactly the on-disk suffix.
        let suffix = w.frames_since(2).unwrap().unwrap();
        assert_eq!(full[full.len() - suffix.len()..], suffix[..]);
        let parsed = scan_frames(&suffix).unwrap();
        assert_eq!(
            parsed.frames.iter().map(|f| f.epoch).collect::<Vec<_>>(),
            vec![3, 4]
        );
        // Caught-up (and beyond) cursors get zero bytes, not an error.
        assert_eq!(w.frames_since(4).unwrap(), Some(Vec::new()));
        assert_eq!(w.frames_since(9).unwrap(), Some(Vec::new()));

        // Compaction through epoch 2: cursor 1 would need the dropped
        // frame 2 — a gap; cursor 2 sits exactly at the boundary and
        // still tails.
        w.compact(2).unwrap();
        assert_eq!(w.frames_since(1).unwrap(), None);
        let after = w.frames_since(2).unwrap().unwrap();
        assert_eq!(
            scan_frames(&after)
                .unwrap()
                .frames
                .iter()
                .map(|f| f.epoch)
                .collect::<Vec<_>>(),
            vec![3, 4]
        );

        // The interleaved reads left the append offset intact.
        w.append(5, &batch("e5", 1)).unwrap();
        assert_eq!(w.last_epoch(), Some(5));
        assert_eq!(scan_wal(&path).unwrap().torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    /// Rollback discipline around a failed append: the log is restored
    /// to its pre-append state, so acked frames on either side of the
    /// failure survive a rescan with no torn tail.
    #[test]
    fn failed_append_leaves_clean_boundary() {
        let path = tmp("rollback");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path, &WalScan::default(), false).unwrap();
        w.append(1, &batch("good", 1)).unwrap();
        let keep = w.bytes();

        // Simulate what a failed (partial) append leaves on disk, then
        // apply the same truncate-to-last-good-byte recovery the
        // rollback path performs.
        use std::io::Write as _;
        let mut raw = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        raw.write_all(&[0x13, 0x37, 0x00]).unwrap();
        drop(raw);
        assert!(scan_wal(&path).unwrap().torn_bytes > 0);

        let scan = scan_wal(&path).unwrap();
        let mut w2 = WalWriter::open(&path, &scan, false).unwrap();
        assert_eq!(w2.bytes(), keep);
        w2.append(2, &batch("after", 1)).unwrap();
        let rescanned = scan_wal(&path).unwrap();
        assert_eq!(
            rescanned.frames.iter().map(|f| f.epoch).collect::<Vec<_>>(),
            vec![1, 2],
            "the acked frame before AND after the failure both survive"
        );
        assert_eq!(rescanned.torn_bytes, 0);
        drop(w);
        std::fs::remove_file(&path).ok();
    }
}
