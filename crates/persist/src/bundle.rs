//! Full-system snapshot bundles: one file holding everything a server
//! needs to answer queries — catalog + schemas, table tuples, text-index
//! postings, the CSR graph, ranking parameters, and the publication
//! epoch. Version 3 lays the file out for *out-of-core* serving: every
//! section sits at a directory-recorded offset, and the three bulky
//! sections (tuples, postings, graph) use formats that can be served
//! straight off the file — [`open_bundle_paged`] — instead of decoded
//! front-to-back.
//!
//! ## Version 3 layout (all integers little-endian)
//!
//! ```text
//! magic           "BNKSBNDL"                        8 bytes
//! version         u32  (= 3)                        4
//! section_count   u32  (= 4)                        4
//! directory       4 × 32 bytes                      per section:
//!                                                     magic     [u8; 8]
//!                                                     offset    u64  (from file start)
//!                                                     len       u64
//!                                                     checksum  u64  (stream over payload)
//! header checksum u64                               stream over everything above
//! BNKSMETA payload                                  epoch, score params, graph config
//! BNKSDATA payload                                  banks_storage::blocks v3 DATA section
//! BNKSTIDX payload                                  banks_storage::postings (packed, lazy-readable)
//! zero padding to a 4096 boundary
//! BNKSGRPH payload                                  banks_pager::encode_paged_blob
//! ```
//!
//! The directory + header checksum let any consumer locate and verify a
//! section with one small positioned read — no sequential frame walk.
//! The graph payload is the `banks-pager` paged blob: 4096-aligned so
//! its 64-byte-aligned internal segments stay aligned on disk, directly
//! mmap-able, and openable by [`banks_pager::PagedGraphStore`] without
//! touching the segment payloads. The DATA payload is the v3 tuple
//! section of `banks_storage::blocks`: catalog text, liveness bitmaps,
//! and PK→slot lanes behind a checksummed directory, with tuples in
//! fixed-span slot blocks that [`banks_pager::PagedTupleStore`] pages in
//! on first touch. A *full* load still verifies every section's
//! whole-payload checksum; a *paged* open verifies the bundle header,
//! the (few-dozen-byte) meta payload, and the internal checksummed
//! directories of the data, postings, and graph sections, trading
//! whole-payload verification of the lazy sections for not reading
//! their bytes (payload corruption there is still caught — per-segment
//! and per-block checksums at page-in, skeleton validation at open).
//!
//! Version 2 bundles (same directory, DATA as the sequential
//! `banks_storage::binary` stream — eager-only) and version 1 bundles
//! (sequential `magic + len` frames, graph as the
//! `banks_graph::snapshot` format, postings interleaved) remain fully
//! loadable; a v2 file can still be *paged* for its postings and graph,
//! with its tuples decoded eagerly. Writing always produces version 3.
//!
//! Saving goes through [`banks_util::fs::atomic_write`]: temp file,
//! fsync, rename, directory fsync. A bundle either exists completely at
//! its final path or not at all.
//!
//! The meta section persists the two configuration groups that shape
//! *derived* data — [`ScoreParams`] (result ranking, the cache-key
//! fingerprint) and [`GraphConfig`] (edge weights, prestige mode).
//! On load they overwrite the corresponding sections of the caller's
//! base config, so a recovered server ranks exactly like the one that
//! wrote the bundle even if its defaults drifted; matching/search knobs
//! stay caller-controlled (they are per-query, not baked into state).

use crate::error::{PersistError, PersistResult};
use banks_core::{
    Banks, BanksConfig, CombineMode, EdgeScoreMode, GraphConfig, NodeScoreMode, NodeWeightMode,
    ScoreParams, TupleGraph,
};
use banks_graph::fxhash::FxHasher;
use banks_graph::Graph;
use banks_pager::{ByteSource, PagedGraphStore, PagedTupleStore, SharedBudget};
use banks_storage::postings::{self, LazyTextIndex, PostingSource};
use banks_storage::{binary, blocks, Database, TextIndex};
use std::fs::File;
use std::hash::Hasher;
use std::io::{Read, Write};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;

/// File magic.
pub const BUNDLE_MAGIC: &[u8; 8] = b"BNKSBNDL";
/// Format version written by [`write_bundle`].
pub const BUNDLE_VERSION: u32 = 3;

const SECTION_META: &[u8; 8] = b"BNKSMETA";
const SECTION_DATA: &[u8; 8] = b"BNKSDATA";
const SECTION_TIDX: &[u8; 8] = b"BNKSTIDX";
const SECTION_GRPH: &[u8; 8] = b"BNKSGRPH";
const SECTION_MAGICS: [&[u8; 8]; 4] = [SECTION_META, SECTION_DATA, SECTION_TIDX, SECTION_GRPH];

/// magic + version + section_count.
const V2_PREFIX: usize = 8 + 4 + 4;
const DIR_ENTRY_LEN: usize = 32;
/// Whole v2 header region: prefix + directory + header checksum.
const V2_HEADER: usize = V2_PREFIX + SECTION_MAGICS.len() * DIR_ENTRY_LEN + 8;
/// The graph payload starts on a page boundary so its internal 64-byte
/// segment alignment is alignment on disk too (mmap-friendly).
const GRAPH_ALIGN: u64 = 4096;

/// Refuse sections longer than this while decoding (64 GiB) — corrupt
/// length prefixes must fail fast, not attempt the allocation.
const MAX_SECTION_LEN: u64 = 1 << 36;

/// What the meta section carries.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleMeta {
    /// Publication epoch of the snapshotted state.
    pub epoch: u64,
    /// Ranking parameters active when the bundle was written.
    pub score: ScoreParams,
    /// Graph-construction parameters the CSR section was derived under.
    pub graph: GraphConfig,
}

/// Whole-stream checksum over a byte range: four independent Fx lanes
/// striped across 32-byte blocks, folded into one word at the end. The
/// single-lane Fx fold is a serial dependency chain (~4 cycles per 8
/// bytes — ~0.4 ms on a multi-MiB bundle, pure latency); four lanes run
/// in parallel execution ports and verify the same megabytes ~4× faster.
/// Save and load both call this function, so the definition *is* the
/// format — v1 uses it over the whole file, v2 over the header region
/// and over each section payload.
fn stream_checksum(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut lanes = [0u64; 4];
    let mut blocks = bytes.chunks_exact(32);
    for block in &mut blocks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let word = u64::from_le_bytes(block[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            *lane = (lane.rotate_left(5) ^ word).wrapping_mul(SEED);
        }
    }
    let mut h = FxHasher::default();
    for lane in lanes {
        h.write_u64(lane);
    }
    h.write(blocks.remainder());
    h.finish()
}

fn encode_meta(epoch: u64, config: &BanksConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&epoch.to_le_bytes());
    let s = config.score;
    out.extend_from_slice(&s.lambda.to_le_bytes());
    out.push(match s.edge_score {
        EdgeScoreMode::Linear => 0,
        EdgeScoreMode::Log => 1,
    });
    out.push(match s.node_score {
        NodeScoreMode::Linear => 0,
        NodeScoreMode::Log => 1,
    });
    out.push(match s.combine {
        CombineMode::Additive => 0,
        CombineMode::Multiplicative => 1,
    });
    let g = &config.graph;
    match g.node_weight {
        NodeWeightMode::Indegree => {
            out.push(0);
            out.extend_from_slice(&0u64.to_le_bytes());
            out.extend_from_slice(&0f64.to_le_bytes());
        }
        NodeWeightMode::Uniform => {
            out.push(1);
            out.extend_from_slice(&0u64.to_le_bytes());
            out.extend_from_slice(&0f64.to_le_bytes());
        }
        NodeWeightMode::AuthorityTransfer {
            iterations,
            damping,
        } => {
            out.push(2);
            out.extend_from_slice(&(iterations as u64).to_le_bytes());
            out.extend_from_slice(&damping.to_le_bytes());
        }
    }
    out.extend_from_slice(&g.default_similarity.to_le_bytes());
    out.push(g.indegree_backward_weights as u8);
    out
}

fn decode_meta(bytes: &[u8]) -> PersistResult<BundleMeta> {
    let need = 8 + 8 + 3 + 1 + 8 + 8 + 8 + 1;
    if bytes.len() != need {
        return Err(PersistError::Malformed(format!(
            "meta section is {} bytes, expected {need}",
            bytes.len()
        )));
    }
    let mut at = 0usize;
    let u64_at = |at: &mut usize| {
        let v = u64::from_le_bytes(bytes[*at..*at + 8].try_into().expect("8 bytes"));
        *at += 8;
        v
    };
    let epoch = u64_at(&mut at);
    let lambda = f64::from_bits(u64_at(&mut at));
    let tag = |b: u8, what: &str, hi: u8| -> PersistResult<u8> {
        if b > hi {
            return Err(PersistError::Malformed(format!("bad {what} tag {b}")));
        }
        Ok(b)
    };
    let edge = match tag(bytes[at], "edge-score", 1)? {
        0 => EdgeScoreMode::Linear,
        _ => EdgeScoreMode::Log,
    };
    let node = match tag(bytes[at + 1], "node-score", 1)? {
        0 => NodeScoreMode::Linear,
        _ => NodeScoreMode::Log,
    };
    let combine = match tag(bytes[at + 2], "combine", 1)? {
        0 => CombineMode::Additive,
        _ => CombineMode::Multiplicative,
    };
    at += 3;
    let weight_tag = tag(bytes[at], "node-weight", 2)?;
    at += 1;
    let iterations = u64_at(&mut at) as usize;
    let damping = f64::from_bits(u64_at(&mut at));
    let node_weight = match weight_tag {
        0 => NodeWeightMode::Indegree,
        1 => NodeWeightMode::Uniform,
        _ => NodeWeightMode::AuthorityTransfer {
            iterations,
            damping,
        },
    };
    let default_similarity = f64::from_bits(u64_at(&mut at));
    let indegree_backward_weights = bytes[at] != 0;
    Ok(BundleMeta {
        epoch,
        score: ScoreParams {
            lambda,
            edge_score: edge,
            node_score: node,
            combine,
        },
        graph: GraphConfig {
            node_weight,
            default_similarity,
            indegree_backward_weights,
        },
    })
}

/// Serialize `banks` (stamped as `epoch`) into `out` — always version 3.
///
/// The DATA section goes through [`blocks::encode_database_v3`], which
/// is copy-on-write for a lazily-opened database: tuple blocks and PK
/// lanes untouched since the snapshot was opened are copied raw from
/// the backing store, so publishing an ingest epoch rewrites only the
/// blocks that epoch touched.
pub fn write_bundle(banks: &Banks, epoch: u64, mut out: impl Write) -> PersistResult<()> {
    let meta = encode_meta(epoch, banks.config());
    let data = blocks::encode_database_v3(banks.db())?;
    let mut tidx = Vec::with_capacity(64 * 1024);
    postings::write_packed_postings(banks.text_index(), &mut tidx)?;
    let grph =
        banks_pager::encode_paged_blob(banks.tuple_graph().graph(), banks_pager::DEFAULT_SEG_SPAN);

    let meta_off = V2_HEADER as u64;
    let data_off = meta_off + meta.len() as u64;
    let tidx_off = data_off + data.len() as u64;
    let tidx_end = tidx_off + tidx.len() as u64;
    let grph_off = tidx_end.next_multiple_of(GRAPH_ALIGN);

    let mut header = Vec::with_capacity(V2_HEADER);
    header.extend_from_slice(BUNDLE_MAGIC);
    header.extend_from_slice(&BUNDLE_VERSION.to_le_bytes());
    header.extend_from_slice(&(SECTION_MAGICS.len() as u32).to_le_bytes());
    let payloads: [(&[u8; 8], u64, &[u8]); 4] = [
        (SECTION_META, meta_off, &meta),
        (SECTION_DATA, data_off, &data),
        (SECTION_TIDX, tidx_off, &tidx),
        (SECTION_GRPH, grph_off, &grph),
    ];
    for (magic, offset, payload) in &payloads {
        header.extend_from_slice(*magic);
        header.extend_from_slice(&offset.to_le_bytes());
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        header.extend_from_slice(&stream_checksum(payload).to_le_bytes());
    }
    let header_checksum = stream_checksum(&header);
    header.extend_from_slice(&header_checksum.to_le_bytes());
    debug_assert_eq!(header.len(), V2_HEADER);

    out.write_all(&header)?;
    out.write_all(&meta)?;
    out.write_all(&data)?;
    out.write_all(&tidx)?;
    out.write_all(&vec![0u8; (grph_off - tidx_end) as usize])?;
    out.write_all(&grph)?;
    Ok(())
}

/// Atomically write the bundle to `path` (temp file + fsync + rename).
pub fn save_bundle(banks: &Banks, epoch: u64, path: &Path) -> PersistResult<()> {
    banks_util::fs::atomic_write(path, |w| {
        write_bundle(banks, epoch, w).map_err(|e| match e {
            PersistError::Io(io) => io,
            other => std::io::Error::other(other.to_string()),
        })
    })
    .map_err(PersistError::Io)
}

/// One parsed v2 directory row.
#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    offset: u64,
    len: u64,
    checksum: u64,
}

/// The verified v2 directory: one entry per section, in file order.
struct DirectoryV2 {
    meta: SectionEntry,
    data: SectionEntry,
    tidx: SectionEntry,
    grph: SectionEntry,
}

/// Parse and verify the v2 header region (`prefix` must hold at least
/// [`V2_HEADER`] bytes) against the known `file_len`. Checks the header
/// checksum, section order, offset monotonicity, and bounds; payload
/// checksums are the caller's job (a paged open intentionally skips the
/// two lazy sections').
fn parse_directory_v2(prefix: &[u8], file_len: u64) -> PersistResult<DirectoryV2> {
    let count = u32::from_le_bytes(prefix[8 + 4..V2_PREFIX].try_into().expect("4 bytes"));
    if count as usize != SECTION_MAGICS.len() {
        return Err(PersistError::Malformed(format!(
            "bundle declares {count} sections, expected {}",
            SECTION_MAGICS.len()
        )));
    }
    let body = V2_HEADER - 8;
    let stored = u64::from_le_bytes(prefix[body..V2_HEADER].try_into().expect("8 bytes"));
    if stream_checksum(&prefix[..body]) != stored {
        return Err(PersistError::BadChecksum);
    }
    let mut entries = [SectionEntry {
        offset: 0,
        len: 0,
        checksum: 0,
    }; 4];
    let mut cursor = V2_HEADER as u64;
    for (i, expected_magic) in SECTION_MAGICS.iter().enumerate() {
        let at = V2_PREFIX + i * DIR_ENTRY_LEN;
        let row = &prefix[at..at + DIR_ENTRY_LEN];
        if &row[..8] != *expected_magic {
            return Err(PersistError::Malformed(format!(
                "directory entry {i}: expected section {} found {}",
                String::from_utf8_lossy(*expected_magic),
                String::from_utf8_lossy(&row[..8])
            )));
        }
        let entry = SectionEntry {
            offset: u64::from_le_bytes(row[8..16].try_into().expect("8 bytes")),
            len: u64::from_le_bytes(row[16..24].try_into().expect("8 bytes")),
            checksum: u64::from_le_bytes(row[24..32].try_into().expect("8 bytes")),
        };
        if entry.len > MAX_SECTION_LEN {
            return Err(PersistError::Malformed(format!(
                "section {} length {} is implausible",
                String::from_utf8_lossy(*expected_magic),
                entry.len
            )));
        }
        let end = entry
            .offset
            .checked_add(entry.len)
            .filter(|&e| entry.offset >= cursor && e <= file_len)
            .ok_or_else(|| {
                PersistError::Malformed(format!(
                    "section {} at {}..+{} escapes the file ({} bytes)",
                    String::from_utf8_lossy(*expected_magic),
                    entry.offset,
                    entry.len,
                    file_len
                ))
            })?;
        cursor = end;
        entries[i] = entry;
    }
    if cursor != file_len {
        return Err(PersistError::Malformed(format!(
            "{} trailing byte(s) after the last section",
            file_len - cursor
        )));
    }
    Ok(DirectoryV2 {
        meta: entries[0],
        data: entries[1],
        tidx: entries[2],
        grph: entries[3],
    })
}

fn section_slice<'a>(bytes: &'a [u8], entry: &SectionEntry) -> &'a [u8] {
    &bytes[entry.offset as usize..(entry.offset + entry.len) as usize]
}

fn verify_section<'a>(bytes: &'a [u8], entry: &SectionEntry) -> PersistResult<&'a [u8]> {
    banks_util::fault::maybe_fault("bundle.section.read")?;
    let payload = section_slice(bytes, entry);
    if stream_checksum(payload) != entry.checksum {
        return Err(PersistError::BadChecksum);
    }
    Ok(payload)
}

/// Decode a directory-laid-out bundle (version 2 or 3 — they share the
/// header; only the DATA payload format differs).
fn decode_bundle_dir(
    bytes: &[u8],
    base_config: &BanksConfig,
    version: u32,
) -> PersistResult<(Banks, BundleMeta)> {
    let dir = parse_directory_v2(bytes, bytes.len() as u64)?;
    // Inter-section gaps (alignment padding) must be zero — every byte
    // of the file is either checksummed payload or provably-dead zeros,
    // so a flipped bit anywhere fails the load.
    let mut cursor = V2_HEADER as u64;
    for entry in [&dir.meta, &dir.data, &dir.tidx, &dir.grph] {
        if bytes[cursor as usize..entry.offset as usize]
            .iter()
            .any(|&b| b != 0)
        {
            return Err(PersistError::Malformed(
                "nonzero bytes in section alignment padding".into(),
            ));
        }
        cursor = entry.offset + entry.len;
    }
    let meta = decode_meta(verify_section(bytes, &dir.meta)?)?;

    // Checksum + decode the payloads. The three sections are
    // independent until the graph rebinds to the database, so on a
    // multi-core host the text index and graph decode on their own
    // threads while this one takes the database — restore wall-clock is
    // the *max* of the section costs, not their sum. A single-core host
    // decodes sequentially (spawning would only add overhead).
    let decode_data = || -> PersistResult<_> {
        let payload = verify_section(bytes, &dir.data)?;
        Ok(match version {
            2 => binary::read_database(payload)?,
            _ => blocks::decode_database_v3(payload)?,
        })
    };
    let decode_tidx = || -> PersistResult<_> {
        Ok(postings::read_packed_postings(verify_section(
            bytes, &dir.tidx,
        )?)?)
    };
    let decode_graph = || -> PersistResult<Graph> {
        let payload = verify_section(bytes, &dir.grph)?;
        Ok(PagedGraphStore::decode_full(&ByteSource::Mem(
            payload.into(),
        ))?)
    };
    let parallel = std::thread::available_parallelism().is_ok_and(|n| n.get() > 1);
    let (db, text_index, graph) = if parallel {
        let (db, text_index, graph) = std::thread::scope(|scope| {
            let tidx_handle = scope.spawn(decode_tidx);
            let graph_handle = scope.spawn(decode_graph);
            let db = decode_data();
            let text_index = tidx_handle.join().expect("text-index decode panicked");
            let graph = graph_handle.join().expect("graph decode panicked");
            (db, text_index, graph)
        });
        (db?, text_index?, graph?)
    } else {
        (decode_data()?, decode_tidx()?, decode_graph()?)
    };
    assemble(db, text_index, graph, meta, base_config)
}

fn assemble(
    db: banks_storage::Database,
    text_index: TextIndex,
    graph: Graph,
    meta: BundleMeta,
    base_config: &BanksConfig,
) -> PersistResult<(Banks, BundleMeta)> {
    let tuple_graph = TupleGraph::rebind(&db, graph)?;
    let mut config = base_config.clone();
    config.score = meta.score;
    config.graph = meta.graph.clone();
    let banks = Banks::from_parts(db, config, tuple_graph, text_index)?;
    Ok((banks, meta))
}

/// The four v1 section payloads, borrowed from the verified byte stream.
struct SectionsV1<'a> {
    meta: &'a [u8],
    data: &'a [u8],
    tidx: &'a [u8],
    graph: &'a [u8],
}

/// Verify a v1 bundle's trailing whole-file checksum, then split the
/// sequential `magic + len + payload` frames out of `bytes` without
/// copying.
fn split_sections_v1(bytes: &[u8]) -> PersistResult<SectionsV1<'_>> {
    let header = 8 + 4;
    if bytes.len() < header + 8 {
        return Err(PersistError::Malformed("bundle shorter than header".into()));
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if stream_checksum(&bytes[..body_end]) != stored {
        return Err(PersistError::BadChecksum);
    }

    let mut at = header;
    let mut section = |magic: &[u8; 8]| -> PersistResult<&[u8]> {
        if body_end - at < 16 {
            return Err(PersistError::Malformed(format!(
                "truncated before section {}",
                String::from_utf8_lossy(magic)
            )));
        }
        if &bytes[at..at + 8] != magic {
            return Err(PersistError::Malformed(format!(
                "expected section {} found {}",
                String::from_utf8_lossy(magic),
                String::from_utf8_lossy(&bytes[at..at + 8])
            )));
        }
        let len = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("8 bytes"));
        if len > MAX_SECTION_LEN || len as usize > body_end - at - 16 {
            return Err(PersistError::Malformed(format!(
                "section {} length {len} is implausible",
                String::from_utf8_lossy(magic)
            )));
        }
        let payload = &bytes[at + 16..at + 16 + len as usize];
        at += 16 + len as usize;
        Ok(payload)
    };
    let meta = section(SECTION_META)?;
    let data = section(SECTION_DATA)?;
    let tidx = section(SECTION_TIDX)?;
    let graph = section(SECTION_GRPH)?;
    Ok(SectionsV1 {
        meta,
        data,
        tidx,
        graph,
    })
}

fn decode_bundle_v1(bytes: &[u8], base_config: &BanksConfig) -> PersistResult<(Banks, BundleMeta)> {
    let sections = split_sections_v1(bytes)?;
    let meta = decode_meta(sections.meta)?;
    let parallel = std::thread::available_parallelism().is_ok_and(|n| n.get() > 1);
    let (db, text_index, graph) = if parallel {
        let (db, text_index, graph) = std::thread::scope(|scope| {
            let tidx_handle = scope.spawn(|| binary::read_text_index(sections.tidx));
            let graph_handle = scope.spawn(|| banks_graph::snapshot::read_snapshot(sections.graph));
            let db = binary::read_database(sections.data);
            let text_index = tidx_handle.join().expect("text-index decode panicked");
            let graph = graph_handle.join().expect("graph decode panicked");
            (db, text_index, graph)
        });
        (db?, text_index?, graph?)
    } else {
        (
            binary::read_database(sections.data)?,
            binary::read_text_index(sections.tidx)?,
            banks_graph::snapshot::read_snapshot(sections.graph)?,
        )
    };
    assemble(db, text_index, graph, meta, base_config)
}

/// Magic + version check shared by every read path.
fn bundle_version(bytes: &[u8]) -> PersistResult<u32> {
    if bytes.len() < 12 {
        return Err(PersistError::Malformed("bundle shorter than header".into()));
    }
    if &bytes[..8] != BUNDLE_MAGIC {
        return Err(PersistError::BadMagic {
            what: "snapshot bundle",
        });
    }
    Ok(u32::from_le_bytes(
        bytes[8..12].try_into().expect("4 bytes"),
    ))
}

fn decode_bundle(bytes: &[u8], base_config: &BanksConfig) -> PersistResult<(Banks, BundleMeta)> {
    match bundle_version(bytes)? {
        1 => decode_bundle_v1(bytes, base_config),
        v @ (2 | 3) => decode_bundle_dir(bytes, base_config, v),
        other => Err(PersistError::BadVersion(other)),
    }
}

/// Deserialize a bundle, assembling a query-ready [`Banks`].
/// `base_config`'s score/graph sections are replaced by the bundle's
/// (see the module docs); everything else is kept.
pub fn read_bundle(
    mut input: impl Read,
    base_config: &BanksConfig,
) -> PersistResult<(Banks, BundleMeta)> {
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes)?;
    decode_bundle(&bytes, base_config)
}

/// Load a bundle from `path`: one sequential whole-file read, then an
/// in-memory zero-copy decode (see [`read_bundle`]).
pub fn load_bundle(path: &Path, base_config: &BanksConfig) -> PersistResult<(Banks, BundleMeta)> {
    let bytes = std::fs::read(path)?;
    decode_bundle(&bytes, base_config)
}

/// A [`PostingSource`] over a byte window of an open file.
#[derive(Debug)]
struct FileRange {
    file: Arc<File>,
    base: u64,
    len: u64,
}

impl PostingSource for FileRange {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
        offset
            .checked_add(buf.len() as u64)
            .filter(|&end| end <= self.len)
            .ok_or_else(|| std::io::Error::other("posting read out of section bounds"))?;
        self.file.read_exact_at(buf, self.base + offset)
    }
}

/// Open the bundle at `path` *paged*: every bulky section serves
/// lazily off the file. Postings page in per term, the graph serves
/// through a [`PagedGraphStore`], and — on a version-3 bundle — tuples
/// serve through a [`PagedTupleStore`] over the v3 DATA section. The
/// graph and tuple caches draw from one [`SharedBudget`], so `budget`
/// bounds their *combined* decoded-resident bytes. Cold-open cost is
/// the meta section plus three checksummed directories —
/// O(segments + blocks), independent of tuple, posting, and edge
/// counts.
///
/// A version-2 bundle still pages its postings and graph but decodes
/// its (sequential-format) DATA section eagerly. A version-1 file is
/// [`PersistError::BadVersion`] here (load it fully instead).
pub fn open_bundle_paged(
    path: &Path,
    budget: usize,
    base_config: &BanksConfig,
) -> PersistResult<(Banks, BundleMeta)> {
    let file = Arc::new(File::open(path)?);
    let file_len = file.metadata()?.len();
    if file_len < V2_HEADER as u64 {
        return Err(PersistError::Malformed("bundle shorter than header".into()));
    }
    let mut header = vec![0u8; V2_HEADER];
    file.read_exact_at(&mut header, 0)?;
    let version = match bundle_version(&header)? {
        v @ (2 | 3) => v,
        other => return Err(PersistError::BadVersion(other)),
    };
    let dir = parse_directory_v2(&header, file_len)?;

    let read_section = |entry: &SectionEntry| -> PersistResult<Vec<u8>> {
        banks_util::fault::maybe_fault("bundle.section.read")?;
        let mut buf = vec![0u8; entry.len as usize];
        file.read_exact_at(&mut buf, entry.offset)?;
        if stream_checksum(&buf) != entry.checksum {
            return Err(PersistError::BadChecksum);
        }
        Ok(buf)
    };
    let meta = decode_meta(&read_section(&dir.meta)?)?;
    // Every per-section open here is a directory-sized read — nothing
    // left worth overlapping on a thread (v2's eager DATA decode used
    // to be, but it is the compat path now and stays simple).
    let lazy = LazyTextIndex::open(Arc::new(FileRange {
        file: Arc::clone(&file),
        base: dir.tidx.offset,
        len: dir.tidx.len,
    }))?;
    let shared = SharedBudget::new(budget);
    let store = PagedGraphStore::open_file_shared(
        Arc::clone(&file),
        dir.grph.offset,
        dir.grph.len,
        Arc::clone(&shared),
    )?;
    let db = match version {
        2 => binary::read_database(&read_section(&dir.data)?)?,
        _ => {
            banks_util::fault::maybe_fault("bundle.section.read")?;
            let tuples = PagedTupleStore::open_file(
                Arc::clone(&file),
                dir.data.offset,
                dir.data.len,
                shared,
            )?;
            let schema_text = tuples.layout().schema_text.clone();
            Database::open_lazy(&schema_text, tuples)?
        }
    };
    let text_index = TextIndex::from_lazy(Arc::new(lazy));
    assemble(db, text_index, Graph::from_store(store), meta, base_config)
}

/// Read just enough of the bundle at `path` to learn its epoch: the
/// header plus the (few-dozen-byte) meta section, never the bulk
/// payloads. A replication bootstrap streams a downloaded bundle to a
/// temp file, peeks the epoch to pick its final `snapshot-<epoch>`
/// name, and lets the subsequent open do the real validation — so this
/// verifies the meta section it reads (v2 checksums it; v1's whole-file
/// checksum would require the bulk read this function exists to avoid).
pub fn peek_epoch(path: &Path) -> PersistResult<u64> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut prefix = [0u8; 12];
    if file_len < prefix.len() as u64 {
        return Err(PersistError::Malformed("bundle shorter than header".into()));
    }
    file.read_exact_at(&mut prefix, 0)?;
    match bundle_version(&prefix)? {
        1 => {
            // Frame walk: META is always the first section, at offset 12.
            let mut frame = [0u8; 16];
            file.read_exact_at(&mut frame, 12)?;
            if &frame[..8] != SECTION_META {
                return Err(PersistError::Malformed("first section is not META".into()));
            }
            let len = u64::from_le_bytes(frame[8..16].try_into().expect("8 bytes"));
            if len > 4096 {
                return Err(PersistError::Malformed(format!(
                    "meta section length {len} is implausible"
                )));
            }
            let mut meta = vec![0u8; len as usize];
            file.read_exact_at(&mut meta, 28)?;
            Ok(decode_meta(&meta)?.epoch)
        }
        2 | 3 => {
            if file_len < V2_HEADER as u64 {
                return Err(PersistError::Malformed("bundle shorter than header".into()));
            }
            let mut header = vec![0u8; V2_HEADER];
            file.read_exact_at(&mut header, 0)?;
            let dir = parse_directory_v2(&header, file_len)?;
            let mut meta = vec![0u8; dir.meta.len as usize];
            file.read_exact_at(&mut meta, dir.meta.offset)?;
            if stream_checksum(&meta) != dir.meta.checksum {
                return Err(PersistError::BadChecksum);
            }
            Ok(decode_meta(&meta)?.epoch)
        }
        other => Err(PersistError::BadVersion(other)),
    }
}

/// Summary of a bundle's sections, for `banks snapshot inspect`.
#[derive(Debug, Clone)]
pub struct BundleInfo {
    /// The meta section.
    pub meta: BundleMeta,
    /// Bundle format version (1, 2, or 3).
    pub version: u32,
    /// Database name.
    pub database: String,
    /// Per-relation `(name, live tuple count)`.
    pub relations: Vec<(String, usize)>,
    /// Total live tuples.
    pub tuples: usize,
    /// Distinct tokens in the text index.
    pub tokens: usize,
    /// Total postings in the text index.
    pub postings: usize,
    /// Graph node count.
    pub nodes: usize,
    /// Graph edge count.
    pub edges: usize,
    /// Section payload sizes in bytes: `(meta, data, text, graph)`.
    pub section_bytes: (u64, u64, u64, u64),
    /// Total file size in bytes.
    pub file_bytes: u64,
}

/// Validate and summarize the bundle at `path`. Every section's
/// checksum is verified — an `Ok` here means the bundle loads. On a
/// version-3 bundle the per-relation tuple counts come straight from
/// the v3 DATA directory (and the graph's node/edge counts from the
/// paged blob's), without decoding a single tuple block or adjacency
/// segment; older versions decode their sections fully.
pub fn inspect_bundle(path: &Path) -> PersistResult<BundleInfo> {
    let bytes = std::fs::read(path)?;
    let version = bundle_version(&bytes)?;
    if version == 3 {
        let dir = parse_directory_v2(&bytes, bytes.len() as u64)?;
        let meta = decode_meta(verify_section(&bytes, &dir.meta)?)?;
        let layout = blocks::DataLayout::parse(verify_section(&bytes, &dir.data)?)?;
        let schema = banks_storage::bundle::schema_from_text(&layout.schema_text)?;
        if schema.relation_count() != layout.relations.len() {
            return Err(PersistError::Malformed(format!(
                "schema declares {} relations but the v3 directory carries {}",
                schema.relation_count(),
                layout.relations.len()
            )));
        }
        let text_index = postings::read_packed_postings(verify_section(&bytes, &dir.tidx)?)?;
        let graph_store = banks_pager::PagedGraphStore::open_mem(
            verify_section(&bytes, &dir.grph)?.to_vec().into(),
            0,
        )?;
        let graph = Graph::from_store(graph_store);
        return Ok(BundleInfo {
            version,
            database: schema.name().to_string(),
            relations: schema
                .relations()
                .zip(&layout.relations)
                .map(|(t, r)| (t.schema().name.clone(), r.live_count as usize))
                .collect(),
            tuples: layout.total_live() as usize,
            tokens: text_index.distinct_tokens(),
            postings: text_index.posting_count(),
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            section_bytes: (dir.meta.len, dir.data.len, dir.tidx.len, dir.grph.len),
            file_bytes: bytes.len() as u64,
            meta,
        });
    }
    let (meta, db, text_index, graph, section_bytes) = match version {
        1 => {
            let sections = split_sections_v1(&bytes)?;
            (
                decode_meta(sections.meta)?,
                binary::read_database(sections.data)?,
                binary::read_text_index(sections.tidx)?,
                banks_graph::snapshot::read_snapshot(sections.graph)?,
                (
                    sections.meta.len() as u64,
                    sections.data.len() as u64,
                    sections.tidx.len() as u64,
                    sections.graph.len() as u64,
                ),
            )
        }
        2 => {
            let dir = parse_directory_v2(&bytes, bytes.len() as u64)?;
            (
                decode_meta(verify_section(&bytes, &dir.meta)?)?,
                binary::read_database(verify_section(&bytes, &dir.data)?)?,
                postings::read_packed_postings(verify_section(&bytes, &dir.tidx)?)?,
                PagedGraphStore::decode_full(&ByteSource::Mem(
                    verify_section(&bytes, &dir.grph)?.into(),
                ))?,
                (dir.meta.len, dir.data.len, dir.tidx.len, dir.grph.len),
            )
        }
        other => return Err(PersistError::BadVersion(other)),
    };
    Ok(BundleInfo {
        version,
        database: db.name().to_string(),
        relations: db
            .relations()
            .map(|t| (t.schema().name.clone(), t.len()))
            .collect(),
        tuples: db.total_tuples(),
        tokens: text_index.distinct_tokens(),
        postings: text_index.posting_count(),
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        section_bytes,
        file_bytes: bytes.len() as u64,
        meta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_storage::{ColumnType, Database, RelationSchema, Value};

    fn dblp() -> Database {
        let mut db = Database::new("dblp");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["AuthorId", "PaperId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (id, name) in [("MohanC", "C. Mohan"), ("SudarshanS", "S. Sudarshan")] {
            db.insert("Author", vec![Value::text(id), Value::text(name)])
                .unwrap();
        }
        db.insert(
            "Paper",
            vec![Value::text("P1"), Value::text("Transaction Recovery")],
        )
        .unwrap();
        for a in ["MohanC", "SudarshanS"] {
            db.insert("Writes", vec![Value::text(a), Value::text("P1")])
                .unwrap();
        }
        db
    }

    fn roundtrip(banks: &Banks, epoch: u64) -> (Banks, BundleMeta) {
        let mut buf = Vec::new();
        write_bundle(banks, epoch, &mut buf).unwrap();
        read_bundle(buf.as_slice(), &BanksConfig::default()).unwrap()
    }

    fn assert_same_answers(a: &Banks, b: &Banks, query: &str) {
        let x = a.search(query).unwrap();
        let y = b.search(query).unwrap();
        assert_eq!(x.len(), y.len());
        for (p, q) in x.iter().zip(&y) {
            assert_eq!(p.tree.signature(), q.tree.signature());
            assert!((p.relevance - q.relevance).abs() < 1e-12);
        }
    }

    #[test]
    fn bundle_roundtrip_preserves_results_and_epoch() {
        let banks = Banks::new(dblp()).unwrap();
        let (restored, meta) = roundtrip(&banks, 17);
        assert_eq!(meta.epoch, 17);
        assert_eq!(meta.score, banks.config().score);
        assert_same_answers(&banks, &restored, "mohan sudarshan");
        // Graph bit-equality.
        let (g, h) = (banks.tuple_graph().graph(), restored.tuple_graph().graph());
        assert_eq!(g.node_count(), h.node_count());
        assert_eq!(g.edge_count(), h.edge_count());
        for v in g.nodes() {
            assert_eq!(g.node_weight(v), h.node_weight(v));
            assert_eq!(
                g.out_edges(v).collect::<Vec<_>>(),
                h.out_edges(v).collect::<Vec<_>>()
            );
        }
        // Text index equality.
        assert_eq!(
            banks.text_index().posting_count(),
            restored.text_index().posting_count()
        );
    }

    #[test]
    fn bundle_carries_nondefault_ranking_params() {
        let mut config = BanksConfig::default();
        config.score.lambda = 0.7;
        config.score.combine = CombineMode::Multiplicative;
        config.score.edge_score = EdgeScoreMode::Linear;
        config.graph.default_similarity = 3.0;
        let banks = Banks::with_config(dblp(), config.clone()).unwrap();
        let mut buf = Vec::new();
        write_bundle(&banks, 1, &mut buf).unwrap();
        // Load under *default* base config: the bundle's params must win.
        let (restored, meta) = read_bundle(buf.as_slice(), &BanksConfig::default()).unwrap();
        assert_eq!(meta.score, config.score);
        assert_eq!(meta.graph, config.graph);
        assert_eq!(restored.config().score, config.score);
        assert_eq!(restored.config().graph, config.graph);
    }

    #[test]
    fn corruption_and_truncation_detected() {
        let banks = Banks::new(dblp()).unwrap();
        let mut buf = Vec::new();
        write_bundle(&banks, 3, &mut buf).unwrap();

        // Flip one byte anywhere — header, directory, payload, or the
        // alignment padding — and the load must fail; never a silent
        // wrong load.
        for at in [12usize, 40, buf.len() / 2, buf.len() - 20] {
            let mut bad = buf.clone();
            bad[at] ^= 0xff;
            assert!(
                read_bundle(bad.as_slice(), &BanksConfig::default()).is_err(),
                "flip at {at} must not load"
            );
        }
        // Truncation is an error, not a panic.
        let cut = buf.len() - 9;
        assert!(read_bundle(&buf[..cut], &BanksConfig::default()).is_err());
        // Wrong magic / version.
        assert!(matches!(
            read_bundle(&b"NOTABNDL________________"[..], &BanksConfig::default()),
            Err(PersistError::BadMagic { .. })
        ));
        let mut wrong_version = buf.clone();
        wrong_version[8] = 99;
        assert!(matches!(
            read_bundle(wrong_version.as_slice(), &BanksConfig::default()),
            Err(PersistError::BadVersion(99))
        ));
    }

    #[test]
    fn save_and_inspect_on_disk() {
        let banks = Banks::new(dblp()).unwrap();
        let dir = std::env::temp_dir().join(format!("banks_bundle_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.banks");
        save_bundle(&banks, 5, &path).unwrap();
        let info = inspect_bundle(&path).unwrap();
        assert_eq!(info.version, BUNDLE_VERSION);
        assert_eq!(info.meta.epoch, 5);
        assert_eq!(info.database, "dblp");
        assert_eq!(info.tuples, 5);
        assert_eq!(info.nodes, 5);
        assert!(info.postings > 0);
        assert_eq!(info.relations.len(), 3);
        assert!(info.file_bytes > 0);
        let (restored, meta) = load_bundle(&path, &BanksConfig::default()).unwrap();
        assert_eq!(meta.epoch, 5);
        assert_eq!(restored.db().total_tuples(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paged_open_matches_full_load() {
        let banks = Banks::new(dblp()).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "banks_bundle_paged_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.banks");
        save_bundle(&banks, 7, &path).unwrap();

        let (full, _) = load_bundle(&path, &BanksConfig::default()).unwrap();
        let (paged, meta) = open_bundle_paged(&path, 1 << 16, &BanksConfig::default()).unwrap();
        assert_eq!(meta.epoch, 7);
        assert!(paged.text_index().is_lazy());
        // The tuple store is lazy too, and the open itself decoded no
        // tuple block — the O(blocks) cold-open contract.
        let tstats = paged.db().tuple_store_stats().expect("lazy tuple store");
        assert_eq!(tstats.page_ins, 0, "cold open must not decode tuple blocks");
        assert_eq!(tstats.budget_bytes, 1 << 16);
        let stats = paged
            .tuple_graph()
            .graph()
            .storage_stats()
            .expect("paged graph");
        assert!(stats.budget_bytes == 1 << 16);
        assert_same_answers(&full, &paged, "mohan sudarshan");
        assert_same_answers(&full, &paged, "recovery");
        // Search itself never decoded a tuple (it runs on the graph and
        // text index); reading values — what answer rendering does —
        // pages blocks in, and the values match the eager load.
        for (ft, pt) in full.db().relations().zip(paged.db().relations()) {
            for slot in 0..ft.slot_count() as u32 {
                assert_eq!(ft.get(slot).cloned(), pt.get(slot).cloned());
            }
        }
        let tstats = paged.db().tuple_store_stats().unwrap();
        assert!(tstats.page_ins > 0, "value reads must page tuple blocks in");
        let gstats = paged.tuple_graph().graph().storage_stats().unwrap();
        assert!(
            tstats.resident_bytes + gstats.resident_bytes <= 1 << 16,
            "shared budget overshot: tuples {} + graph {}",
            tstats.resident_bytes,
            gstats.resident_bytes
        );
        // The paged graph is bit-identical to the decoded one.
        let (g, h) = (full.tuple_graph().graph(), paged.tuple_graph().graph());
        for v in g.nodes() {
            assert_eq!(g.node_weight(v), h.node_weight(v));
            assert_eq!(g.out_adjacency(v), h.out_adjacency(v));
            assert_eq!(g.in_adjacency(v), h.in_adjacency(v));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A hand-rolled v1 writer: the sequential `magic + len + payload`
    /// frame walk with the whole-file trailing checksum, graph as the
    /// `banks_graph::snapshot` format, postings interleaved. This is
    /// exactly what `write_bundle` produced before version 2; reading
    /// those files must keep working.
    fn write_bundle_v1(banks: &Banks, epoch: u64) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(BUNDLE_MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        let section = |bytes: &mut Vec<u8>, magic: &[u8; 8], payload: &[u8]| {
            bytes.extend_from_slice(magic);
            bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            bytes.extend_from_slice(payload);
        };
        section(
            &mut bytes,
            SECTION_META,
            &encode_meta(epoch, banks.config()),
        );
        let mut data = Vec::new();
        binary::write_database(banks.db(), &mut data).unwrap();
        section(&mut bytes, SECTION_DATA, &data);
        let mut tidx = Vec::new();
        binary::write_text_index(banks.text_index(), &mut tidx).unwrap();
        section(&mut bytes, SECTION_TIDX, &tidx);
        let mut graph = Vec::new();
        banks_graph::snapshot::write_snapshot(banks.tuple_graph().graph(), &mut graph).unwrap();
        section(&mut bytes, SECTION_GRPH, &graph);
        let checksum = stream_checksum(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes
    }

    /// A hand-rolled v2 writer: same directory layout as v3 but with
    /// the DATA payload in the sequential `banks_storage::binary`
    /// stream format. Exactly what `write_bundle` produced before
    /// version 3; reading — and paging — those files must keep working.
    fn write_bundle_v2(banks: &Banks, epoch: u64) -> Vec<u8> {
        let meta = encode_meta(epoch, banks.config());
        let mut data = Vec::new();
        binary::write_database(banks.db(), &mut data).unwrap();
        let mut tidx = Vec::new();
        postings::write_packed_postings(banks.text_index(), &mut tidx).unwrap();
        let grph = banks_pager::encode_paged_blob(
            banks.tuple_graph().graph(),
            banks_pager::DEFAULT_SEG_SPAN,
        );

        let meta_off = V2_HEADER as u64;
        let data_off = meta_off + meta.len() as u64;
        let tidx_off = data_off + data.len() as u64;
        let tidx_end = tidx_off + tidx.len() as u64;
        let grph_off = tidx_end.next_multiple_of(GRAPH_ALIGN);

        let mut out = Vec::new();
        out.extend_from_slice(BUNDLE_MAGIC);
        out.extend_from_slice(&2u32.to_le_bytes());
        out.extend_from_slice(&(SECTION_MAGICS.len() as u32).to_le_bytes());
        let payloads: [(&[u8; 8], u64, &[u8]); 4] = [
            (SECTION_META, meta_off, &meta),
            (SECTION_DATA, data_off, &data),
            (SECTION_TIDX, tidx_off, &tidx),
            (SECTION_GRPH, grph_off, &grph),
        ];
        for (magic, offset, payload) in &payloads {
            out.extend_from_slice(*magic);
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&stream_checksum(payload).to_le_bytes());
        }
        let header_checksum = stream_checksum(&out);
        out.extend_from_slice(&header_checksum.to_le_bytes());
        out.extend_from_slice(&meta);
        out.extend_from_slice(&data);
        out.extend_from_slice(&tidx);
        out.extend_from_slice(&vec![0u8; (grph_off - tidx_end) as usize]);
        out.extend_from_slice(&grph);
        out
    }

    #[test]
    fn version2_bundles_still_load_and_page() {
        let banks = Banks::new(dblp()).unwrap();
        let v2 = write_bundle_v2(&banks, 13);
        let (restored, meta) = read_bundle(v2.as_slice(), &BanksConfig::default()).unwrap();
        assert_eq!(meta.epoch, 13);
        assert_same_answers(&banks, &restored, "mohan sudarshan");

        // v2 corruption still detected.
        let mut bad = v2.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        assert!(read_bundle(bad.as_slice(), &BanksConfig::default()).is_err());

        // A v2 file pages its postings and graph; tuples fall back to
        // an eager decode (no lazy tuple store).
        let dir = std::env::temp_dir().join(format!(
            "banks_bundle_v2_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.banks");
        std::fs::write(&path, &v2).unwrap();
        let (paged, meta) = open_bundle_paged(&path, 1 << 20, &BanksConfig::default()).unwrap();
        assert_eq!(meta.epoch, 13);
        assert!(paged.text_index().is_lazy());
        assert!(paged.db().tuple_store_stats().is_none());
        assert_same_answers(&banks, &paged, "mohan sudarshan");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_counts_come_from_the_v3_directory() {
        let banks = Banks::new(dblp()).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "banks_bundle_inspect_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.banks");
        save_bundle(&banks, 21, &path).unwrap();
        let info = inspect_bundle(&path).unwrap();
        assert_eq!(info.version, 3);
        assert_eq!(info.database, "dblp");
        assert_eq!(info.tuples, 5);
        assert_eq!(
            info.relations,
            vec![
                ("Author".to_string(), 2),
                ("Paper".to_string(), 1),
                ("Writes".to_string(), 2),
            ]
        );
        assert_eq!(info.nodes, 5);
        assert!(info.edges > 0);
        assert!(info.tokens > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version1_bundles_still_load() {
        let banks = Banks::new(dblp()).unwrap();
        let v1 = write_bundle_v1(&banks, 11);
        let (restored, meta) = read_bundle(v1.as_slice(), &BanksConfig::default()).unwrap();
        assert_eq!(meta.epoch, 11);
        assert_same_answers(&banks, &restored, "mohan sudarshan");

        // v1 corruption still detected by the whole-file checksum.
        let mut bad = v1.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        assert!(read_bundle(bad.as_slice(), &BanksConfig::default()).is_err());

        // …but v1 cannot be paged.
        let dir = std::env::temp_dir().join(format!(
            "banks_bundle_v1_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.banks");
        std::fs::write(&path, &v1).unwrap();
        assert!(matches!(
            open_bundle_paged(&path, 1 << 20, &BanksConfig::default()),
            Err(PersistError::BadVersion(1))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
