//! Full-system snapshot bundles: one file holding everything a server
//! needs to answer queries — catalog + schemas, table tuples, text-index
//! postings, the CSR graph, ranking parameters, and the publication
//! epoch — loadable in a single sequential pass.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic    "BNKSBNDL"                     8 bytes
//! version  u32                            (currently 1)
//! section  "BNKSMETA"  u64 len  payload   epoch, score params, graph config
//! section  "BNKSDATA"  u64 len  payload   banks_storage::binary::write_database
//! section  "BNKSTIDX"  u64 len  payload   banks_storage::binary::write_text_index
//! section  "BNKSGRPH"  u64 len  payload   banks_graph::snapshot::write_snapshot
//! checksum u64                            (FxHasher over everything above)
//! ```
//!
//! Every section leads with its own magic and length, so `inspect` can
//! skim headers without decoding payloads and future versions can add
//! sections without breaking the frame walk. The graph section embeds
//! the existing graph snapshot format verbatim (its internal checksum
//! rides along — double protection, zero new code).
//!
//! Saving goes through [`banks_util::fs::atomic_write`]: temp file,
//! fsync, rename, directory fsync. A bundle either exists completely at
//! its final path or not at all.
//!
//! The meta section persists the two configuration groups that shape
//! *derived* data — [`ScoreParams`] (result ranking, the cache-key
//! fingerprint) and [`GraphConfig`] (edge weights, prestige mode).
//! On load they overwrite the corresponding sections of the caller's
//! base config, so a recovered server ranks exactly like the one that
//! wrote the bundle even if its defaults drifted; matching/search knobs
//! stay caller-controlled (they are per-query, not baked into state).

use crate::error::{PersistError, PersistResult};
use banks_core::{
    Banks, BanksConfig, CombineMode, EdgeScoreMode, GraphConfig, NodeScoreMode, NodeWeightMode,
    ScoreParams, TupleGraph,
};
use banks_graph::fxhash::FxHasher;
use banks_storage::binary;
use std::hash::Hasher;
use std::io::{Read, Write};
use std::path::Path;

/// File magic.
pub const BUNDLE_MAGIC: &[u8; 8] = b"BNKSBNDL";
/// Format version.
pub const BUNDLE_VERSION: u32 = 1;

const SECTION_META: &[u8; 8] = b"BNKSMETA";
const SECTION_DATA: &[u8; 8] = b"BNKSDATA";
const SECTION_TIDX: &[u8; 8] = b"BNKSTIDX";
const SECTION_GRPH: &[u8; 8] = b"BNKSGRPH";

/// Refuse sections longer than this while decoding (64 GiB) — corrupt
/// length prefixes must fail fast, not attempt the allocation.
const MAX_SECTION_LEN: u64 = 1 << 36;

/// What the meta section carries.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleMeta {
    /// Publication epoch of the snapshotted state.
    pub epoch: u64,
    /// Ranking parameters active when the bundle was written.
    pub score: ScoreParams,
    /// Graph-construction parameters the CSR section was derived under.
    pub graph: GraphConfig,
}

/// Whole-stream checksum over every byte before the trailing checksum
/// word: four independent Fx lanes striped across 32-byte blocks, folded
/// into one word at the end. The single-lane Fx fold is a serial
/// dependency chain (~4 cycles per 8 bytes — ~0.4 ms on a multi-MiB
/// bundle, pure latency); four lanes run in parallel execution ports and
/// verify the same megabytes ~4× faster. Save and load both call this
/// function, so the definition *is* the format.
fn stream_checksum(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut lanes = [0u64; 4];
    let mut blocks = bytes.chunks_exact(32);
    for block in &mut blocks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let word = u64::from_le_bytes(block[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            *lane = (lane.rotate_left(5) ^ word).wrapping_mul(SEED);
        }
    }
    let mut h = FxHasher::default();
    for lane in lanes {
        h.write_u64(lane);
    }
    h.write(blocks.remainder());
    h.finish()
}

fn encode_meta(epoch: u64, config: &BanksConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&epoch.to_le_bytes());
    let s = config.score;
    out.extend_from_slice(&s.lambda.to_le_bytes());
    out.push(match s.edge_score {
        EdgeScoreMode::Linear => 0,
        EdgeScoreMode::Log => 1,
    });
    out.push(match s.node_score {
        NodeScoreMode::Linear => 0,
        NodeScoreMode::Log => 1,
    });
    out.push(match s.combine {
        CombineMode::Additive => 0,
        CombineMode::Multiplicative => 1,
    });
    let g = &config.graph;
    match g.node_weight {
        NodeWeightMode::Indegree => {
            out.push(0);
            out.extend_from_slice(&0u64.to_le_bytes());
            out.extend_from_slice(&0f64.to_le_bytes());
        }
        NodeWeightMode::Uniform => {
            out.push(1);
            out.extend_from_slice(&0u64.to_le_bytes());
            out.extend_from_slice(&0f64.to_le_bytes());
        }
        NodeWeightMode::AuthorityTransfer {
            iterations,
            damping,
        } => {
            out.push(2);
            out.extend_from_slice(&(iterations as u64).to_le_bytes());
            out.extend_from_slice(&damping.to_le_bytes());
        }
    }
    out.extend_from_slice(&g.default_similarity.to_le_bytes());
    out.push(g.indegree_backward_weights as u8);
    out
}

fn decode_meta(bytes: &[u8]) -> PersistResult<BundleMeta> {
    let need = 8 + 8 + 3 + 1 + 8 + 8 + 8 + 1;
    if bytes.len() != need {
        return Err(PersistError::Malformed(format!(
            "meta section is {} bytes, expected {need}",
            bytes.len()
        )));
    }
    let mut at = 0usize;
    let u64_at = |at: &mut usize| {
        let v = u64::from_le_bytes(bytes[*at..*at + 8].try_into().expect("8 bytes"));
        *at += 8;
        v
    };
    let epoch = u64_at(&mut at);
    let lambda = f64::from_bits(u64_at(&mut at));
    let tag = |b: u8, what: &str, hi: u8| -> PersistResult<u8> {
        if b > hi {
            return Err(PersistError::Malformed(format!("bad {what} tag {b}")));
        }
        Ok(b)
    };
    let edge = match tag(bytes[at], "edge-score", 1)? {
        0 => EdgeScoreMode::Linear,
        _ => EdgeScoreMode::Log,
    };
    let node = match tag(bytes[at + 1], "node-score", 1)? {
        0 => NodeScoreMode::Linear,
        _ => NodeScoreMode::Log,
    };
    let combine = match tag(bytes[at + 2], "combine", 1)? {
        0 => CombineMode::Additive,
        _ => CombineMode::Multiplicative,
    };
    at += 3;
    let weight_tag = tag(bytes[at], "node-weight", 2)?;
    at += 1;
    let iterations = u64_at(&mut at) as usize;
    let damping = f64::from_bits(u64_at(&mut at));
    let node_weight = match weight_tag {
        0 => NodeWeightMode::Indegree,
        1 => NodeWeightMode::Uniform,
        _ => NodeWeightMode::AuthorityTransfer {
            iterations,
            damping,
        },
    };
    let default_similarity = f64::from_bits(u64_at(&mut at));
    let indegree_backward_weights = bytes[at] != 0;
    Ok(BundleMeta {
        epoch,
        score: ScoreParams {
            lambda,
            edge_score: edge,
            node_score: node,
            combine,
        },
        graph: GraphConfig {
            node_weight,
            default_similarity,
            indegree_backward_weights,
        },
    })
}

/// Serialize `banks` (stamped as `epoch`) into `out`.
pub fn write_bundle(banks: &Banks, epoch: u64, mut out: impl Write) -> PersistResult<()> {
    let mut bytes = Vec::with_capacity(64 * 1024);
    bytes.extend_from_slice(BUNDLE_MAGIC);
    bytes.extend_from_slice(&BUNDLE_VERSION.to_le_bytes());

    let section = |bytes: &mut Vec<u8>,
                   magic: &[u8; 8],
                   fill: &mut dyn FnMut(&mut Vec<u8>) -> PersistResult<()>|
     -> PersistResult<()> {
        bytes.extend_from_slice(magic);
        let len_at = bytes.len();
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let payload_at = bytes.len();
        fill(bytes)?;
        let len = (bytes.len() - payload_at) as u64;
        bytes[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
        Ok(())
    };

    section(&mut bytes, SECTION_META, &mut |b| {
        b.extend_from_slice(&encode_meta(epoch, banks.config()));
        Ok(())
    })?;
    section(&mut bytes, SECTION_DATA, &mut |b| {
        Ok(binary::write_database(banks.db(), b)?)
    })?;
    section(&mut bytes, SECTION_TIDX, &mut |b| {
        Ok(binary::write_text_index(banks.text_index(), b)?)
    })?;
    section(&mut bytes, SECTION_GRPH, &mut |b| {
        Ok(banks_graph::snapshot::write_snapshot(
            banks.tuple_graph().graph(),
            b,
        )?)
    })?;

    let checksum = stream_checksum(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    out.write_all(&bytes).map_err(PersistError::Io)
}

/// Atomically write the bundle to `path` (temp file + fsync + rename).
pub fn save_bundle(banks: &Banks, epoch: u64, path: &Path) -> PersistResult<()> {
    banks_util::fs::atomic_write(path, |w| {
        write_bundle(banks, epoch, w).map_err(|e| match e {
            PersistError::Io(io) => io,
            other => std::io::Error::other(other.to_string()),
        })
    })
    .map_err(PersistError::Io)
}

/// The four section payloads, borrowed from the verified byte stream.
struct Sections<'a> {
    meta: &'a [u8],
    data: &'a [u8],
    tidx: &'a [u8],
    graph: &'a [u8],
}

/// Verify header + trailing checksum, then split the section payloads
/// out of `bytes` without copying.
fn split_sections(bytes: &[u8]) -> PersistResult<Sections<'_>> {
    let header = 8 + 4;
    if bytes.len() < header + 8 {
        return Err(PersistError::Malformed("bundle shorter than header".into()));
    }
    if &bytes[..8] != BUNDLE_MAGIC {
        return Err(PersistError::BadMagic {
            what: "snapshot bundle",
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != BUNDLE_VERSION {
        return Err(PersistError::BadVersion(version));
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if stream_checksum(&bytes[..body_end]) != stored {
        return Err(PersistError::BadChecksum);
    }

    let mut at = header;
    let mut section = |magic: &[u8; 8]| -> PersistResult<&[u8]> {
        if body_end - at < 16 {
            return Err(PersistError::Malformed(format!(
                "truncated before section {}",
                String::from_utf8_lossy(magic)
            )));
        }
        if &bytes[at..at + 8] != magic {
            return Err(PersistError::Malformed(format!(
                "expected section {} found {}",
                String::from_utf8_lossy(magic),
                String::from_utf8_lossy(&bytes[at..at + 8])
            )));
        }
        let len = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("8 bytes"));
        if len > MAX_SECTION_LEN || len as usize > body_end - at - 16 {
            return Err(PersistError::Malformed(format!(
                "section {} length {len} is implausible",
                String::from_utf8_lossy(magic)
            )));
        }
        let payload = &bytes[at + 16..at + 16 + len as usize];
        at += 16 + len as usize;
        Ok(payload)
    };
    let meta = section(SECTION_META)?;
    let data = section(SECTION_DATA)?;
    let tidx = section(SECTION_TIDX)?;
    let graph = section(SECTION_GRPH)?;
    Ok(Sections {
        meta,
        data,
        tidx,
        graph,
    })
}

fn decode_bundle(bytes: &[u8], base_config: &BanksConfig) -> PersistResult<(Banks, BundleMeta)> {
    let sections = split_sections(bytes)?;
    let meta = decode_meta(sections.meta)?;
    // Checksum verified: decode the payloads. The three sections are
    // independent until the graph rebinds to the database, so on a
    // multi-core host the text index and graph decode on their own
    // threads while this one takes the database — restore wall-clock is
    // the *max* of the section costs, not their sum. A single-core host
    // decodes sequentially (spawning would only add overhead).
    let parallel = std::thread::available_parallelism().is_ok_and(|n| n.get() > 1);
    let (db, text_index, graph) = if parallel {
        let (db, text_index, graph) = std::thread::scope(|scope| {
            let tidx_handle = scope.spawn(|| binary::read_text_index(sections.tidx));
            let graph_handle = scope.spawn(|| banks_graph::snapshot::read_snapshot(sections.graph));
            let db = binary::read_database(sections.data);
            let text_index = tidx_handle.join().expect("text-index decode panicked");
            let graph = graph_handle.join().expect("graph decode panicked");
            (db, text_index, graph)
        });
        (db?, text_index?, graph?)
    } else {
        (
            binary::read_database(sections.data)?,
            binary::read_text_index(sections.tidx)?,
            banks_graph::snapshot::read_snapshot(sections.graph)?,
        )
    };
    let tuple_graph = TupleGraph::rebind(&db, graph)?;
    let mut config = base_config.clone();
    config.score = meta.score;
    config.graph = meta.graph.clone();
    let banks = Banks::from_parts(db, config, tuple_graph, text_index)?;
    Ok((banks, meta))
}

/// Deserialize a bundle, assembling a query-ready [`Banks`].
/// `base_config`'s score/graph sections are replaced by the bundle's
/// (see the module docs); everything else is kept.
pub fn read_bundle(
    mut input: impl Read,
    base_config: &BanksConfig,
) -> PersistResult<(Banks, BundleMeta)> {
    let mut bytes = Vec::new();
    input.read_to_end(&mut bytes)?;
    decode_bundle(&bytes, base_config)
}

/// Load a bundle from `path`: one sequential whole-file read, then an
/// in-memory zero-copy decode (see [`read_bundle`]).
pub fn load_bundle(path: &Path, base_config: &BanksConfig) -> PersistResult<(Banks, BundleMeta)> {
    let bytes = std::fs::read(path)?;
    decode_bundle(&bytes, base_config)
}

/// Summary of a bundle's sections, for `banks snapshot inspect`.
#[derive(Debug, Clone)]
pub struct BundleInfo {
    /// The meta section.
    pub meta: BundleMeta,
    /// Database name.
    pub database: String,
    /// Per-relation `(name, live tuple count)`.
    pub relations: Vec<(String, usize)>,
    /// Total live tuples.
    pub tuples: usize,
    /// Distinct tokens in the text index.
    pub tokens: usize,
    /// Total postings in the text index.
    pub postings: usize,
    /// Graph node count.
    pub nodes: usize,
    /// Graph edge count.
    pub edges: usize,
    /// Section payload sizes in bytes: `(meta, data, text, graph)`.
    pub section_bytes: (u64, u64, u64, u64),
    /// Total file size in bytes.
    pub file_bytes: u64,
}

/// Fully validate and summarize the bundle at `path` (decodes every
/// section, verifies the checksum — an `Ok` here means the bundle loads).
pub fn inspect_bundle(path: &Path) -> PersistResult<BundleInfo> {
    let bytes = std::fs::read(path)?;
    let sections = split_sections(&bytes)?;
    let meta = decode_meta(sections.meta)?;
    let db = binary::read_database(sections.data)?;
    let text_index = binary::read_text_index(sections.tidx)?;
    let graph = banks_graph::snapshot::read_snapshot(sections.graph)?;
    Ok(BundleInfo {
        database: db.name().to_string(),
        relations: db
            .relations()
            .map(|t| (t.schema().name.clone(), t.len()))
            .collect(),
        tuples: db.total_tuples(),
        tokens: text_index.distinct_tokens(),
        postings: text_index.posting_count(),
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        section_bytes: (
            sections.meta.len() as u64,
            sections.data.len() as u64,
            sections.tidx.len() as u64,
            sections.graph.len() as u64,
        ),
        file_bytes: bytes.len() as u64,
        meta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_storage::{ColumnType, Database, RelationSchema, Value};

    fn dblp() -> Database {
        let mut db = Database::new("dblp");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["AuthorId", "PaperId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (id, name) in [("MohanC", "C. Mohan"), ("SudarshanS", "S. Sudarshan")] {
            db.insert("Author", vec![Value::text(id), Value::text(name)])
                .unwrap();
        }
        db.insert(
            "Paper",
            vec![Value::text("P1"), Value::text("Transaction Recovery")],
        )
        .unwrap();
        for a in ["MohanC", "SudarshanS"] {
            db.insert("Writes", vec![Value::text(a), Value::text("P1")])
                .unwrap();
        }
        db
    }

    fn roundtrip(banks: &Banks, epoch: u64) -> (Banks, BundleMeta) {
        let mut buf = Vec::new();
        write_bundle(banks, epoch, &mut buf).unwrap();
        read_bundle(buf.as_slice(), &BanksConfig::default()).unwrap()
    }

    #[test]
    fn bundle_roundtrip_preserves_results_and_epoch() {
        let banks = Banks::new(dblp()).unwrap();
        let (restored, meta) = roundtrip(&banks, 17);
        assert_eq!(meta.epoch, 17);
        assert_eq!(meta.score, banks.config().score);
        let a = banks.search("mohan sudarshan").unwrap();
        let b = restored.search("mohan sudarshan").unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tree.signature(), y.tree.signature());
            assert!((x.relevance - y.relevance).abs() < 1e-12);
        }
        // Graph bit-equality.
        let (g, h) = (banks.tuple_graph().graph(), restored.tuple_graph().graph());
        assert_eq!(g.node_count(), h.node_count());
        assert_eq!(g.edge_count(), h.edge_count());
        for v in g.nodes() {
            assert_eq!(g.node_weight(v), h.node_weight(v));
            assert_eq!(
                g.out_edges(v).collect::<Vec<_>>(),
                h.out_edges(v).collect::<Vec<_>>()
            );
        }
        // Text index equality.
        assert_eq!(
            banks.text_index().posting_count(),
            restored.text_index().posting_count()
        );
    }

    #[test]
    fn bundle_carries_nondefault_ranking_params() {
        let mut config = BanksConfig::default();
        config.score.lambda = 0.7;
        config.score.combine = CombineMode::Multiplicative;
        config.score.edge_score = EdgeScoreMode::Linear;
        config.graph.default_similarity = 3.0;
        let banks = Banks::with_config(dblp(), config.clone()).unwrap();
        let mut buf = Vec::new();
        write_bundle(&banks, 1, &mut buf).unwrap();
        // Load under *default* base config: the bundle's params must win.
        let (restored, meta) = read_bundle(buf.as_slice(), &BanksConfig::default()).unwrap();
        assert_eq!(meta.score, config.score);
        assert_eq!(meta.graph, config.graph);
        assert_eq!(restored.config().score, config.score);
        assert_eq!(restored.config().graph, config.graph);
    }

    #[test]
    fn corruption_and_truncation_detected() {
        let banks = Banks::new(dblp()).unwrap();
        let mut buf = Vec::new();
        write_bundle(&banks, 3, &mut buf).unwrap();

        // Flip one byte anywhere in the payload region → checksum (or an
        // earlier structural check) must fire; never a silent wrong load.
        for at in [12usize, 40, buf.len() / 2, buf.len() - 20] {
            let mut bad = buf.clone();
            bad[at] ^= 0xff;
            assert!(
                read_bundle(bad.as_slice(), &BanksConfig::default()).is_err(),
                "flip at {at} must not load"
            );
        }
        // Truncation at a section boundary is an Io error, not a panic.
        let cut = buf.len() - 9;
        assert!(read_bundle(&buf[..cut], &BanksConfig::default()).is_err());
        // Wrong magic / version.
        assert!(matches!(
            read_bundle(&b"NOTABNDL________________"[..], &BanksConfig::default()),
            Err(PersistError::BadMagic { .. })
        ));
        let mut wrong_version = buf.clone();
        wrong_version[8] = 99;
        assert!(matches!(
            read_bundle(wrong_version.as_slice(), &BanksConfig::default()),
            Err(PersistError::BadVersion(99))
        ));
    }

    #[test]
    fn save_and_inspect_on_disk() {
        let banks = Banks::new(dblp()).unwrap();
        let dir = std::env::temp_dir().join(format!("banks_bundle_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.banks");
        save_bundle(&banks, 5, &path).unwrap();
        let info = inspect_bundle(&path).unwrap();
        assert_eq!(info.meta.epoch, 5);
        assert_eq!(info.database, "dblp");
        assert_eq!(info.tuples, 5);
        assert_eq!(info.nodes, 5);
        assert!(info.postings > 0);
        assert_eq!(info.relations.len(), 3);
        assert!(info.file_bytes > 0);
        let (restored, meta) = load_bundle(&path, &BanksConfig::default()).unwrap();
        assert_eq!(meta.epoch, 5);
        assert_eq!(restored.db().total_tuples(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
