//! Captures `git describe` at compile time so `/health` can report
//! exactly which build a node is running. Falls back to `"unknown"`
//! when git or the repository is unavailable (e.g. a source tarball).

use std::process::Command;

fn main() {
    let describe = Command::new("git")
        .args(["describe", "--tags", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=BANKS_GIT_DESCRIBE={describe}");
    // Re-run when HEAD moves so the describe string stays fresh.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    println!("cargo:rerun-if-changed=../../.git/refs");
}
