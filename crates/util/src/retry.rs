//! Shared retry policy: capped exponential backoff with full jitter,
//! a cross-call retry *budget*, and idempotency-aware classification.
//!
//! Every client in the workspace that talks to a peer over HTTP — the
//! router forwarding reads, the replica tailing its leader, `banks
//! ingest` posting batches — used to roll its own ad-hoc retry loop.
//! They now share this one, so backoff shape, jitter, and the "only
//! retry what cannot double-apply" rule are uniform and testable.
//!
//! Jitter is *full jitter* (AWS architecture blog): the sleep before
//! attempt `n` is uniform in `[0, min(cap, base·2ⁿ))`. Synchronized
//! clients recovering from one outage thereby spread out instead of
//! retrying in lockstep. The jitter stream is seeded, so a test that
//! fixes the seed observes exact sleep durations.
//!
//! The [`RetryBudget`] bounds retry *amplification* across calls: each
//! successful first attempt deposits a fraction of a token, each retry
//! withdraws a whole one. When a backend is hard-down the budget runs
//! dry and callers fail fast instead of multiplying load by the
//! per-call attempt count (retry-storm protection).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Outcome classification for one attempt, from the caller's
/// `classify` function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The attempt succeeded; stop.
    Success,
    /// The attempt failed in a way that is safe to retry (nothing
    /// reached the peer, or the peer rejected without applying).
    Retryable,
    /// The attempt failed and retrying could duplicate a server-side
    /// effect, or can never succeed; stop immediately.
    Fatal,
}

/// A capped-exponential-backoff retry policy with deterministic full
/// jitter.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum total attempts (first try included). `1` disables
    /// retries entirely.
    pub attempts: u32,
    /// Backoff before the first retry (scales by 2× per retry).
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Seed for the jitter stream; fix it in tests for exact sleeps.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(2),
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry number `retry` (0-based):
    /// uniform in `[0, min(cap, base·2^retry))`, drawn from `rng`.
    pub fn backoff(&self, retry: u32, rng: &mut u64) -> Duration {
        let ceiling = self
            .base
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX))
            .min(self.cap);
        let nanos = ceiling.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(xorshift64(rng) % nanos)
    }

    /// Run `op` until it succeeds, a fatal error occurs, attempts are
    /// exhausted, or the budget (when given) runs dry.
    ///
    /// `op` receives the 0-based attempt index and returns the result;
    /// `classify` maps an error to [`Outcome::Retryable`] or
    /// [`Outcome::Fatal`]; `on_retry` observes every sleep (for retry
    /// counters and logs) and may *lengthen* it — it returns the actual
    /// sleep to perform, letting callers honor a server-supplied
    /// `Retry-After` that exceeds the jittered backoff.
    pub fn run<T, E>(
        &self,
        budget: Option<&RetryBudget>,
        mut op: impl FnMut(u32) -> Result<T, E>,
        mut classify: impl FnMut(&E) -> Outcome,
        mut on_retry: impl FnMut(u32, &E, Duration) -> Duration,
    ) -> Result<T, E> {
        let mut rng = self.seed | 1;
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => {
                    if attempt == 0 {
                        if let Some(b) = budget {
                            b.deposit();
                        }
                    }
                    return Ok(v);
                }
                Err(e) => {
                    let out_of_tries = attempt + 1 >= self.attempts.max(1);
                    if classify(&e) != Outcome::Retryable
                        || out_of_tries
                        || budget.is_some_and(|b| !b.withdraw())
                    {
                        return Err(e);
                    }
                    let sleep = on_retry(attempt, &e, self.backoff(attempt, &mut rng));
                    if !sleep.is_zero() {
                        std::thread::sleep(sleep);
                    }
                    attempt += 1;
                }
            }
        }
    }
}

fn xorshift64(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Token scale: one retry token = this many internal units, so success
/// deposits can be a fraction of a token without floating point.
const TOKEN: u64 = 10;

/// A shared retry-token bucket bounding total retries across calls.
///
/// Starts full at `max_tokens`. Each retry withdraws one token; each
/// successful *first* attempt deposits a tenth of one (so sustained
/// health slowly refills the bucket, but a dead backend cannot be
/// hammered with `attempts × request-rate` retries).
#[derive(Debug)]
pub struct RetryBudget {
    units: AtomicU64,
    max_units: u64,
}

impl RetryBudget {
    /// A budget holding at most `max_tokens` retries, starting full.
    pub fn new(max_tokens: u64) -> RetryBudget {
        RetryBudget {
            units: AtomicU64::new(max_tokens * TOKEN),
            max_units: max_tokens * TOKEN,
        }
    }

    /// Take one retry token; `false` means the budget is dry and the
    /// caller must fail fast instead of retrying.
    pub fn withdraw(&self) -> bool {
        self.units
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |u| {
                u.checked_sub(TOKEN)
            })
            .is_ok()
    }

    /// Credit a successful first attempt (a tenth of a token).
    pub fn deposit(&self) {
        self.units
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |u| {
                Some((u + 1).min(self.max_units))
            })
            .ok();
    }

    /// Whole retry tokens currently available.
    pub fn available(&self) -> u64 {
        self.units.load(Ordering::Relaxed) / TOKEN
    }
}

/// Parse a `Retry-After: <seconds>` header value (the only form the
/// workspace's servers emit). `None` for absent or non-numeric values.
pub fn parse_retry_after(value: Option<&str>) -> Option<Duration> {
    value
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn no_sleep_policy(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 1,
        }
    }

    #[test]
    fn retries_until_success() {
        let calls = Cell::new(0u32);
        let result: Result<&str, &str> = no_sleep_policy(5).run(
            None,
            |_| {
                calls.set(calls.get() + 1);
                if calls.get() < 3 {
                    Err("transient")
                } else {
                    Ok("done")
                }
            },
            |_| Outcome::Retryable,
            |_, _, d| d,
        );
        assert_eq!(result, Ok("done"));
        assert_eq!(calls.get(), 3);
    }

    #[test]
    fn fatal_errors_stop_immediately() {
        let calls = Cell::new(0u32);
        let result: Result<(), &str> = no_sleep_policy(5).run(
            None,
            |_| {
                calls.set(calls.get() + 1);
                Err("poison")
            },
            |_| Outcome::Fatal,
            |_, _, d| d,
        );
        assert_eq!(result, Err("poison"));
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn attempts_bound_is_total_not_retries() {
        let calls = Cell::new(0u32);
        let _: Result<(), &str> = no_sleep_policy(4).run(
            None,
            |_| {
                calls.set(calls.get() + 1);
                Err("x")
            },
            |_| Outcome::Retryable,
            |_, _, d| d,
        );
        assert_eq!(calls.get(), 4);
    }

    #[test]
    fn backoff_doubles_and_caps_with_deterministic_jitter() {
        let policy = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(100),
            cap: Duration::from_millis(450),
            seed: 42,
        };
        let mut rng_a = policy.seed | 1;
        let mut rng_b = policy.seed | 1;
        for retry in 0..8 {
            let ceiling = Duration::from_millis((100u64 << retry).min(450));
            let a = policy.backoff(retry, &mut rng_a);
            let b = policy.backoff(retry, &mut rng_b);
            assert!(a < ceiling, "retry {retry}: {a:?} !< {ceiling:?}");
            assert_eq!(a, b, "same seed must jitter identically");
        }
    }

    #[test]
    fn budget_runs_dry_and_refills_on_success() {
        let budget = RetryBudget::new(2);
        assert!(budget.withdraw());
        assert!(budget.withdraw());
        assert!(!budget.withdraw(), "third retry must be denied");
        // 10 successes = 1 token.
        for _ in 0..10 {
            budget.deposit();
        }
        assert_eq!(budget.available(), 1);
        assert!(budget.withdraw());
    }

    #[test]
    fn run_respects_a_dry_budget() {
        let budget = RetryBudget::new(0);
        let calls = Cell::new(0u32);
        let _: Result<(), &str> = no_sleep_policy(5).run(
            Some(&budget),
            |_| {
                calls.set(calls.get() + 1);
                Err("x")
            },
            |_| Outcome::Retryable,
            |_, _, d| d,
        );
        assert_eq!(calls.get(), 1, "dry budget must fail fast");
    }

    #[test]
    fn on_retry_can_lengthen_the_sleep() {
        let calls = Cell::new(0u32);
        let started = std::time::Instant::now();
        let _: Result<(), &str> = no_sleep_policy(2).run(
            None,
            |_| {
                calls.set(calls.get() + 1);
                Err("x")
            },
            |_| Outcome::Retryable,
            |_, _, jittered| jittered.max(Duration::from_millis(60)),
        );
        assert_eq!(calls.get(), 2);
        assert!(started.elapsed() >= Duration::from_millis(60));
    }

    #[test]
    fn parses_retry_after_seconds() {
        assert_eq!(parse_retry_after(Some("2")), Some(Duration::from_secs(2)));
        assert_eq!(parse_retry_after(Some(" 1 ")), Some(Duration::from_secs(1)));
        assert_eq!(parse_retry_after(Some("soon")), None);
        assert_eq!(parse_retry_after(None), None);
    }
}
