//! Deterministic, seed-driven fault injection.
//!
//! A *fault point* is a named site in production code — a WAL fsync, a
//! bundle section read, an HTTP connect — that consults this registry
//! before doing its real work. When the `fault-injection` cargo feature
//! is **off** (the default), every hook in this module is an
//! `#[inline(always)]` empty function: release binaries contain no
//! registry, no branches, no strings. When the feature is **on**, each
//! armed point fires with a configured probability driven by its own
//! xorshift64 stream, so a given `(rate, seed)` pair produces the exact
//! same fire/no-fire sequence on every run — chaos tests are
//! reproducible, not flaky.
//!
//! Faults are armed two ways:
//!
//! * programmatically, via [`arm`] / [`clear`] (in-process tests);
//! * from the environment, via `BANKS_FAULTS` (real-process runs):
//!   a comma-separated list of `point:kind:rate:seed[:millis]` entries,
//!   e.g. `BANKS_FAULTS=wal.append.fsync:err:0.3:42,http.read:delay:1:7:250`.
//!   Kinds are `err`, `delay` (with a trailing millisecond field), and
//!   `torn` (partial write then error).
//!
//! ## Registered point names
//!
//! | point                  | site                                      |
//! |------------------------|-------------------------------------------|
//! | `wal.append.write`     | WAL frame write (supports `torn`)         |
//! | `wal.append.fsync`     | WAL fsync after append                    |
//! | `bundle.section.read`  | bundle section fetch                      |
//! | `pager.page_in`        | paged-CSR segment decode                  |
//! | `data.block.read`      | paged tuple-block read + decode           |
//! | `http.connect`         | client TCP connect                        |
//! | `http.read`            | client response read                      |

#[cfg(feature = "fault-injection")]
pub use imp::{arm, clear, fired, maybe_fault, torn_write};

/// What an armed fault point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Return `io::ErrorKind::Other` ("injected fault") from the hook.
    ReturnErr,
    /// Sleep for the given duration, then proceed normally.
    Delay(std::time::Duration),
    /// Truncate the write to a deterministic prefix, then error — the
    /// on-disk state looks like a crash mid-write. Only meaningful at
    /// points that pass a length to [`torn_write`].
    TornWrite,
}

#[cfg(feature = "fault-injection")]
mod imp {
    use super::FaultPoint;
    use std::collections::HashMap;
    use std::io;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    struct PointState {
        fault: FaultPoint,
        /// Firing probability in [0, 1].
        rate: f64,
        /// Private xorshift64 stream — each point's fire sequence is a
        /// pure function of its seed, independent of every other point.
        rng: u64,
        /// Times this point has fired (for test assertions).
        fires: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, PointState>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, PointState>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(parse_env(std::env::var("BANKS_FAULTS").ok())))
    }

    fn parse_env(spec: Option<String>) -> HashMap<String, PointState> {
        let mut map = HashMap::new();
        let Some(spec) = spec else { return map };
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let fields: Vec<&str> = entry.trim().split(':').collect();
            let parsed = (|| -> Option<(String, PointState)> {
                let [name, kind, rate, seed, rest @ ..] = fields.as_slice() else {
                    return None;
                };
                let rate: f64 = rate.parse().ok()?;
                let seed: u64 = seed.parse().ok()?;
                let fault = match *kind {
                    "err" => FaultPoint::ReturnErr,
                    "torn" => FaultPoint::TornWrite,
                    "delay" => {
                        let ms: u64 = rest.first()?.parse().ok()?;
                        FaultPoint::Delay(Duration::from_millis(ms))
                    }
                    _ => return None,
                };
                Some((name.to_string(), new_state(fault, rate, seed)))
            })();
            match parsed {
                Some((name, state)) => {
                    map.insert(name, state);
                }
                None => eprintln!("BANKS_FAULTS: ignoring malformed entry `{entry}`"),
            }
        }
        map
    }

    fn new_state(fault: FaultPoint, rate: f64, seed: u64) -> PointState {
        PointState {
            fault,
            rate: rate.clamp(0.0, 1.0),
            // xorshift64 cannot hold state 0.
            rng: seed | 1,
            fires: 0,
        }
    }

    fn xorshift64(x: &mut u64) -> u64 {
        *x ^= *x << 13;
        *x ^= *x >> 7;
        *x ^= *x << 17;
        *x
    }

    /// Arm (or re-arm, resetting the stream) a named fault point.
    pub fn arm(point: &str, fault: FaultPoint, rate: f64, seed: u64) {
        registry()
            .lock()
            .unwrap()
            .insert(point.to_string(), new_state(fault, rate, seed));
    }

    /// Disarm every fault point (tests call this between scenarios).
    pub fn clear() {
        registry().lock().unwrap().clear();
    }

    /// Times the named point has fired since it was armed.
    pub fn fired(point: &str) -> u64 {
        registry().lock().unwrap().get(point).map_or(0, |s| s.fires)
    }

    /// Roll the point's stream; `Some(fault)` when it fires this call.
    fn roll(point: &str) -> Option<FaultPoint> {
        let mut map = registry().lock().unwrap();
        let state = map.get_mut(point)?;
        let draw = xorshift64(&mut state.rng) as f64 / u64::MAX as f64;
        if draw < state.rate {
            state.fires += 1;
            Some(state.fault)
        } else {
            None
        }
    }

    fn injected_err(point: &str) -> io::Error {
        io::Error::other(format!("injected fault: {point}"))
    }

    /// The general hook: errors on `ReturnErr`, sleeps on `Delay`.
    /// `TornWrite` does not fire here — only [`torn_write`] sites
    /// understand partial writes.
    pub fn maybe_fault(point: &str) -> io::Result<()> {
        match roll(point) {
            Some(FaultPoint::ReturnErr) => Err(injected_err(point)),
            Some(FaultPoint::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(FaultPoint::TornWrite) | None => Ok(()),
        }
    }

    /// Hook for write sites that can be torn. `Some(prefix_len)` means
    /// the caller must write only the first `prefix_len` bytes of its
    /// `len`-byte payload and then fail, as if the process died
    /// mid-write. The prefix length is drawn from the same stream, so
    /// it is deterministic too. `ReturnErr`/`Delay` armed on the same
    /// point behave as in [`maybe_fault`] (reported via the `Err` arm).
    pub fn torn_write(point: &str, len: usize) -> io::Result<Option<usize>> {
        match roll(point) {
            Some(FaultPoint::TornWrite) => {
                let cut = registry()
                    .lock()
                    .unwrap()
                    .get_mut(point)
                    .map_or(0, |s| xorshift64(&mut s.rng) as usize);
                Ok(Some(if len == 0 { 0 } else { cut % len }))
            }
            Some(FaultPoint::ReturnErr) => Err(injected_err(point)),
            Some(FaultPoint::Delay(d)) => {
                std::thread::sleep(d);
                Ok(None)
            }
            None => Ok(None),
        }
    }

    #[cfg(test)]
    mod parse_tests {
        use super::*;

        #[test]
        fn parses_the_env_grammar() {
            let map = parse_env(Some(
                "wal.append.fsync:err:0.3:42, http.read:delay:1:7:250,bundle.section.read:torn:0.5:9"
                    .to_string(),
            ));
            assert_eq!(map.len(), 3);
            let fsync = &map["wal.append.fsync"];
            assert_eq!(fsync.fault, FaultPoint::ReturnErr);
            assert!((fsync.rate - 0.3).abs() < 1e-9);
            assert_eq!(
                map["http.read"].fault,
                FaultPoint::Delay(Duration::from_millis(250))
            );
            assert_eq!(map["bundle.section.read"].fault, FaultPoint::TornWrite);
        }

        #[test]
        fn malformed_entries_are_dropped_not_fatal() {
            let map = parse_env(Some(
                "good:err:1:1,missing-fields:err,bad-kind:boom:1:1,delay-no-ms:delay:1:1".into(),
            ));
            assert_eq!(map.len(), 1);
            assert!(map.contains_key("good"));
        }

        #[test]
        fn empty_and_absent_specs_arm_nothing() {
            assert!(parse_env(None).is_empty());
            assert!(parse_env(Some("  ".into())).is_empty());
        }
    }
}

/// No-op hook: compiles away entirely without `fault-injection`.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn maybe_fault(_point: &str) -> std::io::Result<()> {
    Ok(())
}

/// No-op hook: compiles away entirely without `fault-injection`.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn torn_write(_point: &str, _len: usize) -> std::io::Result<Option<usize>> {
    Ok(None)
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;
    use std::time::Duration;

    // The registry is process-global, so every test in this module runs
    // under one lock to avoid cross-test interference.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unarmed_points_never_fire() {
        let _g = serial();
        clear();
        for _ in 0..100 {
            assert!(maybe_fault("nothing.armed").is_ok());
        }
        assert_eq!(fired("nothing.armed"), 0);
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let _g = serial();
        clear();
        arm("t.always", FaultPoint::ReturnErr, 1.0, 9);
        arm("t.never", FaultPoint::ReturnErr, 0.0, 9);
        for _ in 0..50 {
            assert!(maybe_fault("t.always").is_err());
            assert!(maybe_fault("t.never").is_ok());
        }
        assert_eq!(fired("t.always"), 50);
        assert_eq!(fired("t.never"), 0);
    }

    #[test]
    fn same_seed_same_sequence() {
        let _g = serial();
        clear();
        let run = |seed: u64| -> Vec<bool> {
            arm("t.seq", FaultPoint::ReturnErr, 0.5, seed);
            (0..64).map(|_| maybe_fault("t.seq").is_err()).collect()
        };
        let a = run(1234);
        let b = run(1234);
        let c = run(99);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
    }

    #[test]
    fn torn_write_truncates_deterministically() {
        let _g = serial();
        clear();
        arm("t.torn", FaultPoint::TornWrite, 1.0, 77);
        let cut = torn_write("t.torn", 1000).unwrap().unwrap();
        assert!(cut < 1000);
        arm("t.torn", FaultPoint::TornWrite, 1.0, 77);
        assert_eq!(torn_write("t.torn", 1000).unwrap(), Some(cut));
        // A torn-armed point does not disturb plain hooks.
        assert!(maybe_fault("t.torn").is_ok());
        clear();
    }

    #[test]
    fn delay_faults_sleep_then_succeed() {
        let _g = serial();
        clear();
        arm(
            "t.delay",
            FaultPoint::Delay(Duration::from_millis(120)),
            1.0,
            7,
        );
        let before = std::time::Instant::now();
        assert!(maybe_fault("t.delay").is_ok());
        assert!(before.elapsed() >= Duration::from_millis(120));
        clear();
    }
}
