//! Build identity, stamped at compile time.
//!
//! `/health` on every role reports [`version`] so an operator can tell
//! which build a node is running — previously impossible once more than
//! one binary was deployed.

/// Workspace crate version (`CARGO_PKG_VERSION`).
pub const PKG_VERSION: &str = env!("CARGO_PKG_VERSION");

/// `git describe --tags --always --dirty` at build time, or
/// `"unknown"` outside a git checkout (see `build.rs`).
pub const GIT_DESCRIBE: &str = env!("BANKS_GIT_DESCRIBE");

/// Human-readable build identity: `<version>+<git describe>`.
pub fn version() -> String {
    format!("{PKG_VERSION}+{GIT_DESCRIBE}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn version_embeds_both_parts() {
        let v = super::version();
        assert!(v.starts_with(super::PKG_VERSION));
        assert!(v.contains('+'));
        assert!(!super::GIT_DESCRIBE.is_empty());
    }
}
