//! # banks-util
//!
//! Small dependency-free utilities shared across the BANKS workspace:
//!
//! * [`json`] — a JSON value tree with pretty/compact emission and a
//!   [`json::ToJson`] trait + [`json_struct!`] macro, standing in for
//!   `serde`/`serde_json` (the workspace builds with no network access,
//!   so crates.io dependencies are off the table);
//! * [`http`] — percent-decoding and query-string parsing for the
//!   `banks-server` std-only HTTP endpoint.

pub mod http;
pub mod json;

pub use json::{Json, ToJson};
