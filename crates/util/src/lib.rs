//! # banks-util
//!
//! Small dependency-free utilities shared across the BANKS workspace:
//!
//! * [`json`] — a JSON value tree with pretty/compact emission and a
//!   [`json::ToJson`] trait + [`json_struct!`] macro, standing in for
//!   `serde`/`serde_json` (the workspace builds with no network access,
//!   so crates.io dependencies are off the table);
//! * [`http`] — percent-decoding and query-string parsing for the
//!   `banks-server` std-only HTTP endpoint;
//! * [`fs`] — crash-safe atomic file replacement (temp file + fsync +
//!   rename), shared by graph snapshots and the `banks-persist`
//!   durability layer.

pub mod fs;
pub mod fxhash;
pub mod http;
pub mod json;

pub use fs::atomic_write;
pub use json::{Json, ToJson};
