//! # banks-util
//!
//! Small dependency-free utilities shared across the BANKS workspace:
//!
//! * [`json`] — a JSON value tree with pretty/compact emission and a
//!   [`json::ToJson`] trait + [`json_struct!`] macro, standing in for
//!   `serde`/`serde_json` (the workspace builds with no network access,
//!   so crates.io dependencies are off the table);
//! * [`http`] — percent-decoding and query-string parsing for the
//!   `banks-server` std-only HTTP endpoint;
//! * [`fs`] — crash-safe atomic file replacement (temp file + fsync +
//!   rename), shared by graph snapshots and the `banks-persist`
//!   durability layer;
//! * [`log`] — a leveled stderr logger with RFC 3339 timestamps and
//!   component tags (`BANKS_LOG` / `--log-level`), replacing the
//!   scattered `eprintln!` calls in the serving roles;
//! * [`build`] — compile-time build identity (crate version plus
//!   `git describe`) surfaced by every role's `/health`;
//! * [`retry`] — the shared retry policy (capped exponential backoff,
//!   full jitter, retry budget) used by every HTTP client in the
//!   workspace;
//! * [`fault`] — deterministic fault injection behind the
//!   `fault-injection` cargo feature (zero-cost no-ops otherwise).

pub mod build;
pub mod fault;
pub mod fs;
pub mod fxhash;
pub mod http;
pub mod json;
pub mod log;
pub mod retry;

pub use fs::atomic_write;
pub use json::{Json, ToJson};
