//! Minimal HTTP building blocks: percent-decoding and query-string
//! parsing, shared by the server and its tests.

/// Decode `%XX` escapes and `+`-as-space in a URL component.
///
/// Invalid escapes are passed through literally rather than erroring —
/// the server treats a malformed query as a search for the literal text.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(h), Some(l)) => {
                    out.push(h * 16 + l);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b? {
        c @ b'0'..=b'9' => Some(c - b'0'),
        c @ b'a'..=b'f' => Some(c - b'a' + 10),
        c @ b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Split a `k1=v1&k2=v2` query string into decoded pairs. Keys without a
/// value decode to an empty string.
pub fn parse_query_string(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// First value for `key` in a parsed query string.
pub fn query_param<'a>(params: &'a [(String, String)], key: &str) -> Option<&'a str> {
    params
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_escapes_plus_and_utf8() {
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("%C3%A9"), "é");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%ZZ"), "%ZZ");
    }

    #[test]
    fn parses_query_strings() {
        let params = parse_query_string("q=soumen+sunita&limit=5&flag");
        assert_eq!(query_param(&params, "q"), Some("soumen sunita"));
        assert_eq!(query_param(&params, "limit"), Some("5"));
        assert_eq!(query_param(&params, "flag"), Some(""));
        assert_eq!(query_param(&params, "missing"), None);
    }
}
