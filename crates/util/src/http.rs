//! Minimal HTTP building blocks: percent-decoding, query-string
//! parsing, and a tiny HTTP/1.1 client — shared by the server, the
//! replication tailer (`banks-replica`), the query router
//! (`banks-router`), and the CLI.
//!
//! The client speaks exactly the dialect the workspace's servers speak:
//! one request per connection (`Connection: close`), `Content-Length`
//! bodies, no chunked encoding. Keeping it here means every process in
//! a replication topology — leader, follower, router, CLI — frames
//! requests with the same code.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Decode `%XX` escapes and `+`-as-space in a URL component.
///
/// Invalid escapes are passed through literally rather than erroring —
/// the server treats a malformed query as a search for the literal text.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(h), Some(l)) => {
                    out.push(h * 16 + l);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b? {
        c @ b'0'..=b'9' => Some(c - b'0'),
        c @ b'a'..=b'f' => Some(c - b'a' + 10),
        c @ b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Split a `k1=v1&k2=v2` query string into decoded pairs. Keys without a
/// value decode to an empty string.
pub fn parse_query_string(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// First value for `key` in a parsed query string.
pub fn query_param<'a>(params: &'a [(String, String)], key: &str) -> Option<&'a str> {
    params
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Percent-encode a query-string value (RFC 3986 unreserved characters
/// pass through), so caller-supplied text cannot mangle a request line.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Strip an optional `http://` scheme and trailing `/` so flags accept
/// either `host:port` or `http://host:port` spellings of a peer address.
pub fn host_port(url: &str) -> &str {
    url.strip_prefix("http://")
        .unwrap_or(url)
        .trim_end_matches('/')
}

/// Why a client request failed — retry policy hangs off this split.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP connection could not be established (refused, unreachable,
    /// name resolution). **Nothing was sent**, so retrying can never
    /// duplicate a server-side effect.
    Connect(std::io::Error),
    /// I/O failed after the connection was up — bytes may have reached
    /// the server, so a non-idempotent request must not blindly retry.
    Io(std::io::Error),
    /// The peer answered with something that is not parseable HTTP/1.1.
    Malformed(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect: {e}"),
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Malformed(what) => write!(f, "malformed response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A parsed HTTP/1.1 response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Numeric status code (200, 409, …).
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, raw. May be binary (replication frames, bundles).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header value for `name` (case-insensitive lookup; stored
    /// names are already lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy — error bodies are always ASCII
    /// JSON in this workspace).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// One blocking HTTP/1.1 request over a fresh connection.
///
/// `addr` is `host:port` (or `http://host:port`). `timeout` bounds the
/// connect and each read/write syscall — a long-polling endpoint should
/// pass its poll window plus slack. The body is read to `Content-Length`
/// when present, else to EOF (the servers here always close).
pub fn http_request(
    addr: &str,
    method: &str,
    target: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> Result<HttpResponse, ClientError> {
    let addr = host_port(addr);
    crate::fault::maybe_fault("http.connect").map_err(ClientError::Connect)?;
    let sock = addr
        .to_socket_addrs()
        .map_err(ClientError::Connect)?
        .next()
        .ok_or_else(|| {
            ClientError::Connect(std::io::Error::other(format!("{addr}: no usable address")))
        })?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout).map_err(ClientError::Connect)?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(ClientError::Io)?;

    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(ClientError::Io)?;
    stream.write_all(body).map_err(ClientError::Io)?;
    stream.flush().map_err(ClientError::Io)?;

    crate::fault::maybe_fault("http.read").map_err(ClientError::Io)?;
    let mut raw = Vec::with_capacity(4 * 1024);
    stream.read_to_end(&mut raw).map_err(ClientError::Io)?;
    parse_response(&raw)
}

/// Response metadata for a streamed request: everything
/// [`HttpResponse`] carries except the body, which went to the sink.
#[derive(Debug)]
pub struct StreamedResponse {
    /// Numeric status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes written to the sink.
    pub body_bytes: u64,
}

impl StreamedResponse {
    /// First header value for `name` (stored names are lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Like [`http_request`], but the response body streams into `sink`
/// in fixed-size chunks instead of accumulating in memory — a follower
/// bootstrapping from a multi-gigabyte snapshot bundle writes it
/// straight to disk. The body is copied to `Content-Length` when
/// present, else to EOF; a short body against a declared length is
/// [`ClientError::Malformed`] (the sink then holds a truncated copy the
/// caller must discard).
pub fn http_request_to_writer(
    addr: &str,
    method: &str,
    target: &str,
    timeout: Duration,
    sink: &mut dyn Write,
) -> Result<StreamedResponse, ClientError> {
    let addr = host_port(addr);
    crate::fault::maybe_fault("http.connect").map_err(ClientError::Connect)?;
    let sock = addr
        .to_socket_addrs()
        .map_err(ClientError::Connect)?
        .next()
        .ok_or_else(|| {
            ClientError::Connect(std::io::Error::other(format!("{addr}: no usable address")))
        })?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout).map_err(ClientError::Connect)?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(ClientError::Io)?;

    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    );
    stream.write_all(head.as_bytes()).map_err(ClientError::Io)?;
    stream.flush().map_err(ClientError::Io)?;

    // Read until the header terminator; whatever follows it in the same
    // chunk is the body's first bytes.
    crate::fault::maybe_fault("http.read").map_err(ClientError::Io)?;
    let mut head_buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 64 * 1024];
    let head_end = loop {
        if let Some(at) = head_buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break at;
        }
        if head_buf.len() > 64 * 1024 {
            return Err(ClientError::Malformed("unbounded header block".into()));
        }
        let n = stream.read(&mut chunk).map_err(ClientError::Io)?;
        if n == 0 {
            return Err(ClientError::Malformed("no header terminator".into()));
        }
        head_buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&head_buf[..head_end])
        .map_err(|_| ClientError::Malformed("non-UTF-8 header block".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| ClientError::Malformed("empty response".into()))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Malformed(format!("bad status line `{status_line}`")))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let content_length: Option<u64> = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok());

    let mut written: u64 = 0;
    let mut push = |bytes: &[u8], written: &mut u64| -> Result<bool, ClientError> {
        // Never write past a declared length — trailing bytes from a
        // late-closing peer must not land in the sink.
        let take = match content_length {
            Some(len) => (len - *written).min(bytes.len() as u64) as usize,
            None => bytes.len(),
        };
        sink.write_all(&bytes[..take]).map_err(ClientError::Io)?;
        *written += take as u64;
        Ok(content_length.is_some_and(|len| *written >= len))
    };
    let mut done = push(&head_buf[head_end + 4..], &mut written)?;
    while !done {
        let n = stream.read(&mut chunk).map_err(ClientError::Io)?;
        if n == 0 {
            if let Some(len) = content_length {
                if written < len {
                    return Err(ClientError::Malformed(format!(
                        "body truncated: {written} of {len} bytes"
                    )));
                }
            }
            break;
        }
        done = push(&chunk[..n], &mut written)?;
    }
    sink.flush().map_err(ClientError::Io)?;
    Ok(StreamedResponse {
        status,
        headers,
        body_bytes: written,
    })
}

/// Split a raw HTTP/1.1 response into status, headers, and body.
pub fn parse_response(raw: &[u8]) -> Result<HttpResponse, ClientError> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| ClientError::Malformed("no header terminator".into()))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| ClientError::Malformed("non-UTF-8 header block".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| ClientError::Malformed("empty response".into()))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Malformed(format!("bad status line `{status_line}`")))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let mut body = raw[head_end + 4..].to_vec();
    // Trust Content-Length when present: a peer that closes late must
    // not leave trailing bytes glued onto the body.
    if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        if body.len() < len {
            return Err(ClientError::Malformed(format!(
                "body truncated: {} of {len} bytes",
                body.len()
            )));
        }
        body.truncate(len);
    }
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_escapes_plus_and_utf8() {
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("%C3%A9"), "é");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%ZZ"), "%ZZ");
    }

    #[test]
    fn parses_query_strings() {
        let params = parse_query_string("q=soumen+sunita&limit=5&flag");
        assert_eq!(query_param(&params, "q"), Some("soumen sunita"));
        assert_eq!(query_param(&params, "limit"), Some("5"));
        assert_eq!(query_param(&params, "flag"), Some(""));
        assert_eq!(query_param(&params, "missing"), None);
    }

    #[test]
    fn encodes_round_trip() {
        assert_eq!(percent_encode("1753880000"), "1753880000");
        assert_eq!(percent_encode("a b&c=d"), "a%20b%26c%3Dd");
        assert_eq!(percent_decode(&percent_encode("é ~x_1")), "é ~x_1");
    }

    #[test]
    fn host_port_strips_scheme_and_slash() {
        assert_eq!(host_port("http://127.0.0.1:7331/"), "127.0.0.1:7331");
        assert_eq!(host_port("127.0.0.1:7331"), "127.0.0.1:7331");
    }

    #[test]
    fn parses_responses() {
        let resp = parse_response(
            b"HTTP/1.1 409 Conflict\r\nContent-Type: application/json\r\nRetry-After: 1\r\nContent-Length: 13\r\n\r\n{\"error\":\"x\"}",
        )
        .unwrap();
        assert_eq!(resp.status, 409);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.header("Retry-After"), Some("1"));
        assert_eq!(resp.text(), r#"{"error":"x"}"#);

        // Binary body, length respected even with trailing garbage.
        let resp = parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\n\x00\x01\x02junk")
            .unwrap();
        assert_eq!(resp.body, vec![0, 1, 2]);

        // Truncated body is an error, not a silent short read.
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\nabc").is_err());
        assert!(parse_response(b"garbage").is_err());
    }

    #[test]
    fn streams_body_to_writer() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let body: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let expected = body.clone();
        let handle = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = sock.read(&mut buf);
            let head = format!(
                "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nX-Banks-Epoch: 7\r\n\r\n",
                body.len()
            );
            sock.write_all(head.as_bytes()).unwrap();
            sock.write_all(&body).unwrap();
            // Trailing garbage past Content-Length must not reach the sink.
            let _ = sock.write_all(b"junk");
        });
        let mut sink = Vec::new();
        let resp = http_request_to_writer(
            &addr.to_string(),
            "GET",
            "/replication/snapshot",
            Duration::from_secs(5),
            &mut sink,
        )
        .unwrap();
        handle.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("X-Banks-Epoch"), Some("7"));
        assert_eq!(resp.body_bytes, expected.len() as u64);
        assert_eq!(sink, expected);
    }

    #[test]
    fn connect_refused_is_typed() {
        // Port 1 on loopback is essentially never listening.
        let err = http_request(
            "127.0.0.1:1",
            "GET",
            "/health",
            None,
            Duration::from_millis(300),
        )
        .unwrap_err();
        assert!(matches!(err, ClientError::Connect(_)), "{err}");
    }
}
