//! A small, fast, non-cryptographic hasher, shared across the workspace.
//!
//! The search algorithm allocates one distance map and one parent map per
//! shortest-path iterator, and a metadata-heavy query can spawn thousands of
//! iterators (§7 of the paper discusses exactly this blow-up); the storage
//! layer hashes a primary key per insert/lookup and rebuilds whole key
//! indexes when a binary snapshot restores. SipHash — the std default —
//! dominates profiles in both places, so we use the classic
//! multiply-rotate "Fx" construction (as popularized by the Rust compiler's
//! `rustc-hash`). HashDoS resistance is irrelevant: keys are internal node
//! ids, rids, and catalog-validated key values, never attacker-chosen at
//! hash-flooding scale.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fibonacci-style multiplicative constant (2^64 / φ).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, "v");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential ids must not collapse to sequential buckets; check the
        // low bits differ across a small run.
        let lows: FxHashSet<u64> = (0..64u64)
            .map(|i| {
                let mut h = FxHasher::default();
                h.write_u64(i);
                h.finish() & 0xff
            })
            .collect();
        assert!(lows.len() > 32, "low bits too clustered: {}", lows.len());
    }

    #[test]
    fn byte_stream_matches_chunked_writes() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(a.finish(), b.finish());
    }
}
