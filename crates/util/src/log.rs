//! A tiny leveled logger for operational output.
//!
//! One line per event on stderr, machine-parseable:
//!
//! ```text
//! 2026-08-08T12:34:56.789Z INFO  [serve] listening on 127.0.0.1:7001
//! ```
//!
//! The level defaults to `info`, can be seeded from the `BANKS_LOG`
//! environment variable (`error|warn|info|debug`), and overridden with
//! [`set_level`] (the `--log-level` flag). Filtering is one relaxed
//! atomic load, so disabled levels cost almost nothing. Timestamps are
//! RFC 3339 UTC with millisecond precision, derived from
//! `SystemTime` without any date-time dependency.

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The process cannot do what was asked of it.
    Error = 0,
    /// Degraded but continuing (failed probe, retried fetch).
    Warn = 1,
    /// Normal operational milestones (listening, epoch published).
    Info = 2,
    /// High-volume diagnostics.
    Debug = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN ",
            Level::Info => "INFO ",
            Level::Debug => "DEBUG",
        }
    }

    /// Parse a level name (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// 255 = not yet initialized from `BANKS_LOG`.
const UNINIT: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

/// Current level, initializing from `BANKS_LOG` (default `info`) on
/// first use.
pub fn level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw != UNINIT {
        return decode(raw);
    }
    let initial = std::env::var("BANKS_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(Level::Info);
    // Racing first calls agree on the same env value; a concurrent
    // set_level wins via the compare_exchange failure path.
    let _ = LEVEL.compare_exchange(UNINIT, initial as u8, Ordering::Relaxed, Ordering::Relaxed);
    decode(LEVEL.load(Ordering::Relaxed))
}

fn decode(raw: u8) -> Level {
    match raw {
        0 => Level::Error,
        1 => Level::Warn,
        3 => Level::Debug,
        _ => Level::Info,
    }
}

/// Override the level (e.g. from `--log-level`).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether `level` would currently be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    level <= self::level()
}

/// Emit one log line. Prefer the [`log_error!`](crate::log_error),
/// [`log_warn!`](crate::log_warn), [`log_info!`](crate::log_info), and
/// [`log_debug!`](crate::log_debug) macros, which skip argument
/// formatting when the level is filtered.
pub fn write(level: Level, component: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    eprintln!("{} {} [{component}] {args}", rfc3339_now(), level.as_str());
}

/// Current wall-clock time as `YYYY-MM-DDTHH:MM:SS.mmmZ`.
pub fn rfc3339_now() -> String {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    rfc3339_from_unix_ms(now.as_millis() as u64)
}

/// Format milliseconds-since-epoch as RFC 3339 UTC.
pub fn rfc3339_from_unix_ms(unix_ms: u64) -> String {
    let secs = (unix_ms / 1000) as i64;
    let millis = (unix_ms % 1000) as u32;
    let days = secs.div_euclid(86_400);
    let tod = secs.rem_euclid(86_400) as u32;
    let (year, month, day) = civil_from_days(days);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        tod / 3600,
        tod / 60 % 60,
        tod % 60
    )
}

/// Gregorian date from days since 1970-01-01 (Howard Hinnant's
/// `civil_from_days`, restricted to the u64 unix-ms range we feed it).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Log at `ERROR`: `log_error!("serve", "bind failed: {e}")`.
#[macro_export]
macro_rules! log_error {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::write($crate::log::Level::Error, $component, format_args!($($arg)*));
        }
    };
}

/// Log at `WARN`.
#[macro_export]
macro_rules! log_warn {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::write($crate::log::Level::Warn, $component, format_args!($($arg)*));
        }
    };
}

/// Log at `INFO`.
#[macro_export]
macro_rules! log_info {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::write($crate::log::Level::Info, $component, format_args!($($arg)*));
        }
    };
}

/// Log at `DEBUG`.
#[macro_export]
macro_rules! log_debug {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::write($crate::log::Level::Debug, $component, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc3339_known_instants() {
        assert_eq!(rfc3339_from_unix_ms(0), "1970-01-01T00:00:00.000Z");
        // 2026-08-08T00:00:00Z.
        assert_eq!(
            rfc3339_from_unix_ms(1_786_147_200_000),
            "2026-08-08T00:00:00.000Z"
        );
        // Leap-year boundary: 2024-02-29T23:59:59.999Z.
        assert_eq!(
            rfc3339_from_unix_ms(1_709_251_199_999),
            "2024-02-29T23:59:59.999Z"
        );
    }

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn set_level_filters() {
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Info);
        assert!(enabled(Level::Info));
    }
}
