//! JSON values and emission.
//!
//! The evaluation binaries and the query server both emit JSON. Instead
//! of depending on `serde`, reports build a [`Json`] tree — via manual
//! construction or the [`crate::json_struct!`] macro — and render it
//! with [`Json::pretty`] or [`Json::compact`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer (emitted without a decimal point).
    Int(i64),
    /// Unsigned integer (counters can exceed `i64`).
    Uint(u64),
    /// Floating-point number; non-finite values emit as `null`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Render without whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, level: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Uint(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, level, '[', ']', items.len(), |out, i, level| {
                items[i].write(out, level)
            }),
            Json::Obj(pairs) => write_seq(out, level, '{', '}', pairs.len(), |out, i, level| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if level.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, level)
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    level: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = level.map(|l| l + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(l) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(l));
        }
        item(out, i, inner);
    }
    if let Some(l) = level {
        out.push('\n');
        out.push_str(&"  ".repeat(l));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

/// Render any [`ToJson`] value with indentation — the drop-in equivalent
/// of `serde_json::to_string_pretty` for this workspace.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().pretty()
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

macro_rules! int_to_json {
    (signed: $($s:ty),* ; unsigned: $($u:ty),*) => {
        $(impl ToJson for $s {
            fn to_json(&self) -> Json { Json::Int(*self as i64) }
        })*
        $(impl ToJson for $u {
            fn to_json(&self) -> Json { Json::Uint(*self as u64) }
        })*
    };
}

int_to_json!(signed: i8, i16, i32, i64, isize ; unsigned: u8, u16, u32, u64, usize);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// Implement [`ToJson`] for a struct by listing its fields:
///
/// ```
/// use banks_util::json_struct;
///
/// struct Point { x: f64, y: f64 }
/// json_struct!(Point { x, y });
///
/// let json = banks_util::json::to_string_pretty(&Point { x: 1.0, y: 2.0 });
/// assert!(json.contains("\"x\": 1"));
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $( (stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field)) ),+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.compact(), "null");
        assert_eq!(Json::Bool(true).compact(), "true");
        assert_eq!(Json::Int(-3).compact(), "-3");
        assert_eq!(Json::Uint(u64::MAX).compact(), u64::MAX.to_string());
        assert_eq!(Json::Num(1.5).compact(), "1.5");
        assert_eq!(Json::Num(f64::NAN).compact(), "null");
    }

    #[test]
    fn strings_escape() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(s.compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_indents_nested_structures() {
        let v = Json::obj([
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("e", Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"e\": []\n}\n"
        );
        assert_eq!(v.compact(), r#"{"xs":[1,2],"e":[]}"#);
    }

    #[test]
    fn json_struct_macro_lists_fields() {
        struct R {
            id: String,
            n: usize,
            xs: Vec<f64>,
        }
        json_struct!(R { id, n, xs });
        let r = R {
            id: "q1".into(),
            n: 2,
            xs: vec![0.5],
        };
        assert_eq!(r.to_json().compact(), r#"{"id":"q1","n":2,"xs":[0.5]}"#);
    }
}
