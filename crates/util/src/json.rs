//! JSON values, emission, and parsing.
//!
//! The evaluation binaries and the query server both emit JSON. Instead
//! of depending on `serde`, reports build a [`Json`] tree — via manual
//! construction or the [`crate::json_struct!`] macro — and render it
//! with [`Json::pretty`] or [`Json::compact`]. The ingestion path reads
//! JSON back with [`Json::parse`], a small recursive-descent parser
//! covering the full value grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer (emitted without a decimal point).
    Int(i64),
    /// Unsigned integer (counters can exceed `i64`).
    Uint(u64),
    /// Floating-point number; non-finite values emit as `null`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Render without whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Parse JSON text into a [`Json`] tree.
    ///
    /// Accepts the full value grammar (RFC 8259): nested objects and
    /// arrays, string escapes including `\uXXXX` (with surrogate
    /// pairs), and numbers — integers that fit `i64`/`u64` parse to
    /// [`Json::Int`]/[`Json::Uint`], everything else to [`Json::Num`].
    /// Trailing non-whitespace after the value is an error.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Member lookup on an object (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Unsigned integer content (accepts `Int`/`Uint` in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Numeric content widened to `f64` (accepts `Int`/`Uint`/`Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Uint(u) => Some(*u as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, level: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Uint(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, level, '[', ']', items.len(), |out, i, level| {
                items[i].write(out, level)
            }),
            Json::Obj(pairs) => write_seq(out, level, '{', '}', pairs.len(), |out, i, level| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if level.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, level)
            }),
        }
    }
}

/// A JSON parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset in the input where the problem was detected.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Nesting limit: deeper input is rejected rather than risking a stack
/// overflow on adversarial payloads (the server parses client bodies).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonParseError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("bad \\u escape")),
            };
            v = v << 4 | d as u16;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let c =
                                    0x10000 + ((hi as u32 - 0xd800) << 10) + (lo as u32 - 0xdc00);
                                char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("lone surrogate"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::Uint(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonParseError {
                message: format!("bad number `{text}`"),
                offset: start,
            })
    }
}

fn write_seq(
    out: &mut String,
    level: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = level.map(|l| l + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(l) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(l));
        }
        item(out, i, inner);
    }
    if let Some(l) = level {
        out.push('\n');
        out.push_str(&"  ".repeat(l));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

/// Render any [`ToJson`] value with indentation — the drop-in equivalent
/// of `serde_json::to_string_pretty` for this workspace.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().pretty()
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

macro_rules! int_to_json {
    (signed: $($s:ty),* ; unsigned: $($u:ty),*) => {
        $(impl ToJson for $s {
            fn to_json(&self) -> Json { Json::Int(*self as i64) }
        })*
        $(impl ToJson for $u {
            fn to_json(&self) -> Json { Json::Uint(*self as u64) }
        })*
    };
}

int_to_json!(signed: i8, i16, i32, i64, isize ; unsigned: u8, u16, u32, u64, usize);

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// Implement [`ToJson`] for a struct by listing its fields:
///
/// ```
/// use banks_util::json_struct;
///
/// struct Point { x: f64, y: f64 }
/// json_struct!(Point { x, y });
///
/// let json = banks_util::json::to_string_pretty(&Point { x: 1.0, y: 2.0 });
/// assert!(json.contains("\"x\": 1"));
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $( (stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field)) ),+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.compact(), "null");
        assert_eq!(Json::Bool(true).compact(), "true");
        assert_eq!(Json::Int(-3).compact(), "-3");
        assert_eq!(Json::Uint(u64::MAX).compact(), u64::MAX.to_string());
        assert_eq!(Json::Num(1.5).compact(), "1.5");
        assert_eq!(Json::Num(f64::NAN).compact(), "null");
    }

    #[test]
    fn strings_escape() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(s.compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn pretty_indents_nested_structures() {
        let v = Json::obj([
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("e", Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"e\": []\n}\n"
        );
        assert_eq!(v.compact(), r#"{"xs":[1,2],"e":[]}"#);
    }

    #[test]
    fn parse_roundtrips_compact_output() {
        let v = Json::obj([
            ("name", Json::Str("a \"quoted\" value\n".into())),
            ("n", Json::Int(-42)),
            ("big", Json::Uint(u64::MAX)),
            ("x", Json::Num(1.5)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "xs",
                Json::Arr(vec![Json::Int(1), Json::Arr(vec![]), Json::obj([])]),
            ),
        ]);
        assert_eq!(Json::parse(&v.compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parse_escapes_and_unicode() {
        assert_eq!(
            Json::parse(r#""a\u0041\n\t\u00e9""#).unwrap(),
            Json::Str("aA\n\té".into())
        );
        // Surrogate pair → one astral scalar.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        // Raw UTF-8 passes through.
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::Uint(u64::MAX)
        );
        assert_eq!(Json::parse("1.25e2").unwrap(), Json::Num(125.0));
        assert_eq!(Json::parse("-0.5").unwrap(), Json::Num(-0.5));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"abc",
            "1 2",
            "{,}",
            "\"\\q\"",
            "nul",
            "[1 2]",
            "\"\\ud800x\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = Json::parse("[true, nope]").unwrap_err();
        assert!(err.to_string().contains("byte"), "{err}");
    }

    #[test]
    fn parse_depth_limited() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":[true],"d":2.5}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(v.get("d").and_then(Json::as_f64), Some(2.5));
        assert_eq!(
            v.get("c")
                .and_then(Json::as_arr)
                .and_then(|a| a[0].as_bool()),
            Some(true)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
    }

    #[test]
    fn json_struct_macro_lists_fields() {
        struct R {
            id: String,
            n: usize,
            xs: Vec<f64>,
        }
        json_struct!(R { id, n, xs });
        let r = R {
            id: "q1".into(),
            n: 2,
            xs: vec![0.5],
        };
        assert_eq!(r.to_json().compact(), r#"{"id":"q1","n":2,"xs":[0.5]}"#);
    }
}
