//! Crash-safe file writing.
//!
//! Every durable artifact in the workspace — graph snapshots, the
//! full-system snapshot bundles and write-ahead log of `banks-persist` —
//! must never be observable half-written: a crash mid-write may leave
//! garbage behind a *temporary* name, but a file at its final path is
//! either the complete old version or the complete new one.
//!
//! [`atomic_write`] implements the standard recipe: write to a unique
//! sibling temp file, `fsync` it, `rename` over the destination (atomic
//! on POSIX), then `fsync` the parent directory so the rename itself
//! survives a power cut. Directory syncing is best-effort on platforms
//! where directories cannot be opened (Windows); the rename is still
//! atomic there.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Atomically replace `path` with the bytes produced by `fill`.
///
/// `fill` receives a buffered writer for the temp file. If it errors —
/// or any syscall along the way does — the temp file is removed and the
/// destination is untouched.
pub fn atomic_write<F>(path: &Path, fill: F) -> io::Result<()>
where
    F: FnOnce(&mut BufWriter<File>) -> io::Result<()>,
{
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp = path.with_extension(format!(
        "tmp.{}.{:x}",
        std::process::id(),
        // A per-call cookie so two threads writing the same path never
        // share a temp file (the loser's rename still wins atomically).
        &fill as *const F as usize
    ));
    let result = (|| {
        let file = File::create(&tmp)?;
        let mut writer = BufWriter::new(file);
        fill(&mut writer)?;
        writer.flush()?;
        writer.get_ref().sync_all()?;
        drop(writer);
        fs::rename(&tmp, path)?;
        if let Some(dir) = dir {
            sync_dir(dir);
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Best-effort `fsync` of a directory (makes a completed rename durable).
pub fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("banks_fs_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("replace");
        let path = dir.join("data.bin");
        atomic_write(&path, |w| w.write_all(b"first")).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, |w| w.write_all(b"second version")).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second version");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_fill_leaves_destination_and_no_temp() {
        let dir = tmp_dir("fail");
        let path = dir.join("data.bin");
        atomic_write(&path, |w| w.write_all(b"keep me")).unwrap();
        let err = atomic_write(&path, |w| {
            w.write_all(b"partial")?;
            Err(io::Error::other("simulated failure"))
        })
        .unwrap_err();
        assert!(err.to_string().contains("simulated"));
        assert_eq!(fs::read(&path).unwrap(), b"keep me");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be cleaned up");
        fs::remove_dir_all(&dir).ok();
    }
}
