//! # banks-replica
//!
//! WAL-shipping replication: run a **follower** that serves the same
//! epochs as a leader `banks serve --data-dir` process, fed entirely
//! over the leader's ordinary HTTP surface.
//!
//! The paper's BANKS is a single-process research prototype; the PR-3
//! durability layer already pinned down the two artifacts a replica
//! needs — a full-system **snapshot bundle** and a checksummed,
//! epoch-stamped **write-ahead log** — and this crate ships both across
//! the network *verbatim*:
//!
//! 1. **Bootstrap** — a fresh follower streams the leader's newest
//!    bundle (`GET /replication/snapshot`) straight to a temp file in
//!    its data directory — never buffered in memory, so a follower
//!    under a `--paged` memory budget can bootstrap from a bundle
//!    bigger than that budget — peeks the epoch out of the meta
//!    section, renames it to the exact `snapshot-<epoch>` name local
//!    recovery expects, and opens it with the same
//!    [`banks_persist::load_bundle`] / [`banks_persist::open_bundle_paged`]
//!    used by local recovery. A follower whose directory already
//!    recovers simply resumes from the local epoch — no download (see
//!    [`ReplicaStats::snapshots_downloaded`]).
//! 2. **Tail** — a long-poll loop on
//!    `GET /replication/wal?from_epoch=N&wait_ms=M` streams raw WAL
//!    frames (the on-disk byte format, unmodified). Bodies are parsed
//!    with [`banks_persist::scan_frames`] — the exact decoder recovery
//!    uses — and each batch replays through an ordinary
//!    [`SnapshotPublisher`] whose durability hook appends to the
//!    *follower's* WAL. Epochs, caches, `/stats`, and ranked answers
//!    therefore behave bit-identically to the leader, and a follower
//!    restart recovers from its own directory and resumes tailing
//!    where it left off.
//! 3. **Re-bootstrap** — if the leader compacted past the follower's
//!    epoch it answers `410 Gone`; the follower downloads a fresh
//!    bundle and swaps it in, atomically from the reader's view.
//!
//! Every `/replication/*` response carries the leader's durable epoch
//! in an `X-Banks-Epoch` header; the follower mirrors it into
//! [`banks_server::QueryService::note_leader_epoch`] so `/stats`
//! reports `epoch_lag` even while the log is idle.

use banks_core::{Banks, BanksConfig};
use banks_ingest::SnapshotPublisher;
use banks_persist::{
    load_bundle, open_bundle_paged, peek_epoch, scan_frames, snapshot_file, PersistOptions,
    PersistentStore,
};
use banks_server::{QueryService, ServiceConfig};
use banks_util::http::{http_request, http_request_to_writer, ClientError, HttpResponse};
use banks_util::retry::{Outcome, RetryPolicy};
use std::io::BufWriter;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How a follower connects to and paces its leader.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Leader base address (`host:port`; an `http://` prefix is fine).
    pub leader: String,
    /// The follower's own durable directory (bundle + tailed WAL).
    pub data_dir: PathBuf,
    /// Long-poll window passed as `wait_ms` on the WAL feed. The leader
    /// parks the request until an epoch lands or the window expires, so
    /// this is the idle-traffic knob, not a latency one.
    pub poll_wait_ms: u64,
    /// Slack added on top of the poll window for the request timeout.
    pub request_slack: Duration,
    /// Timeout for a snapshot download (bundles are big).
    pub snapshot_timeout: Duration,
    /// Base backoff after a leader error; doubles per consecutive
    /// failure, capped at [`MAX_BACKOFF`].
    pub retry_backoff: Duration,
    /// Bootstrap attempts before `start` gives up (the leader may still
    /// be coming up when the follower starts).
    pub bootstrap_attempts: u32,
    /// Durability options for the follower's own store.
    pub options: PersistOptions,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            leader: "127.0.0.1:7331".to_string(),
            data_dir: PathBuf::from("banks-follower"),
            poll_wait_ms: 10_000,
            request_slack: Duration::from_secs(5),
            snapshot_timeout: Duration::from_secs(30),
            retry_backoff: Duration::from_millis(200),
            bootstrap_attempts: 20,
            options: PersistOptions::default(),
        }
    }
}

/// Ceiling for the doubling retry backoff.
pub const MAX_BACKOFF: Duration = Duration::from_secs(5);

/// Why a follower could not start (the tail loop itself never dies —
/// it retries, re-bootstraps, or waits for shutdown).
#[derive(Debug)]
pub enum ReplicaError {
    /// The leader was unreachable or answered garbage during bootstrap.
    Leader(String),
    /// The local data directory failed.
    Persist(banks_persist::PersistError),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Leader(msg) => write!(f, "leader: {msg}"),
            ReplicaError::Persist(e) => write!(f, "data dir: {e}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<banks_persist::PersistError> for ReplicaError {
    fn from(e: banks_persist::PersistError) -> Self {
        ReplicaError::Persist(e)
    }
}

/// Point-in-time replication counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Bundles fetched over HTTP (bootstrap + re-bootstraps). A restart
    /// that resumes from local state does **not** increment this.
    pub snapshots_downloaded: u64,
    /// WAL batches replayed off the feed.
    pub batches_applied: u64,
    /// Raw frame bytes received on the feed.
    pub frame_bytes: u64,
    /// 410-triggered (or divergence-triggered) full re-bootstraps.
    pub rebootstraps: u64,
    /// Failed leader requests (connect, timeout, non-200 statuses).
    pub leader_errors: u64,
    /// Backoff windows slept under the shared retry policy (bootstrap
    /// retries + tail-loop error naps).
    pub retries: u64,
    /// The follower's current serving epoch.
    pub epoch: u64,
    /// The leader's durable epoch as last observed, if ever.
    pub leader_epoch: Option<u64>,
    /// Most recent leader/apply error, for operators.
    pub last_error: Option<String>,
}

/// Counters + shutdown flag shared with the tail thread.
#[derive(Default)]
struct Shared {
    shutdown: AtomicBool,
    snapshots_downloaded: AtomicU64,
    batches_applied: AtomicU64,
    frame_bytes: AtomicU64,
    rebootstraps: AtomicU64,
    leader_errors: AtomicU64,
    retries: AtomicU64,
    last_error: Mutex<Option<String>>,
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn note_error(&self, msg: String) {
        self.leader_errors.fetch_add(1, Ordering::Relaxed);
        *self.last_error.lock().expect("last error lock") = Some(msg);
    }

    /// Shutdown-aware sleep: naps in short slices so `shutdown()` never
    /// waits out a full backoff.
    fn pause(&self, duration: Duration) {
        let mut left = duration;
        while !self.is_shutdown() && !left.is_zero() {
            let nap = left.min(Duration::from_millis(50));
            std::thread::sleep(nap);
            left = left.saturating_sub(nap);
        }
    }
}

/// A running follower: its query service (serve it, search it) plus the
/// background tail thread. Dropping it stops the thread.
pub struct Replica {
    service: Arc<QueryService>,
    store: Arc<PersistentStore>,
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Replica {
    /// Bootstrap (or resume) a follower and start tailing the leader.
    ///
    /// Blocks until the follower has a serveable snapshot: either the
    /// local directory recovered one, or a bundle was downloaded from
    /// the leader (retried `bootstrap_attempts` times — the leader may
    /// still be binding when the follower starts).
    pub fn start(
        config: ReplicaConfig,
        service_config: ServiceConfig,
    ) -> Result<Replica, ReplicaError> {
        let base = BanksConfig::default();
        let shared = Arc::new(Shared::default());
        let (store, recovery) =
            PersistentStore::open(&config.data_dir, &base, config.options.clone())?;
        let (banks, epoch) = match recovery.banks {
            // Local state wins: resume tailing from the recovered epoch
            // without touching the leader.
            Some(banks) => (banks, recovery.epoch),
            None => {
                let (temp, epoch) = fetch_bundle_with_retry(&config, &shared)?;
                let banks = install_bundle(&temp, epoch, &config, &base, &store)
                    .map_err(ReplicaError::Leader)?;
                shared.snapshots_downloaded.fetch_add(1, Ordering::Relaxed);
                (banks, epoch)
            }
        };

        let service = Arc::new(QueryService::with_epoch(
            Arc::clone(&banks),
            epoch,
            service_config,
        ));
        let mut publisher = SnapshotPublisher::with_epoch(banks, epoch);
        publisher.set_durability_hook(store.wal_hook());

        let handle = {
            let config = config.clone();
            let shared = Arc::clone(&shared);
            let store = Arc::clone(&store);
            let service = Arc::clone(&service);
            std::thread::Builder::new()
                .name("banks-replica-tail".to_string())
                .spawn(move || tail_loop(&config, &base, &store, &service, publisher, &shared))
                .expect("spawn tail thread")
        };

        Ok(Replica {
            service,
            store,
            shared,
            handle: Some(handle),
        })
    }

    /// The query service fed by the tail loop — hand it to
    /// [`banks_server::BanksServer`] to serve reads.
    pub fn service(&self) -> Arc<QueryService> {
        Arc::clone(&self.service)
    }

    /// The follower's own durable store (for `/stats` wiring).
    pub fn store(&self) -> Arc<PersistentStore> {
        Arc::clone(&self.store)
    }

    /// Snapshot of the replication counters.
    pub fn stats(&self) -> ReplicaStats {
        ReplicaStats {
            snapshots_downloaded: self.shared.snapshots_downloaded.load(Ordering::Relaxed),
            batches_applied: self.shared.batches_applied.load(Ordering::Relaxed),
            frame_bytes: self.shared.frame_bytes.load(Ordering::Relaxed),
            rebootstraps: self.shared.rebootstraps.load(Ordering::Relaxed),
            leader_errors: self.shared.leader_errors.load(Ordering::Relaxed),
            retries: self.shared.retries.load(Ordering::Relaxed),
            epoch: self.service.epoch(),
            leader_epoch: self.service.leader_epoch(),
            last_error: self
                .shared
                .last_error
                .lock()
                .expect("last error lock")
                .clone(),
        }
    }

    /// Register the follower's replication families on `registry`.
    /// Pass the same registry to
    /// [`banks_server::BanksServer::bind_with_registry`] so the
    /// follower's `/metrics` carries them next to the serving families.
    /// The collector holds the counters and the service, not the
    /// replica itself — it keeps reporting (frozen) after shutdown.
    pub fn install_metrics(&self, registry: &banks_telemetry::Registry) {
        let shared = Arc::clone(&self.shared);
        let service = Arc::clone(&self.service);
        registry.register_collector(move || replica_families(&shared, &service));
    }

    /// Stop tailing and join the thread. The long-poll in flight is
    /// abandoned to its timeout, so this can take up to the poll window.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The follower's Prometheus families, read from the same atomics as
/// [`Replica::stats`].
fn replica_families(
    shared: &Shared,
    service: &QueryService,
) -> Vec<banks_telemetry::CollectedFamily> {
    use banks_telemetry::{CollectedFamily, Kind};
    let c = Kind::Counter;
    let g = Kind::Gauge;
    let epoch = service.epoch();
    let mut fams = vec![
        CollectedFamily::scalar(
            "banks_replica_snapshots_downloaded_total",
            "Snapshot bundles fetched from the leader.",
            c,
            shared.snapshots_downloaded.load(Ordering::Relaxed) as f64,
        ),
        CollectedFamily::scalar(
            "banks_replica_batches_applied_total",
            "WAL batches replayed off the leader's feed.",
            c,
            shared.batches_applied.load(Ordering::Relaxed) as f64,
        ),
        CollectedFamily::scalar(
            "banks_replica_frame_bytes_total",
            "Raw WAL frame bytes received from the leader.",
            c,
            shared.frame_bytes.load(Ordering::Relaxed) as f64,
        ),
        CollectedFamily::scalar(
            "banks_replica_rebootstraps_total",
            "Full re-bootstraps after compaction gaps or divergence.",
            c,
            shared.rebootstraps.load(Ordering::Relaxed) as f64,
        ),
        CollectedFamily::scalar(
            "banks_replica_leader_errors_total",
            "Failed leader requests (connect, timeout, non-200).",
            c,
            shared.leader_errors.load(Ordering::Relaxed) as f64,
        ),
        CollectedFamily::scalar(
            "banks_retries_total",
            "Backoff windows slept under the shared retry policy.",
            c,
            shared.retries.load(Ordering::Relaxed) as f64,
        ),
        CollectedFamily::scalar(
            "banks_replica_epoch",
            "The follower's serving epoch.",
            g,
            epoch as f64,
        ),
    ];
    // Leader-relative families only exist once the leader has been
    // observed, so a dashboard can tell "never reached" from "lag 0".
    if let Some(leader_epoch) = service.leader_epoch() {
        fams.push(CollectedFamily::scalar(
            "banks_replica_leader_epoch",
            "The leader's durable epoch as last observed.",
            g,
            leader_epoch as f64,
        ));
        fams.push(CollectedFamily::scalar(
            "banks_replica_apply_lag",
            "Epochs the follower's serving snapshot trails the leader.",
            g,
            leader_epoch.saturating_sub(epoch) as f64,
        ));
    }
    fams
}

/// One bundle download, streamed straight to a temp file in the data
/// directory (never buffered in memory — a bundle can be bigger than
/// the follower's budget, which is the whole point of `--paged`).
/// Returns the temp path and the bundle's epoch, peeked from its meta
/// section. `Err` is a human-readable reason; the temp file is removed
/// on every error path.
fn fetch_bundle(config: &ReplicaConfig) -> Result<(PathBuf, u64), String> {
    let temp = config.data_dir.join("bundle.download.tmp");
    let discard = |e: String| {
        let _ = std::fs::remove_file(&temp);
        e
    };
    let file = std::fs::File::create(&temp)
        .map_err(|e| format!("create {}: {e}", temp.display()))
        .map_err(discard)?;
    let mut sink = BufWriter::new(file);
    let resp = http_request_to_writer(
        &config.leader,
        "GET",
        "/replication/snapshot",
        config.snapshot_timeout,
        &mut sink,
    )
    .map_err(|e| discard(format!("GET /replication/snapshot: {e}")))?;
    let file = sink
        .into_inner()
        .map_err(|e| discard(format!("flush {}: {e}", temp.display())))?;
    if resp.status != 200 {
        // The (small) error body went to the file; read it back for the
        // operator before discarding.
        let text: String = std::fs::read(&temp)
            .map(|b| String::from_utf8_lossy(&b).chars().take(200).collect())
            .unwrap_or_default();
        return Err(discard(format!(
            "GET /replication/snapshot: leader answered {} ({text})",
            resp.status
        )));
    }
    file.sync_all()
        .map_err(|e| discard(format!("sync {}: {e}", temp.display())))?;
    let epoch = peek_epoch(&temp)
        .map_err(|e| discard(format!("leader sent an unreadable snapshot bundle: {e}")))?;
    Ok((temp, epoch))
}

/// Move a downloaded bundle into its final `snapshot-<epoch>` name,
/// open it (paged when the store runs with a memory budget), and let
/// the store adopt it — WAL compaction, pruning, durable-epoch advance
/// — without ever re-encoding the bytes the leader already encoded.
fn install_bundle(
    temp: &std::path::Path,
    epoch: u64,
    config: &ReplicaConfig,
    base: &BanksConfig,
    store: &Arc<PersistentStore>,
) -> Result<Arc<Banks>, String> {
    let path = config.data_dir.join(snapshot_file(epoch));
    std::fs::rename(temp, &path).map_err(|e| format!("rename into {}: {e}", path.display()))?;
    banks_util::fs::sync_dir(&config.data_dir);
    let open = match config.options.paged_budget {
        Some(budget) => open_bundle_paged(&path, budget as usize, base),
        None => load_bundle(&path, base),
    };
    let (banks, meta) = open.map_err(|e| {
        let _ = std::fs::remove_file(&path);
        format!("leader sent an unreadable snapshot bundle: {e}")
    })?;
    debug_assert_eq!(meta.epoch, epoch);
    store
        .adopt_snapshot(epoch)
        .map_err(|e| format!("adopt downloaded bundle: {e}"))?;
    Ok(Arc::new(banks))
}

/// The shared capped-exponential policy the replica retries under:
/// base and attempt count come from the config, the cap from
/// [`MAX_BACKOFF`], and full jitter spreads a herd of followers
/// recovering from the same leader outage.
fn retry_policy(config: &ReplicaConfig) -> RetryPolicy {
    RetryPolicy {
        attempts: config.bootstrap_attempts.max(1),
        base: config.retry_backoff,
        cap: MAX_BACKOFF,
        ..RetryPolicy::default()
    }
}

fn fetch_bundle_with_retry(
    config: &ReplicaConfig,
    shared: &Shared,
) -> Result<(PathBuf, u64), ReplicaError> {
    retry_policy(config)
        .run(
            None,
            |_| fetch_bundle(config).inspect_err(|e| shared.note_error(e.clone())),
            |_| {
                if shared.is_shutdown() {
                    Outcome::Fatal
                } else {
                    Outcome::Retryable
                }
            },
            |_, _, sleep| {
                // Sleep through the shutdown-aware pause, not the
                // policy's own thread::sleep, so `shutdown()` never
                // waits out a backoff window.
                shared.retries.fetch_add(1, Ordering::Relaxed);
                shared.pause(sleep);
                Duration::ZERO
            },
        )
        .map_err(|last| {
            ReplicaError::Leader(format!(
                "bootstrap gave up after {} attempt(s): {last}",
                config.bootstrap_attempts.max(1)
            ))
        })
}

/// Mirror the leader's durable epoch off a `/replication/*` response.
fn note_leader_epoch(service: &QueryService, resp: &HttpResponse) {
    if let Some(epoch) = resp.header("x-banks-epoch").and_then(|v| v.parse().ok()) {
        service.note_leader_epoch(epoch);
    }
}

/// Why a feed response could not be applied.
enum TailFault {
    /// Transient — re-poll from the same epoch; the leader re-serves
    /// the frames.
    Retry(String),
    /// The stream no longer lines up with local state (leader reset,
    /// epoch gap, batch rejected): only a fresh bundle can fix it.
    Diverged(String),
}

/// Replay one feed body: decode with the recovery scanner, apply each
/// frame through the publisher (which WALs it locally first), publish
/// to readers, and let the store decide about compaction.
fn apply_frames(
    body: &[u8],
    publisher: &mut SnapshotPublisher,
    service: &QueryService,
    store: &Arc<PersistentStore>,
    shared: &Shared,
) -> Result<(), TailFault> {
    let scan = scan_frames(body).map_err(|e| TailFault::Retry(format!("feed body: {e}")))?;
    shared
        .frame_bytes
        .fetch_add(scan.valid_bytes, Ordering::Relaxed);
    for frame in &scan.frames {
        if frame.epoch <= publisher.epoch() {
            // Overlap after a retry — the leader serves whole suffixes.
            continue;
        }
        if frame.epoch != publisher.epoch() + 1 {
            return Err(TailFault::Diverged(format!(
                "epoch gap in feed: have {}, next frame is {}",
                publisher.epoch(),
                frame.epoch
            )));
        }
        // Same contract as the leader's ingest path: the WAL hook runs
        // before promotion, so an applied epoch is already durable here.
        let published = publisher
            .publish(&frame.batch, None)
            .map_err(|e| TailFault::Diverged(format!("replay epoch {}: {e}", frame.epoch)))?;
        service.install_snapshot(Arc::clone(&published.banks), published.info.epoch, None);
        store.maybe_compact(&published.banks, published.info.epoch);
        shared.batches_applied.fetch_add(1, Ordering::Relaxed);
    }
    if scan.torn_bytes > 0 {
        // A complete HTTP body can still end mid-frame only if the
        // leader misbehaved; whole frames above were applied, re-poll
        // for the rest.
        return Err(TailFault::Retry(format!(
            "feed body ended mid-frame ({} torn byte(s))",
            scan.torn_bytes
        )));
    }
    Ok(())
}

/// Download a fresh bundle and swap it in: store, publisher, readers.
fn rebootstrap(
    config: &ReplicaConfig,
    base: &BanksConfig,
    store: &Arc<PersistentStore>,
    service: &QueryService,
    publisher: &mut SnapshotPublisher,
    shared: &Shared,
) -> Result<(), String> {
    let (temp, epoch) = fetch_bundle(config)?;
    if epoch < publisher.epoch() {
        let _ = std::fs::remove_file(&temp);
        return Err(format!(
            "leader snapshot (epoch {epoch}) is behind this follower (epoch {})",
            publisher.epoch()
        ));
    }
    // Installing through the store compacts the local WAL past the new
    // epoch, so a restart recovers the post-re-bootstrap state.
    let banks = install_bundle(&temp, epoch, config, base, store)?;
    *publisher = SnapshotPublisher::with_epoch(Arc::clone(&banks), epoch);
    publisher.set_durability_hook(store.wal_hook());
    service.install_snapshot(banks, epoch, None);
    shared.snapshots_downloaded.fetch_add(1, Ordering::Relaxed);
    shared.rebootstraps.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Consecutive-error backoff for the tail loop, drawing jittered
/// windows from the same shared [`RetryPolicy`] as bootstrap. Unlike
/// [`RetryPolicy::run`] this never gives up — a follower tails forever —
/// it only widens the window while the errors keep coming.
struct TailBackoff {
    policy: RetryPolicy,
    rng: u64,
    streak: u32,
}

impl TailBackoff {
    fn new(policy: RetryPolicy) -> TailBackoff {
        let rng = policy.seed | 1;
        TailBackoff {
            policy,
            rng,
            streak: 0,
        }
    }

    /// Sleep out the next jittered window (shutdown-aware) and widen it.
    fn nap(&mut self, shared: &Shared) {
        shared.retries.fetch_add(1, Ordering::Relaxed);
        let sleep = self.policy.backoff(self.streak, &mut self.rng);
        self.streak = self.streak.saturating_add(1);
        shared.pause(sleep);
    }

    /// A healthy poll: the next error starts back at the base window.
    fn reset(&mut self) {
        self.streak = 0;
    }
}

/// The follower's main loop: long-poll, apply, repeat — with jittered
/// doubling backoff on errors and a full re-bootstrap on `410 Gone`.
fn tail_loop(
    config: &ReplicaConfig,
    base: &BanksConfig,
    store: &Arc<PersistentStore>,
    service: &Arc<QueryService>,
    mut publisher: SnapshotPublisher,
    shared: &Shared,
) {
    let timeout = Duration::from_millis(config.poll_wait_ms) + config.request_slack;
    let mut backoff = TailBackoff::new(retry_policy(config));
    while !shared.is_shutdown() {
        let target = format!(
            "/replication/wal?from_epoch={}&wait_ms={}",
            publisher.epoch(),
            config.poll_wait_ms
        );
        let resp = match http_request(&config.leader, "GET", &target, None, timeout) {
            Ok(resp) => resp,
            Err(ClientError::Connect(e)) => {
                shared.note_error(format!("connect {}: {e}", config.leader));
                backoff.nap(shared);
                continue;
            }
            Err(e) => {
                shared.note_error(format!("GET {target}: {e}"));
                backoff.nap(shared);
                continue;
            }
        };
        note_leader_epoch(service, &resp);
        match resp.status {
            200 => {
                backoff.reset();
                if resp.body.is_empty() {
                    continue; // idle poll window expired — go right back
                }
                match apply_frames(&resp.body, &mut publisher, service, store, shared) {
                    Ok(()) => {}
                    Err(TailFault::Retry(msg)) => {
                        shared.note_error(msg);
                        backoff.nap(shared);
                    }
                    Err(TailFault::Diverged(msg)) => {
                        shared.note_error(msg);
                        if let Err(e) =
                            rebootstrap(config, base, store, service, &mut publisher, shared)
                        {
                            shared.note_error(e);
                            backoff.nap(shared);
                        }
                    }
                }
            }
            410 => {
                // The leader compacted past us — the log suffix we need
                // no longer exists anywhere.
                if let Err(e) = rebootstrap(config, base, store, service, &mut publisher, shared) {
                    shared.note_error(e);
                    backoff.nap(shared);
                } else {
                    backoff.reset();
                }
            }
            status => {
                shared.note_error(format!("GET {target}: leader answered {status}"));
                backoff.nap(shared);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_core::Banks;
    use banks_datagen::dblp::{generate, DblpConfig};
    use banks_ingest::{DeltaBatch, TupleOp};
    use banks_server::{BanksServer, IngestEndpoint, ServerConfig};
    use banks_storage::Value;
    use std::path::Path;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "banks_replica_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A durable leader over `dir`, mirroring `banks serve --data-dir`.
    fn leader(dir: &Path) -> (Arc<QueryService>, BanksServer, Arc<IngestEndpoint>) {
        let config = BanksConfig::default();
        let (store, recovery) =
            PersistentStore::open(dir, &config, PersistOptions::default()).expect("open leader");
        let (banks, epoch) = match recovery.banks {
            Some(banks) => (banks, recovery.epoch),
            None => {
                let dataset = generate(DblpConfig::tiny(7)).expect("datagen");
                let banks = Arc::new(Banks::new(dataset.db.clone()).expect("banks"));
                store.save_snapshot(&banks, 0).expect("initial bundle");
                (banks, 0)
            }
        };
        let service = Arc::new(QueryService::with_epoch(
            Arc::clone(&banks),
            epoch,
            ServiceConfig::default(),
        ));
        let mut publisher = SnapshotPublisher::with_epoch(banks, epoch);
        publisher.set_durability_hook(store.wal_hook());
        let ingest = IngestEndpoint::with_publisher(
            Arc::clone(&service),
            publisher,
            Some(Arc::clone(&store)),
        );
        let server = BanksServer::bind_full(
            Arc::clone(&service),
            Some(Arc::clone(&ingest)),
            Some(store),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind leader");
        (service, server, ingest)
    }

    fn insert_author(ingest: &IngestEndpoint, id: &str) {
        let batch = DeltaBatch {
            ops: vec![TupleOp::Insert {
                relation: "Author".into(),
                values: vec![Value::text(id), Value::text(format!("Replicated {id}"))],
            }],
        };
        ingest.ingest(&batch, None).expect("leader ingest");
    }

    fn follower_config(leader_addr: std::net::SocketAddr, dir: &Path) -> ReplicaConfig {
        ReplicaConfig {
            leader: leader_addr.to_string(),
            data_dir: dir.to_path_buf(),
            poll_wait_ms: 400,
            retry_backoff: Duration::from_millis(20),
            ..ReplicaConfig::default()
        }
    }

    fn wait_for_epoch(replica: &Replica, epoch: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while replica.service().epoch() < epoch {
            assert!(
                std::time::Instant::now() < deadline,
                "follower stuck at epoch {} (want {epoch}): {:?}",
                replica.service().epoch(),
                replica.stats()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn bootstrap_tail_and_resume_without_redownload() {
        let leader_dir = tmp_dir("leader");
        let follower_dir = tmp_dir("follower");
        let (leader_service, server, ingest) = leader(&leader_dir);

        // Cold follower: downloads the bundle, then tails live writes.
        let replica = Replica::start(
            follower_config(server.local_addr(), &follower_dir),
            ServiceConfig::default(),
        )
        .expect("follower start");
        assert_eq!(replica.stats().snapshots_downloaded, 1);
        assert_eq!(replica.service().epoch(), 0);

        insert_author(&ingest, "rep-1");
        insert_author(&ingest, "rep-2");
        wait_for_epoch(&replica, 2);

        // Identical answers, leader epoch observed, lag zero.
        let a = leader_service
            .search("replicated", Default::default())
            .unwrap();
        let b = replica
            .service()
            .search("replicated", Default::default())
            .unwrap();
        assert_eq!(a.result.answers.len(), b.result.answers.len());
        assert_eq!(b.result.answers.len(), 2);
        for (x, y) in a.result.answers.iter().zip(&b.result.answers) {
            assert_eq!(x.tree.signature(), y.tree.signature());
            assert_eq!(x.relevance.to_bits(), y.relevance.to_bits());
        }
        let stats = replica.stats();
        assert_eq!(stats.batches_applied, 2);
        assert_eq!(stats.leader_epoch, Some(2));
        assert!(replica.service().stats().epoch_lag == Some(0));

        // Restart the follower: local recovery, no second download.
        replica.shutdown();
        let replica = Replica::start(
            follower_config(server.local_addr(), &follower_dir),
            ServiceConfig::default(),
        )
        .expect("follower restart");
        assert_eq!(replica.service().epoch(), 2, "resumed from local state");
        assert_eq!(replica.stats().snapshots_downloaded, 0, "no re-download");

        // And it keeps tailing from where it stopped.
        insert_author(&ingest, "rep-3");
        wait_for_epoch(&replica, 3);
        assert_eq!(replica.stats().batches_applied, 1);

        replica.shutdown();
        server.shutdown();
        std::fs::remove_dir_all(&leader_dir).ok();
        std::fs::remove_dir_all(&follower_dir).ok();
    }

    #[test]
    fn leader_compaction_triggers_rebootstrap() {
        let leader_dir = tmp_dir("compact_leader");
        let follower_dir = tmp_dir("compact_follower");
        let (leader_service, server, ingest) = leader(&leader_dir);
        let replica = Replica::start(
            follower_config(server.local_addr(), &follower_dir),
            ServiceConfig::default(),
        )
        .expect("follower start");
        replica.shutdown(); // stops at epoch 0, keeps its directory

        // Leader moves on AND compacts its WAL away, so epoch 0 is no
        // longer serveable as a log suffix.
        insert_author(&ingest, "gap-1");
        insert_author(&ingest, "gap-2");
        let store = ingest.store().expect("durable leader").clone();
        store
            .save_snapshot(&leader_service.banks(), 2)
            .expect("leader compaction");

        // The restarted follower resumes at 0, hits 410, re-bootstraps.
        let replica = Replica::start(
            follower_config(server.local_addr(), &follower_dir),
            ServiceConfig::default(),
        )
        .expect("follower restart");
        wait_for_epoch(&replica, 2);
        let stats = replica.stats();
        assert_eq!(stats.rebootstraps, 1, "{stats:?}");
        assert_eq!(stats.snapshots_downloaded, 1, "{stats:?}");
        let hits = replica.service().search("gap", Default::default()).unwrap();
        assert_eq!(hits.result.answers.len(), 2);

        // A follower restart after the re-bootstrap recovers locally.
        replica.shutdown();
        let replica = Replica::start(
            follower_config(server.local_addr(), &follower_dir),
            ServiceConfig::default(),
        )
        .expect("second restart");
        assert_eq!(replica.service().epoch(), 2);
        assert_eq!(replica.stats().snapshots_downloaded, 0);

        replica.shutdown();
        server.shutdown();
        std::fs::remove_dir_all(&leader_dir).ok();
        std::fs::remove_dir_all(&follower_dir).ok();
    }

    #[test]
    fn paged_follower_bootstraps_and_matches_leader() {
        let leader_dir = tmp_dir("paged_leader");
        let follower_dir = tmp_dir("paged_follower");
        let (leader_service, server, ingest) = leader(&leader_dir);

        let mut config = follower_config(server.local_addr(), &follower_dir);
        config.options.paged_budget = Some(1 << 20);
        let replica =
            Replica::start(config, ServiceConfig::default()).expect("paged follower start");
        assert_eq!(replica.stats().snapshots_downloaded, 1);
        // The bootstrap bundle opened through the pager.
        assert!(replica
            .service()
            .banks()
            .tuple_graph()
            .graph()
            .storage_stats()
            .is_some());

        // Tail a write and compare answers bit-for-bit with the leader.
        insert_author(&ingest, "paged-1");
        wait_for_epoch(&replica, 1);
        let a = leader_service.search("soumen", Default::default()).unwrap();
        let b = replica
            .service()
            .search("soumen", Default::default())
            .unwrap();
        assert_eq!(a.result.answers.len(), b.result.answers.len());
        for (x, y) in a.result.answers.iter().zip(&b.result.answers) {
            assert_eq!(x.tree.signature(), y.tree.signature());
            assert_eq!(x.relevance.to_bits(), y.relevance.to_bits());
        }
        // No temp download file left behind.
        assert!(!follower_dir.join("bundle.download.tmp").exists());

        replica.shutdown();
        server.shutdown();
        std::fs::remove_dir_all(&leader_dir).ok();
        std::fs::remove_dir_all(&follower_dir).ok();
    }

    #[test]
    fn follower_metrics_export_replication_families() {
        let leader_dir = tmp_dir("metrics_leader");
        let follower_dir = tmp_dir("metrics_follower");
        let (_leader_service, server, ingest) = leader(&leader_dir);
        let replica = Replica::start(
            follower_config(server.local_addr(), &follower_dir),
            ServiceConfig::default(),
        )
        .expect("follower start");
        insert_author(&ingest, "obs-1");
        wait_for_epoch(&replica, 1);

        let registry = banks_telemetry::Registry::new();
        replica.install_metrics(&registry);
        let text = registry.render();
        for family in [
            "banks_replica_snapshots_downloaded_total",
            "banks_replica_batches_applied_total",
            "banks_replica_frame_bytes_total",
            "banks_replica_rebootstraps_total",
            "banks_replica_leader_errors_total",
            "banks_replica_epoch",
            "banks_replica_leader_epoch",
            "banks_replica_apply_lag",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "family {family} missing:\n{text}"
            );
        }
        assert!(text.contains("banks_replica_snapshots_downloaded_total 1"));
        assert!(text.contains("banks_replica_batches_applied_total 1"));
        assert!(text.contains("banks_replica_epoch 1"));

        replica.shutdown();
        server.shutdown();
        std::fs::remove_dir_all(&leader_dir).ok();
        std::fs::remove_dir_all(&follower_dir).ok();
    }

    #[test]
    fn bootstrap_fails_cleanly_without_a_leader() {
        let dir = tmp_dir("no_leader");
        let config = ReplicaConfig {
            leader: "127.0.0.1:1".to_string(), // nothing listens there
            data_dir: dir.clone(),
            bootstrap_attempts: 2,
            retry_backoff: Duration::from_millis(5),
            ..ReplicaConfig::default()
        };
        match Replica::start(config, ServiceConfig::default()) {
            Err(err) => assert!(matches!(err, ReplicaError::Leader(_)), "{err}"),
            Ok(_) => panic!("bootstrap with no leader must fail"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
