//! Prometheus metric wiring for the HTTP server.
//!
//! The server owns one [`Registry`] per bound instance. Hot-path
//! instruments (per-endpoint request counters and latency histograms,
//! the accept-queue depth gauge, the service's cold/hit latency
//! histograms) are `Arc`ed out of the registry once at bind time, so
//! request handling never takes the registry lock. Everything that
//! already has a counter somewhere else — cache stats, epochs, pager,
//! WAL — is exported through scrape-time *collectors* that read the
//! existing snapshots, so `/metrics` adds no bookkeeping to those
//! subsystems.

use crate::service::QueryService;
use banks_telemetry::{
    latency_boundaries, CollectedFamily, Counter, Gauge, Histogram, Kind, Registry, Sample,
};
use std::sync::Arc;

/// Exported latency unit: the histograms tick in nanoseconds, the
/// `le=` ladder and `_sum` render in seconds per Prometheus convention.
const NANOS_TO_SECONDS: f64 = 1e-9;

/// Instruments for one HTTP endpoint.
pub struct EndpointMetrics {
    /// Requests handled (any status).
    pub requests: Arc<Counter>,
    /// Request service latency, nanosecond ticks.
    pub latency: Arc<Histogram>,
}

/// Paths that get their own `endpoint` label value. Anything else is
/// folded into `other`, so a path-scanning client cannot explode label
/// cardinality.
const ENDPOINTS: &[&str] = &[
    "/search",
    "/node",
    "/stats",
    "/epochs",
    "/health",
    "/metrics",
    "/debug/slow",
    "/ingest",
    "/replication/snapshot",
    "/replication/wal",
];

/// The server's registry plus its pre-resolved hot-path instruments.
pub struct ServerMetrics {
    registry: Arc<Registry>,
    /// Connections accepted but not yet picked up by a worker — the
    /// live backpressure signal of the `sync_channel` accept queue.
    pub queue_depth: Arc<Gauge>,
    /// Requests shed with `503` because their accept-queue wait passed
    /// the shedding bound.
    pub shed_total: Arc<Counter>,
    /// Requests rejected with `429` by the per-client token bucket.
    pub rate_limited_total: Arc<Counter>,
    /// Requests whose deadline budget lapsed — answered `504`, or `200`
    /// with `partial: true` when the expansion had produced answers.
    pub deadline_exceeded_total: Arc<Counter>,
    endpoints: Vec<(&'static str, EndpointMetrics)>,
    fallback: EndpointMetrics,
}

impl ServerMetrics {
    /// Resolve every owned instrument against `registry` once.
    pub fn new(registry: Arc<Registry>) -> ServerMetrics {
        let make = |endpoint: &str| EndpointMetrics {
            requests: registry.counter(
                "banks_http_requests_total",
                "HTTP requests handled, by endpoint.",
                &[("endpoint", endpoint)],
            ),
            latency: registry.histogram(
                "banks_http_request_seconds",
                "HTTP request service time, by endpoint.",
                &[("endpoint", endpoint)],
                &latency_boundaries(),
                NANOS_TO_SECONDS,
            ),
        };
        let endpoints = ENDPOINTS.iter().map(|&path| (path, make(path))).collect();
        let fallback = make("other");
        let queue_depth = registry.gauge(
            "banks_http_queue_depth",
            "Accepted connections waiting for a worker.",
            &[],
        );
        let shed_total = registry.counter(
            "banks_shed_total",
            "Requests shed (503) because queue wait exceeded the shedding bound.",
            &[],
        );
        let rate_limited_total = registry.counter(
            "banks_rate_limited_total",
            "Requests rejected (429) by the per-client token-bucket rate limit.",
            &[],
        );
        let deadline_exceeded_total = registry.counter(
            "banks_deadline_exceeded_total",
            "Requests whose deadline budget lapsed before or during the search.",
            &[],
        );
        ServerMetrics {
            registry,
            queue_depth,
            shed_total,
            rate_limited_total,
            deadline_exceeded_total,
            endpoints,
            fallback,
        }
    }

    /// The registry (for `/metrics` rendering and extra collectors).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The instruments for a request path (unknown paths → `other`).
    pub fn endpoint(&self, path: &str) -> &EndpointMetrics {
        self.endpoints
            .iter()
            .find(|(p, _)| *p == path)
            .map(|(_, m)| m)
            .unwrap_or(&self.fallback)
    }
}

/// Register the query service's families: its two owned latency
/// histograms plus a collector over [`QueryService::stats_with_snapshot`]
/// (queries, cache, epoch, parallel-search, pager, graph footprint).
pub fn install_service_metrics(registry: &Registry, service: Arc<QueryService>) {
    registry.register_histogram(
        "banks_query_seconds",
        "End-to-end query latency through the service, by cache outcome.",
        &[("cache", "miss")],
        service.cold_latency(),
        &latency_boundaries(),
        NANOS_TO_SECONDS,
    );
    registry.register_histogram(
        "banks_query_seconds",
        "End-to-end query latency through the service, by cache outcome.",
        &[("cache", "hit")],
        service.hit_latency(),
        &latency_boundaries(),
        NANOS_TO_SECONDS,
    );
    registry.register_collector(move || service_families(&service));
}

fn service_families(service: &QueryService) -> Vec<CollectedFamily> {
    let (stats, banks) = service.stats_with_snapshot();
    let c = Kind::Counter;
    let g = Kind::Gauge;
    let mut fams = vec![
        CollectedFamily::scalar(
            "banks_queries_total",
            "Queries answered (cache hits + computed).",
            c,
            stats.queries as f64,
        ),
        CollectedFamily::scalar(
            "banks_query_errors_total",
            "Queries that failed to parse or execute.",
            c,
            stats.errors as f64,
        ),
        CollectedFamily::scalar(
            "banks_cache_hits_total",
            "Result-cache hits.",
            c,
            stats.cache.hits as f64,
        ),
        CollectedFamily::scalar(
            "banks_cache_misses_total",
            "Result-cache misses.",
            c,
            stats.cache.misses as f64,
        ),
        CollectedFamily::scalar(
            "banks_cache_insertions_total",
            "Result-cache insertions.",
            c,
            stats.cache.insertions as f64,
        ),
        CollectedFamily::scalar(
            "banks_cache_evictions_total",
            "Result-cache capacity evictions.",
            c,
            stats.cache.evictions as f64,
        ),
        CollectedFamily::scalar(
            "banks_cache_invalidations_total",
            "Result-cache entries dropped as stale after a publish.",
            c,
            stats.cache.invalidations as f64,
        ),
        CollectedFamily::scalar(
            "banks_cache_entries",
            "Result-cache resident entries.",
            g,
            stats.cache.entries as f64,
        ),
        CollectedFamily::scalar(
            "banks_cache_hit_ratio",
            "Result-cache hits / lookups since start.",
            g,
            stats.cache.hit_ratio(),
        ),
        CollectedFamily::scalar(
            "banks_epoch",
            "Serving snapshot epoch.",
            g,
            stats.epoch as f64,
        ),
        CollectedFamily::scalar(
            "banks_graph_nodes",
            "Data-graph node count of the serving snapshot.",
            g,
            stats.graph_nodes as f64,
        ),
        CollectedFamily::scalar(
            "banks_graph_edges",
            "Data-graph edge count of the serving snapshot.",
            g,
            stats.graph_edges as f64,
        ),
        CollectedFamily::scalar(
            "banks_memory_bytes",
            "Graph + text-index memory footprint of the serving snapshot.",
            g,
            stats.memory_bytes as f64,
        ),
        CollectedFamily::scalar(
            "banks_search_shards_total",
            "Parallel expansion shards spawned by cold queries.",
            c,
            stats.shards_spawned as f64,
        ),
        CollectedFamily::scalar(
            "banks_search_sequential_fallbacks_total",
            "Cold queries the adaptive cutover kept sequential.",
            c,
            stats.sequential_fallbacks as f64,
        ),
        CollectedFamily::scalar(
            "banks_search_merge_stall_seconds_total",
            "Time parallel merges spent stalled on the slowest shard.",
            c,
            stats.merge_stall_us as f64 * 1e-6,
        ),
        CollectedFamily::scalar(
            "banks_search_early_terminations_total",
            "Cold queries whose heap search stopped early.",
            c,
            stats.early_terminations as f64,
        ),
        CollectedFamily::scalar(
            "banks_uptime_seconds",
            "Seconds since the query service was built.",
            g,
            stats.uptime_secs,
        ),
    ];
    // A follower's lag behind its leader; absent on a leader so a
    // dashboard can distinguish "not a follower" from "lag 0".
    if let Some(lag) = stats.epoch_lag {
        fams.push(CollectedFamily::scalar(
            "banks_epoch_lag",
            "Epochs this follower trails its replication leader.",
            g,
            lag as f64,
        ));
    }
    // Pager families are always emitted — zeros for the in-RAM backend —
    // so a dashboard template works against any serving mode.
    let pager = banks.tuple_graph().graph().storage_stats();
    let pick = |f: fn(&banks_graph::StorageStats) -> f64| pager.as_ref().map(f).unwrap_or(0.0);
    fams.push(CollectedFamily::scalar(
        "banks_pager_budget_bytes",
        "Paged-backend memory budget (0 = in-RAM backend).",
        g,
        pick(|s| s.budget_bytes as f64),
    ));
    fams.push(CollectedFamily::scalar(
        "banks_pager_resident_bytes",
        "Decoded segment bytes currently resident.",
        g,
        pick(|s| s.resident_bytes as f64),
    ));
    fams.push(CollectedFamily::scalar(
        "banks_pager_pinned_bytes",
        "Resident bytes pinned by in-flight readers.",
        g,
        pick(|s| s.pinned_bytes as f64),
    ));
    fams.push(CollectedFamily::scalar(
        "banks_pager_page_ins_total",
        "Segments decoded into residency.",
        c,
        pick(|s| s.page_ins as f64),
    ));
    fams.push(CollectedFamily::scalar(
        "banks_pager_evictions_total",
        "Resident segments evicted under budget pressure.",
        c,
        pick(|s| s.evictions as f64),
    ));
    // Tuple-store families mirror the pager's: zeros for an eager
    // database, live counters when `--paged` serves tuples lazily off
    // the v3 DATA section. The tuple and graph caches share one
    // budget, so `banks_pager_budget_bytes` is the combined cap.
    let tuples = banks.db().tuple_store_stats();
    let tpick =
        |f: fn(&banks_storage::TupleStoreStats) -> f64| tuples.as_ref().map(f).unwrap_or(0.0);
    fams.push(CollectedFamily::scalar(
        "banks_tuple_resident_bytes",
        "Decoded tuple-block bytes currently resident.",
        g,
        tpick(|s| s.resident_bytes as f64),
    ));
    fams.push(CollectedFamily::scalar(
        "banks_tuple_page_ins_total",
        "Tuple blocks decoded into residency.",
        c,
        tpick(|s| s.page_ins as f64),
    ));
    fams.push(CollectedFamily::scalar(
        "banks_tuple_evictions_total",
        "Resident tuple blocks evicted under budget pressure.",
        c,
        tpick(|s| s.evictions as f64),
    ));
    fams
}

/// Register WAL + persistence families from a durable store.
pub fn install_store_metrics(registry: &Registry, store: Arc<banks_persist::PersistentStore>) {
    registry.register_collector(move || {
        let p = store.stats();
        vec![
            CollectedFamily::scalar(
                "banks_wal_bytes_total",
                "Bytes appended to the write-ahead log.",
                Kind::Counter,
                p.wal_bytes as f64,
            ),
            CollectedFamily::scalar(
                "banks_wal_batches_total",
                "Delta batches appended to the write-ahead log.",
                Kind::Counter,
                p.wal_batches as f64,
            ),
            CollectedFamily::scalar(
                "banks_wal_compactions_total",
                "Snapshot compactions (WAL truncations).",
                Kind::Counter,
                p.compactions as f64,
            ),
            CollectedFamily::scalar(
                "banks_wal_fsync_total",
                "fsync calls issued by WAL appends.",
                Kind::Counter,
                p.fsync_count as f64,
            ),
            CollectedFamily::scalar(
                "banks_wal_fsync_seconds_total",
                "Time spent in WAL fsync calls.",
                Kind::Counter,
                p.fsync_nanos as f64 * NANOS_TO_SECONDS,
            ),
        ]
    });
}

/// A single unlabeled sample with owned labels — helper for callers
/// building labeled families by hand.
pub fn labeled_sample(labels: &[(&'static str, &str)], value: f64) -> Sample {
    Sample {
        labels: labels.iter().map(|&(k, v)| (k, v.to_string())).collect(),
        value,
    }
}
