//! The in-process query service: an `Arc`-shared BANKS snapshot fronted
//! by the sharded result cache.
//!
//! Every front end — the HTTP endpoint, `banks-cli serve`, the
//! throughput bench — goes through [`QueryService::search`], so cache
//! semantics and counters are identical everywhere.

use crate::cache::{CacheStats, ShardedLruCache};
use banks_core::{
    Answer, Banks, BanksResult, CombineMode, EdgeScoreMode, NodeScoreMode, SearchStats,
    SearchStrategy,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Service construction options.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum cached results (entries, not bytes).
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 4096,
            cache_shards: 8,
        }
    }
}

/// Per-request options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryOptions {
    /// Search algorithm (§3 backward by default).
    pub strategy: SearchStrategy,
    /// Override of `search.max_results`, capped by the server to the
    /// configured maximum.
    pub limit: Option<usize>,
}

/// The normalized cache key: order- and case-insensitive keywords plus
/// everything that changes the ranked result — strategy, result limit,
/// and a fingerprint of the ranking parameters.
///
/// `mohan sudarshan` and `Sudarshan  Mohan` produce equal keys; a
/// repeated keyword is kept (term multiplicity changes the answer trees).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Sorted whitespace-separated terms; plain keywords are lowercased,
    /// qualified `Attr:keyword` terms keep their case (attribute
    /// resolution in the matcher is case-sensitive, so two spellings can
    /// legitimately produce different answers).
    pub terms: Vec<String>,
    /// Search strategy tag.
    pub strategy: SearchStrategy,
    /// Effective result limit.
    pub limit: usize,
    /// Fingerprint of the active [`banks_core::ScoreParams`].
    pub params_fingerprint: u64,
}

impl QueryKey {
    /// Normalize raw query text under the given options and parameter
    /// fingerprint.
    pub fn normalize(
        query_text: &str,
        options: QueryOptions,
        limit: usize,
        params: u64,
    ) -> QueryKey {
        let mut terms: Vec<String> = query_text
            .split_whitespace()
            .map(|t| {
                // Only plain keywords are case-folded: they go through
                // the lowercasing tokenizer anyway. Qualified terms
                // (`Relation.Column:keyword`) resolve their attribute
                // case-sensitively, so folding them would alias queries
                // with different results onto one cache entry.
                if t.contains(':') {
                    t.to_string()
                } else {
                    t.to_lowercase()
                }
            })
            .collect();
        terms.sort_unstable();
        QueryKey {
            terms,
            strategy: options.strategy,
            limit,
            params_fingerprint: params,
        }
    }
}

/// An immutable, shareable search result (what the cache stores).
#[derive(Debug)]
pub struct CachedResult {
    /// Ranked answers.
    pub answers: Vec<Answer>,
    /// Execution counters of the original (uncached) run.
    pub stats: SearchStats,
    /// Wall-clock time of the original search.
    pub cold_elapsed: Duration,
    /// Serialized `"count":…,"answers":[…],"search_stats":{…}` JSON
    /// fragment, memoized by the HTTP layer on first serve: it is
    /// identical for every alias of the cache key, so repeat hits skip
    /// re-rendering and re-serializing every connection tree.
    pub http_fragment: std::sync::OnceLock<String>,
}

/// What [`QueryService::search`] returns.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// The result (shared with the cache — cloning is pointer-cheap).
    pub result: Arc<CachedResult>,
    /// Whether this response came from the cache.
    pub cached: bool,
    /// Time to produce this response (lookup time on a hit, search time
    /// on a miss).
    pub elapsed: Duration,
    /// The normalized key the lookup used.
    pub key: QueryKey,
}

/// Aggregated service counters for `/stats`.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Queries answered (hits + misses), excluding errors.
    pub queries: u64,
    /// Queries that failed to parse or execute.
    pub errors: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Graph node count.
    pub graph_nodes: usize,
    /// Graph edge count.
    pub graph_edges: usize,
    /// Index + graph memory footprint in bytes.
    pub memory_bytes: usize,
    /// Seconds since the service was built.
    pub uptime_secs: f64,
}

/// A thread-safe query service over one immutable BANKS snapshot.
///
/// The system is `Send + Sync` (verified by compile-time assertion
/// below), so one `Arc<QueryService>` serves any number of worker
/// threads; results are `Arc`-shared between the cache and responses.
pub struct QueryService {
    banks: Arc<Banks>,
    cache: ShardedLruCache<QueryKey, Arc<CachedResult>>,
    queries: AtomicU64,
    errors: AtomicU64,
    params_fingerprint: u64,
    started: Instant,
}

impl QueryService {
    /// Wrap a built BANKS snapshot.
    pub fn new(banks: Arc<Banks>, config: ServiceConfig) -> QueryService {
        let params_fingerprint = fingerprint_params(&banks);
        QueryService {
            banks,
            cache: ShardedLruCache::new(config.cache_capacity, config.cache_shards),
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            params_fingerprint,
            started: Instant::now(),
        }
    }

    /// The shared snapshot.
    pub fn banks(&self) -> &Banks {
        &self.banks
    }

    /// Answer a keyword query through the cache.
    pub fn search(&self, query_text: &str, options: QueryOptions) -> BanksResult<SearchResponse> {
        // Reject unparseable queries before touching the cache, so the
        // hit/miss counters only ever count answerable queries and
        // `queries == hits + computed` stays an invariant of `/stats`.
        // The parse is kept and reused on the miss path below.
        let query = match self.banks.parse(query_text) {
            Ok(query) => query,
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        let configured_max = self.banks.config().search.max_results;
        let limit = options
            .limit
            .unwrap_or(configured_max)
            .min(configured_max)
            .max(1);
        let key = QueryKey::normalize(query_text, options, limit, self.params_fingerprint);

        let t0 = Instant::now();
        if let Some(result) = self.cache.get(&key) {
            self.queries.fetch_add(1, Ordering::Relaxed);
            return Ok(SearchResponse {
                result,
                cached: true,
                elapsed: t0.elapsed(),
                key,
            });
        }

        let t0 = Instant::now();
        let mut config = self.banks.config().clone();
        config.search.max_results = limit;
        let outcome = self
            .banks
            .search_parsed(&query, options.strategy, &config)
            .inspect_err(|_| {
                self.errors.fetch_add(1, Ordering::Relaxed);
                // The lookup above counted a miss for a query that turns
                // out to be unanswerable (e.g. every term unmatched under
                // `allow_missing_terms`); retract it so `/stats` keeps
                // `hits + misses == queries`.
                self.cache.forget_miss();
            })?;
        let elapsed = t0.elapsed();
        let result = Arc::new(CachedResult {
            answers: outcome.answers,
            stats: outcome.stats,
            cold_elapsed: elapsed,
            http_fragment: std::sync::OnceLock::new(),
        });
        self.cache.insert(key.clone(), Arc::clone(&result));
        self.queries.fetch_add(1, Ordering::Relaxed);
        Ok(SearchResponse {
            result,
            cached: false,
            elapsed,
            key,
        })
    }

    /// Render an answer Figure-2 style (delegates to the snapshot).
    pub fn render_answer(&self, answer: &Answer) -> String {
        self.banks.render_answer(answer)
    }

    /// Service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            graph_nodes: self.banks.tuple_graph().node_count(),
            graph_edges: self.banks.tuple_graph().graph().edge_count(),
            memory_bytes: self.banks.memory_bytes(),
            uptime_secs: self.started.elapsed().as_secs_f64(),
        }
    }

    /// Direct cache access (benchmarks and tests).
    pub fn cache(&self) -> &ShardedLruCache<QueryKey, Arc<CachedResult>> {
        &self.cache
    }
}

/// Fingerprint the ranking parameters that affect result order, so a
/// service built with different scoring never shares cache keys (e.g.
/// across snapshot reloads with a new config).
fn fingerprint_params(banks: &Banks) -> u64 {
    let p = banks.config().score;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(p.lambda.to_bits());
    mix(match p.edge_score {
        EdgeScoreMode::Linear => 1,
        EdgeScoreMode::Log => 2,
    });
    mix(match p.node_score {
        NodeScoreMode::Linear => 1,
        NodeScoreMode::Log => 2,
    });
    mix(match p.combine {
        CombineMode::Additive => 1,
        CombineMode::Multiplicative => 2,
    });
    h
}

// Compile-time proof that the whole service can be shared across
// threads; this is what lets every worker borrow one snapshot.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryService>();
    assert_send_sync::<Banks>();
    assert_send_sync::<SearchResponse>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use banks_storage::{ColumnType, Database, RelationSchema, Value};

    fn dblp() -> Database {
        let mut db = Database::new("dblp");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["AuthorId", "PaperId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (id, name) in [
            ("MohanC", "C. Mohan"),
            ("SudarshanS", "S. Sudarshan"),
            ("SoumenC", "Soumen Chakrabarti"),
        ] {
            db.insert("Author", vec![Value::text(id), Value::text(name)])
                .unwrap();
        }
        db.insert(
            "Paper",
            vec![
                Value::text("P1"),
                Value::text("Transaction Recovery Methods"),
            ],
        )
        .unwrap();
        for a in ["MohanC", "SudarshanS"] {
            db.insert("Writes", vec![Value::text(a), Value::text("P1")])
                .unwrap();
        }
        db
    }

    fn service() -> QueryService {
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        QueryService::new(banks, ServiceConfig::default())
    }

    #[test]
    fn normalization_merges_order_case_and_spacing() {
        let a = QueryKey::normalize("mohan sudarshan", QueryOptions::default(), 10, 7);
        let b = QueryKey::normalize("Sudarshan  Mohan", QueryOptions::default(), 10, 7);
        assert_eq!(a, b);
        // Term multiplicity is preserved.
        let c = QueryKey::normalize("mohan mohan", QueryOptions::default(), 10, 7);
        assert_ne!(a.terms, c.terms);
        // Qualified terms stay case-sensitive: attribute lookup is exact,
        // so different spellings may return different answers and must
        // not share a cache entry.
        assert_ne!(
            QueryKey::normalize("PaperName:levy", QueryOptions::default(), 10, 7),
            QueryKey::normalize("papername:levy", QueryOptions::default(), 10, 7)
        );
        // Strategy and limit are part of the key.
        let fwd = QueryOptions {
            strategy: SearchStrategy::Forward,
            ..QueryOptions::default()
        };
        assert_ne!(
            QueryKey::normalize("mohan", fwd, 10, 7),
            QueryKey::normalize("mohan", QueryOptions::default(), 10, 7)
        );
        assert_ne!(
            QueryKey::normalize("mohan", QueryOptions::default(), 5, 7),
            QueryKey::normalize("mohan", QueryOptions::default(), 10, 7)
        );
    }

    #[test]
    fn equivalent_queries_share_one_cache_entry() {
        let service = service();
        let first = service
            .search("mohan sudarshan", QueryOptions::default())
            .unwrap();
        assert!(!first.cached);
        let second = service
            .search("Sudarshan  Mohan", QueryOptions::default())
            .unwrap();
        assert!(second.cached, "normalized repeat must hit");
        assert!(Arc::ptr_eq(&first.result, &second.result));
        let stats = service.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.queries, 2);
    }

    #[test]
    fn cached_answers_match_direct_search() {
        let service = service();
        let direct = service.banks().search("mohan sudarshan").unwrap();
        let via_cache = service
            .search("mohan sudarshan", QueryOptions::default())
            .unwrap();
        let repeat = service
            .search("mohan sudarshan", QueryOptions::default())
            .unwrap();
        for resp in [&via_cache, &repeat] {
            assert_eq!(resp.result.answers.len(), direct.len());
            for (a, b) in direct.iter().zip(&resp.result.answers) {
                assert_eq!(a.tree.signature(), b.tree.signature());
                assert!((a.relevance - b.relevance).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn errors_are_counted_not_cached() {
        let service = service();
        assert!(service.search("", QueryOptions::default()).is_err());
        assert!(service.search("", QueryOptions::default()).is_err());
        let stats = service.stats();
        assert_eq!(stats.errors, 2);
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.cache.entries, 0);
        // Unparseable queries are rejected before the cache, so they
        // don't skew the hit/miss accounting.
        assert_eq!(stats.cache.misses, 0);
    }

    #[test]
    fn post_lookup_search_failure_retracts_the_miss() {
        // Under `allow_missing_terms`, a parseable query whose terms all
        // match nothing fails *after* the cache lookup; the counted miss
        // must be retracted so `hits + misses == queries` holds.
        let mut config = banks_core::BanksConfig::default();
        config.matching.allow_missing_terms = true;
        let banks = Arc::new(Banks::with_config(dblp(), config).unwrap());
        let service = QueryService::new(banks, ServiceConfig::default());
        assert!(service
            .search("xyzzyplugh", QueryOptions::default())
            .is_err());
        let stats = service.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.cache.misses, 0, "failed query's miss is retracted");
        assert_eq!(stats.cache.hits, 0);
    }

    #[test]
    fn limit_is_capped_and_distinguished() {
        let service = service();
        let r1 = service
            .search(
                "mohan",
                QueryOptions {
                    limit: Some(1),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert!(r1.result.answers.len() <= 1);
        // Huge limits collapse to the configured maximum.
        let big = service
            .search(
                "mohan",
                QueryOptions {
                    limit: Some(10_000),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert_eq!(big.key.limit, service.banks().config().search.max_results);
    }

    #[test]
    fn concurrent_searches_share_the_snapshot() {
        let service = Arc::new(service());
        let queries = ["mohan", "sudarshan", "mohan sudarshan", "transaction"];
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    for q in queries {
                        for _ in 0..8 {
                            let resp = service.search(q, QueryOptions::default()).unwrap();
                            assert!(!resp.result.answers.is_empty() || q == "transaction");
                        }
                    }
                });
            }
        });
        let stats = service.stats();
        assert_eq!(stats.queries, 4 * 4 * 8);
        // Every distinct query computed at least once, repeats hit.
        assert!(stats.cache.hits >= stats.queries - 4 * 4);
        assert_eq!(stats.cache.entries, 4);
    }
}
