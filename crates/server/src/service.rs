//! The in-process query service: an `Arc`-shared BANKS snapshot fronted
//! by the sharded result cache.
//!
//! Every front end — the HTTP endpoint, `banks-cli serve`, the
//! throughput bench — goes through [`QueryService::search`], so cache
//! semantics and counters are identical everywhere.
//!
//! Since live ingestion (`banks-ingest`), the snapshot is **epoch
//! versioned**: [`QueryService::install_snapshot`] atomically swaps in a
//! newly published `Arc<Banks>`. Readers never block — each query
//! clones the current snapshot pointer under a read lock held for
//! nanoseconds and finishes on whatever epoch it started with. Cache
//! entries are stamped with their snapshot's epoch and invalidated
//! lazily on lookup after a publish, entry by entry, instead of being
//! flushed wholesale.

use crate::cache::{CacheLookup, CacheStats, ShardedLruCache};
use banks_core::{
    Answer, Banks, BanksResult, CombineMode, EdgeScoreMode, NodeScoreMode, SearchArena,
    SearchStats, SearchStrategy,
};
use banks_telemetry::{Histogram, SlowLog, SlowQuery, Span};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

thread_local! {
    /// One persistent [`SearchArena`] per worker thread: every cache-miss
    /// search this thread runs reuses the same dense Dijkstra states,
    /// origin-list pool and cross-product scratch, so steady-state
    /// serving performs no kernel allocations. The arena re-sizes its
    /// blocks lazily on checkout whenever a published snapshot changed
    /// the graph's node count (an epoch change), so it needs no explicit
    /// hook into [`QueryService::install_snapshot`] — which could not
    /// reach other threads' locals anyway.
    static WORKER_ARENA: RefCell<SearchArena> = RefCell::new(SearchArena::new());
}

/// Service construction options.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum cached results (entries, not bytes).
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Intra-query search threads for cold multi-keyword queries
    /// (`SearchConfig::search_threads`): each keyword set's backward
    /// expansion runs as its own shard, merged deterministically, so
    /// results are bit-identical at any setting. `0`/`1` = sequential.
    /// Front ends size this against their worker pool so
    /// `workers × search_threads` stays within the machine's cores.
    pub search_threads: usize,
    /// Record per-phase trace spans on every cold query. Spans feed the
    /// slow-query log and the opt-in `?trace=1` response section; the
    /// cost is a handful of clock reads per *miss* (hits never record),
    /// so this defaults to on. `false` reduces tracing to one branch.
    pub record_spans: bool,
    /// How many worst-by-latency cold queries the slow log retains
    /// (`GET /debug/slow`). `0` disables the log.
    pub slow_log_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 4096,
            cache_shards: 8,
            search_threads: 1,
            record_spans: true,
            slow_log_capacity: 16,
        }
    }
}

/// Per-request options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryOptions {
    /// Search algorithm (§3 backward by default).
    pub strategy: SearchStrategy,
    /// Override of `search.max_results`, capped by the server to the
    /// configured maximum.
    pub limit: Option<usize>,
    /// Force span recording for this query even when the service has
    /// `record_spans: false` (the `?trace=1` escape hatch). Does not
    /// affect the cache key: a traced and an untraced run of the same
    /// query share one entry, and a hit serves the spans recorded by
    /// whichever cold run populated it.
    pub trace: bool,
    /// Absolute deadline for a cold search. The expansion loops poll it
    /// (arena [`banks_graph::DeadlineToken`]) and cut the search short
    /// when it lapses; the truncated result is flagged via
    /// `SearchStats::deadline_expirations` and **never cached**. Not
    /// part of the cache key — a hit ignores the deadline entirely.
    pub deadline: Option<Instant>,
}

/// The normalized cache key: order- and case-insensitive keywords plus
/// everything that changes the ranked result — strategy, result limit,
/// and a fingerprint of the ranking parameters.
///
/// `mohan sudarshan` and `Sudarshan  Mohan` produce equal keys; a
/// repeated keyword is kept (term multiplicity changes the answer trees).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Sorted whitespace-separated terms; plain keywords are lowercased,
    /// qualified `Attr:keyword` terms keep their case (attribute
    /// resolution in the matcher is case-sensitive, so two spellings can
    /// legitimately produce different answers).
    pub terms: Vec<String>,
    /// Search strategy tag.
    pub strategy: SearchStrategy,
    /// Effective result limit.
    pub limit: usize,
    /// Fingerprint of the active [`banks_core::ScoreParams`].
    pub params_fingerprint: u64,
}

impl QueryKey {
    /// Normalize raw query text under the given options and parameter
    /// fingerprint.
    pub fn normalize(
        query_text: &str,
        options: QueryOptions,
        limit: usize,
        params: u64,
    ) -> QueryKey {
        let mut terms: Vec<String> = query_text
            .split_whitespace()
            .map(|t| {
                // Only plain keywords are case-folded: they go through
                // the lowercasing tokenizer anyway. Qualified terms
                // (`Relation.Column:keyword`) resolve their attribute
                // case-sensitively, so folding them would alias queries
                // with different results onto one cache entry.
                if t.contains(':') {
                    t.to_string()
                } else {
                    t.to_lowercase()
                }
            })
            .collect();
        terms.sort_unstable();
        QueryKey {
            terms,
            strategy: options.strategy,
            limit,
            params_fingerprint: params,
        }
    }
}

/// An immutable, shareable search result (what the cache stores).
#[derive(Debug)]
pub struct CachedResult {
    /// Ranked answers.
    pub answers: Vec<Answer>,
    /// Execution counters of the original (uncached) run.
    pub stats: SearchStats,
    /// Wall-clock time of the original search.
    pub cold_elapsed: Duration,
    /// Epoch of the snapshot this result was computed on. Lookups
    /// validate it against the current epoch, so a publish invalidates
    /// stale entries lazily instead of flushing the cache.
    pub epoch: u64,
    /// Serialized `"count":…,"answers":[…],"search_stats":{…}` JSON
    /// fragment, memoized by the HTTP layer on first serve: it is
    /// identical for every alias of the cache key, so repeat hits skip
    /// re-rendering and re-serializing every connection tree.
    pub http_fragment: std::sync::OnceLock<String>,
    /// Phase breakdown of the original cold run (`parse`, `match`,
    /// `expand`, `merge`, `score`), nanosecond offsets from the start of
    /// the search. Empty when span recording was off.
    pub spans: Vec<Span>,
}

/// What [`QueryService::search`] returns.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// The result (shared with the cache — cloning is pointer-cheap).
    pub result: Arc<CachedResult>,
    /// Whether this response came from the cache.
    pub cached: bool,
    /// Time to produce this response (lookup time on a hit, search time
    /// on a miss).
    pub elapsed: Duration,
    /// The normalized key the lookup used.
    pub key: QueryKey,
    /// Epoch of the snapshot that answered (== `result.epoch`).
    pub epoch: u64,
    /// The snapshot that answered — rendering an answer's node ids must
    /// use exactly this instance, not whatever is current by the time
    /// the response is serialized.
    pub banks: Arc<Banks>,
}

/// Aggregated service counters for `/stats`.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Queries answered (hits + misses), excluding errors.
    pub queries: u64,
    /// Queries that failed to parse or execute.
    pub errors: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Graph node count.
    pub graph_nodes: usize,
    /// Graph edge count.
    pub graph_edges: usize,
    /// Index + graph memory footprint in bytes.
    pub memory_bytes: usize,
    /// Seconds since the service was built.
    pub uptime_secs: f64,
    /// Current snapshot epoch (0 until the first publication).
    pub epoch: u64,
    /// Caller-supplied timestamp of the last snapshot publication.
    pub last_publish: Option<String>,
    /// Wall-clock milliseconds (Unix epoch) of the last snapshot
    /// install, `None` until the first one — operators read staleness in
    /// seconds even when the writer supplies no `ts`.
    pub last_publish_unix_ms: Option<u64>,
    /// How many epochs this service trails the leader it replicates
    /// from: `None` unless a replication tailer reports leader epochs
    /// (see [`QueryService::note_leader_epoch`]).
    pub epoch_lag: Option<u64>,
    /// Cache invalidations observed per epoch: `(epoch, count)` pairs,
    /// ascending — entry `(e, n)` means `n` stale results were dropped
    /// while epoch `e` was current.
    pub invalidations_by_epoch: Vec<(u64, u64)>,
    /// Configured intra-query search threads (≤ 1 = sequential).
    pub search_threads: usize,
    /// Total expansion shards spawned by parallel cold queries.
    pub shards_spawned: u64,
    /// Cold queries where parallelism was configured but the adaptive
    /// cutover kept the zero-overhead sequential path.
    pub sequential_fallbacks: u64,
    /// Total microseconds parallel merges spent stalled on a shard
    /// whose frontier bound was the global minimum.
    pub merge_stall_us: u64,
    /// Cold queries whose heap search stopped early once the result set
    /// provably could not improve (Σ `SearchStats::early_terminations`).
    pub early_terminations: u64,
}

/// The current snapshot plus everything derived from it that a query
/// needs — swapped atomically as one `Arc` on publication.
struct Snapshot {
    banks: Arc<Banks>,
    epoch: u64,
    params_fingerprint: u64,
}

/// A thread-safe query service over an epoch-versioned BANKS snapshot.
///
/// The system is `Send + Sync` (verified by compile-time assertion
/// below), so one `Arc<QueryService>` serves any number of worker
/// threads; results are `Arc`-shared between the cache and responses.
/// Writers publish through [`QueryService::install_snapshot`]; the read
/// lock is held only long enough to clone an `Arc`.
pub struct QueryService {
    snapshot: RwLock<Arc<Snapshot>>,
    cache: ShardedLruCache<QueryKey, Arc<CachedResult>>,
    queries: AtomicU64,
    errors: AtomicU64,
    started: Instant,
    last_publish: Mutex<Option<String>>,
    /// epoch → stale entries dropped while that epoch was current.
    invalidations_by_epoch: Mutex<BTreeMap<u64, u64>>,
    /// Intra-query parallelism for cold queries (≤ 1 = sequential).
    search_threads: usize,
    /// Σ shards spawned across parallel cold queries.
    shards_spawned: AtomicU64,
    /// Cold queries that fell back to the sequential path.
    sequential_fallbacks: AtomicU64,
    /// Σ merge-stall nanoseconds across parallel cold queries.
    merge_stall_ns: AtomicU64,
    /// Σ early heap terminations across cold queries.
    early_terminations: AtomicU64,
    /// Record spans on every cold query (see [`ServiceConfig`]).
    record_spans: bool,
    /// Worst cold queries with span breakdowns (`GET /debug/slow`).
    slow_log: SlowLog,
    /// Cold (cache-miss) search latency, nanosecond ticks. `Arc`ed so a
    /// metrics registry can export it without owning it.
    cold_latency: Arc<Histogram>,
    /// Cache-hit lookup latency, nanosecond ticks.
    hit_latency: Arc<Histogram>,
    /// Mirror of the current epoch for blocking waits: `min_epoch`
    /// readers park on the condvar; every install notifies it. (The
    /// `RwLock` snapshot itself cannot carry a condvar wait.)
    epoch_sync: Mutex<u64>,
    epoch_advanced: Condvar,
    /// Newest leader epoch observed by a replication tailer
    /// (`u64::MAX` = not a follower). Feeds `epoch_lag` in `/stats`.
    leader_epoch: AtomicU64,
    /// Unix milliseconds of the last snapshot install (0 = never).
    last_publish_unix_ms: AtomicU64,
}

/// How many epochs of invalidation counts `/stats` retains.
const INVALIDATION_EPOCHS_KEPT: usize = 64;

impl QueryService {
    /// Wrap a built BANKS snapshot (epoch 0).
    pub fn new(banks: Arc<Banks>, config: ServiceConfig) -> QueryService {
        QueryService::with_epoch(banks, 0, config)
    }

    /// Wrap a snapshot recovered at a known epoch — the crash-recovery
    /// path of `banks-persist`, where the restored state is already the
    /// product of `epoch` publications and the next publish must stamp
    /// `epoch + 1`.
    pub fn with_epoch(banks: Arc<Banks>, epoch: u64, config: ServiceConfig) -> QueryService {
        let params_fingerprint = fingerprint_params(&banks);
        QueryService {
            snapshot: RwLock::new(Arc::new(Snapshot {
                banks,
                epoch,
                params_fingerprint,
            })),
            cache: ShardedLruCache::new(config.cache_capacity, config.cache_shards),
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            started: Instant::now(),
            last_publish: Mutex::new(None),
            invalidations_by_epoch: Mutex::new(BTreeMap::new()),
            search_threads: config.search_threads.max(1),
            shards_spawned: AtomicU64::new(0),
            sequential_fallbacks: AtomicU64::new(0),
            merge_stall_ns: AtomicU64::new(0),
            early_terminations: AtomicU64::new(0),
            record_spans: config.record_spans,
            slow_log: SlowLog::new(config.slow_log_capacity),
            cold_latency: Arc::new(Histogram::new()),
            hit_latency: Arc::new(Histogram::new()),
            epoch_sync: Mutex::new(epoch),
            epoch_advanced: Condvar::new(),
            leader_epoch: AtomicU64::new(u64::MAX),
            last_publish_unix_ms: AtomicU64::new(0),
        }
    }

    fn current(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock"))
    }

    /// The current snapshot. In-flight queries hold their own clone, so
    /// a concurrent [`QueryService::install_snapshot`] never invalidates
    /// what a reader is using.
    pub fn banks(&self) -> Arc<Banks> {
        Arc::clone(&self.current().banks)
    }

    /// The current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.current().epoch
    }

    /// Atomically swap in a newly published snapshot. `epoch` must be
    /// greater than the current epoch (the publisher's counter is
    /// monotone; install order is serialized by the publisher's lock).
    /// Cached results stamped with older epochs are *not* flushed here —
    /// they fail epoch validation on their next lookup and are dropped
    /// one by one, keeping publication O(1) regardless of cache size.
    pub fn install_snapshot(&self, banks: Arc<Banks>, epoch: u64, published_at: Option<String>) {
        let params_fingerprint = fingerprint_params(&banks);
        let mut slot = self.snapshot.write().expect("snapshot lock");
        debug_assert!(epoch > slot.epoch, "epochs must advance monotonically");
        *slot = Arc::new(Snapshot {
            banks,
            epoch,
            params_fingerprint,
        });
        drop(slot);
        *self.last_publish.lock().expect("publish lock") = published_at;
        self.last_publish_unix_ms
            .store(unix_millis_now(), Ordering::Relaxed);
        let mut mirror = self.epoch_sync.lock().expect("epoch sync lock");
        if epoch > *mirror {
            *mirror = epoch;
            self.epoch_advanced.notify_all();
        }
    }

    /// Block until the serving epoch reaches `min_epoch` or `deadline`
    /// passes; returns the serving epoch either way. The read-your-writes
    /// wait behind `/search?min_epoch=N` on a follower: the caller saw
    /// the leader ack epoch `N` and parks here until the tailer installs
    /// it (or gives up and redirects to the leader).
    pub fn wait_for_min_epoch(&self, min_epoch: u64, deadline: Duration) -> u64 {
        let mirror = self.epoch_sync.lock().expect("epoch sync lock");
        let (guard, _timeout) = self
            .epoch_advanced
            .wait_timeout_while(mirror, deadline, |&mut e| e < min_epoch)
            .expect("epoch sync lock");
        *guard
    }

    /// Record the newest leader epoch a replication tailer has observed.
    /// Turns on `epoch_lag` in [`QueryService::stats`].
    pub fn note_leader_epoch(&self, epoch: u64) {
        self.leader_epoch.store(epoch, Ordering::Relaxed);
    }

    /// The newest leader epoch reported via
    /// [`QueryService::note_leader_epoch`], if any.
    pub fn leader_epoch(&self) -> Option<u64> {
        match self.leader_epoch.load(Ordering::Relaxed) {
            u64::MAX => None,
            epoch => Some(epoch),
        }
    }

    /// Answer a keyword query through the cache.
    pub fn search(&self, query_text: &str, options: QueryOptions) -> BanksResult<SearchResponse> {
        // Pin this query's snapshot: everything below — parse, cache
        // key, search, epoch stamp — uses it, even if a publish lands
        // mid-query.
        let snapshot = self.current();
        let banks = &snapshot.banks;

        // Reject unparseable queries before touching the cache, so the
        // hit/miss counters only ever count answerable queries and
        // `queries == hits + computed` stays an invariant of `/stats`.
        // The parse is kept and reused on the miss path below.
        let trace = self.record_spans || options.trace;
        let parse_t0 = trace.then(Instant::now);
        let query = match banks.parse(query_text) {
            Ok(query) => query,
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        let parse_ns = parse_t0.map(|t| t.elapsed().as_nanos() as u64);
        let configured_max = banks.config().search.max_results;
        let limit = options
            .limit
            .unwrap_or(configured_max)
            .min(configured_max)
            .max(1);
        let key = QueryKey::normalize(query_text, options, limit, snapshot.params_fingerprint);

        let t0 = Instant::now();
        // Three-way epoch check: equal stamps are served, older stamps
        // were superseded by a publish and are dropped, and a *newer*
        // stamp (this reader pinned an older snapshot mid-publish) is
        // left alone for the readers it is valid for.
        match self
            .cache
            .get_validate(&key, |r| match r.epoch.cmp(&snapshot.epoch) {
                std::cmp::Ordering::Equal => crate::cache::Validity::Valid,
                std::cmp::Ordering::Less => crate::cache::Validity::Stale,
                std::cmp::Ordering::Greater => crate::cache::Validity::Newer,
            }) {
            CacheLookup::Hit(result) => {
                self.queries.fetch_add(1, Ordering::Relaxed);
                let elapsed = t0.elapsed();
                self.hit_latency.record_duration(elapsed);
                return Ok(SearchResponse {
                    cached: true,
                    elapsed,
                    key,
                    epoch: result.epoch,
                    banks: Arc::clone(banks),
                    result,
                });
            }
            CacheLookup::Stale => self.note_invalidation(snapshot.epoch),
            CacheLookup::Newer | CacheLookup::Miss => {}
        }

        let t0 = Instant::now();
        let mut config = banks.config().clone();
        config.search.max_results = limit;
        // Cold multi-keyword queries may fan their expansion shards out
        // across the per-worker search-thread budget; the deterministic
        // merge keeps results bit-identical to sequential execution.
        config.search.search_threads = self.search_threads;
        let (outcome, spans) = WORKER_ARENA
            .with(|arena| {
                let mut arena = arena.borrow_mut();
                if trace {
                    // The parse ran before the buffer's clock origin, so
                    // its span is back-dated to offset 0; the kernel's
                    // own spans (match/expand/merge/score) follow it.
                    arena.spans.enable();
                    if let Some(parse_ns) = parse_ns {
                        arena.spans.push("parse", 0, 0, parse_ns);
                    }
                }
                arena.deadline.arm(options.deadline);
                let result = banks.search_parsed_in(&query, options.strategy, &config, &mut arena);
                arena.deadline.clear();
                let spans = if trace {
                    let spans = arena.spans.take();
                    arena.spans.disable();
                    spans
                } else {
                    Vec::new()
                };
                result.map(|outcome| (outcome, spans))
            })
            .inspect_err(|_| {
                self.errors.fetch_add(1, Ordering::Relaxed);
                // The lookup above counted a miss for a query that turns
                // out to be unanswerable (e.g. every term unmatched under
                // `allow_missing_terms`); retract it so `/stats` keeps
                // `hits + misses == queries`.
                self.cache.forget_miss();
            })?;
        let elapsed = t0.elapsed();
        self.cold_latency.record_duration(elapsed);
        self.shards_spawned
            .fetch_add(outcome.stats.shards as u64, Ordering::Relaxed);
        self.sequential_fallbacks
            .fetch_add(outcome.stats.sequential_fallbacks as u64, Ordering::Relaxed);
        self.merge_stall_ns
            .fetch_add(outcome.stats.merge_stall_ns, Ordering::Relaxed);
        self.early_terminations
            .fetch_add(outcome.stats.early_terminations as u64, Ordering::Relaxed);
        if self.slow_log.capacity() > 0 {
            self.slow_log.record(SlowQuery {
                query: key.terms.join(" "),
                total_us: elapsed.as_micros() as u64,
                epoch: snapshot.epoch,
                unix_ms: unix_millis_now(),
                spans: spans.clone(),
            });
        }
        let result = Arc::new(CachedResult {
            answers: outcome.answers,
            stats: outcome.stats,
            cold_elapsed: elapsed,
            epoch: snapshot.epoch,
            http_fragment: std::sync::OnceLock::new(),
            spans,
        });
        // Conditional insert under the shard lock: a fresher-epoch entry
        // (cached by a racing reader after a publish we missed, whether
        // it was visible at lookup time or landed while we searched)
        // must not be clobbered by this result. A deadline-truncated
        // result is a prefix of the real answer set and must never be
        // served to a later (unexpired) request, so it skips the cache.
        if result.stats.deadline_expirations == 0 {
            self.cache
                .insert_if(key.clone(), Arc::clone(&result), |existing| {
                    existing.epoch <= snapshot.epoch
                });
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        Ok(SearchResponse {
            cached: false,
            elapsed,
            key,
            epoch: snapshot.epoch,
            banks: Arc::clone(banks),
            result,
        })
    }

    fn note_invalidation(&self, current_epoch: u64) {
        let mut by_epoch = self
            .invalidations_by_epoch
            .lock()
            .expect("invalidation lock");
        *by_epoch.entry(current_epoch).or_insert(0) += 1;
        while by_epoch.len() > INVALIDATION_EPOCHS_KEPT {
            by_epoch.pop_first();
        }
    }

    /// Render an answer Figure-2 style against the **current** snapshot.
    /// For answers out of a [`SearchResponse`], prefer rendering through
    /// its own `banks` handle (node ids are snapshot-relative).
    pub fn render_answer(&self, answer: &Answer) -> String {
        self.current().banks.render_answer(answer)
    }

    /// Service counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats_with_snapshot().0
    }

    /// Service counters plus the snapshot they were read against.
    ///
    /// `/stats` derives storage-backend figures from the snapshot; using
    /// the one this method pinned (instead of a second `banks()` call)
    /// keeps the whole stats document internally consistent even when a
    /// publish lands between the two reads.
    pub fn stats_with_snapshot(&self) -> (ServiceStats, Arc<Banks>) {
        let snapshot = self.current();
        let stats = ServiceStats {
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            graph_nodes: snapshot.banks.tuple_graph().node_count(),
            graph_edges: snapshot.banks.tuple_graph().graph().edge_count(),
            memory_bytes: snapshot.banks.memory_bytes(),
            uptime_secs: self.started.elapsed().as_secs_f64(),
            epoch: snapshot.epoch,
            last_publish: self.last_publish.lock().expect("publish lock").clone(),
            last_publish_unix_ms: match self.last_publish_unix_ms.load(Ordering::Relaxed) {
                0 => None,
                ms => Some(ms),
            },
            epoch_lag: self
                .leader_epoch()
                .map(|leader| leader.saturating_sub(snapshot.epoch)),
            invalidations_by_epoch: self
                .invalidations_by_epoch
                .lock()
                .expect("invalidation lock")
                .iter()
                .map(|(&e, &n)| (e, n))
                .collect(),
            search_threads: self.search_threads,
            shards_spawned: self.shards_spawned.load(Ordering::Relaxed),
            sequential_fallbacks: self.sequential_fallbacks.load(Ordering::Relaxed),
            merge_stall_us: self.merge_stall_ns.load(Ordering::Relaxed) / 1_000,
            early_terminations: self.early_terminations.load(Ordering::Relaxed),
        };
        (stats, Arc::clone(&snapshot.banks))
    }

    /// The slow-query log (worst cold queries with span breakdowns).
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow_log
    }

    /// Cold (cache-miss) end-to-end latency histogram, nanosecond ticks.
    pub fn cold_latency(&self) -> Arc<Histogram> {
        Arc::clone(&self.cold_latency)
    }

    /// Cache-hit lookup latency histogram, nanosecond ticks.
    pub fn hit_latency(&self) -> Arc<Histogram> {
        Arc::clone(&self.hit_latency)
    }

    /// Direct cache access (benchmarks and tests).
    pub fn cache(&self) -> &ShardedLruCache<QueryKey, Arc<CachedResult>> {
        &self.cache
    }
}

/// Current wall clock as Unix milliseconds (0 if the clock is before
/// the Unix epoch, which only a badly skewed host can produce).
fn unix_millis_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Fingerprint the ranking parameters that affect result order, so a
/// service built with different scoring never shares cache keys (e.g.
/// across snapshot reloads with a new config).
fn fingerprint_params(banks: &Banks) -> u64 {
    let p = banks.config().score;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(p.lambda.to_bits());
    mix(match p.edge_score {
        EdgeScoreMode::Linear => 1,
        EdgeScoreMode::Log => 2,
    });
    mix(match p.node_score {
        NodeScoreMode::Linear => 1,
        NodeScoreMode::Log => 2,
    });
    mix(match p.combine {
        CombineMode::Additive => 1,
        CombineMode::Multiplicative => 2,
    });
    h
}

// Compile-time proof that the whole service can be shared across
// threads; this is what lets every worker borrow one snapshot.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryService>();
    assert_send_sync::<Banks>();
    assert_send_sync::<SearchResponse>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use banks_storage::{ColumnType, Database, RelationSchema, Value};

    fn dblp() -> Database {
        let mut db = Database::new("dblp");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["AuthorId", "PaperId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (id, name) in [
            ("MohanC", "C. Mohan"),
            ("SudarshanS", "S. Sudarshan"),
            ("SoumenC", "Soumen Chakrabarti"),
        ] {
            db.insert("Author", vec![Value::text(id), Value::text(name)])
                .unwrap();
        }
        db.insert(
            "Paper",
            vec![
                Value::text("P1"),
                Value::text("Transaction Recovery Methods"),
            ],
        )
        .unwrap();
        for a in ["MohanC", "SudarshanS"] {
            db.insert("Writes", vec![Value::text(a), Value::text("P1")])
                .unwrap();
        }
        db
    }

    fn service() -> QueryService {
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        QueryService::new(banks, ServiceConfig::default())
    }

    #[test]
    fn normalization_merges_order_case_and_spacing() {
        let a = QueryKey::normalize("mohan sudarshan", QueryOptions::default(), 10, 7);
        let b = QueryKey::normalize("Sudarshan  Mohan", QueryOptions::default(), 10, 7);
        assert_eq!(a, b);
        // Term multiplicity is preserved.
        let c = QueryKey::normalize("mohan mohan", QueryOptions::default(), 10, 7);
        assert_ne!(a.terms, c.terms);
        // Qualified terms stay case-sensitive: attribute lookup is exact,
        // so different spellings may return different answers and must
        // not share a cache entry.
        assert_ne!(
            QueryKey::normalize("PaperName:levy", QueryOptions::default(), 10, 7),
            QueryKey::normalize("papername:levy", QueryOptions::default(), 10, 7)
        );
        // Strategy and limit are part of the key.
        let fwd = QueryOptions {
            strategy: SearchStrategy::Forward,
            ..QueryOptions::default()
        };
        assert_ne!(
            QueryKey::normalize("mohan", fwd, 10, 7),
            QueryKey::normalize("mohan", QueryOptions::default(), 10, 7)
        );
        assert_ne!(
            QueryKey::normalize("mohan", QueryOptions::default(), 5, 7),
            QueryKey::normalize("mohan", QueryOptions::default(), 10, 7)
        );
    }

    #[test]
    fn equivalent_queries_share_one_cache_entry() {
        let service = service();
        let first = service
            .search("mohan sudarshan", QueryOptions::default())
            .unwrap();
        assert!(!first.cached);
        let second = service
            .search("Sudarshan  Mohan", QueryOptions::default())
            .unwrap();
        assert!(second.cached, "normalized repeat must hit");
        assert!(Arc::ptr_eq(&first.result, &second.result));
        let stats = service.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.queries, 2);
    }

    #[test]
    fn cached_answers_match_direct_search() {
        let service = service();
        let direct = service.banks().search("mohan sudarshan").unwrap();
        let via_cache = service
            .search("mohan sudarshan", QueryOptions::default())
            .unwrap();
        let repeat = service
            .search("mohan sudarshan", QueryOptions::default())
            .unwrap();
        for resp in [&via_cache, &repeat] {
            assert_eq!(resp.result.answers.len(), direct.len());
            for (a, b) in direct.iter().zip(&resp.result.answers) {
                assert_eq!(a.tree.signature(), b.tree.signature());
                assert!((a.relevance - b.relevance).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn errors_are_counted_not_cached() {
        let service = service();
        assert!(service.search("", QueryOptions::default()).is_err());
        assert!(service.search("", QueryOptions::default()).is_err());
        let stats = service.stats();
        assert_eq!(stats.errors, 2);
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.cache.entries, 0);
        // Unparseable queries are rejected before the cache, so they
        // don't skew the hit/miss accounting.
        assert_eq!(stats.cache.misses, 0);
    }

    #[test]
    fn post_lookup_search_failure_retracts_the_miss() {
        // Under `allow_missing_terms`, a parseable query whose terms all
        // match nothing fails *after* the cache lookup; the counted miss
        // must be retracted so `hits + misses == queries` holds.
        let mut config = banks_core::BanksConfig::default();
        config.matching.allow_missing_terms = true;
        let banks = Arc::new(Banks::with_config(dblp(), config).unwrap());
        let service = QueryService::new(banks, ServiceConfig::default());
        assert!(service
            .search("xyzzyplugh", QueryOptions::default())
            .is_err());
        let stats = service.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.cache.misses, 0, "failed query's miss is retracted");
        assert_eq!(stats.cache.hits, 0);
    }

    #[test]
    fn limit_is_capped_and_distinguished() {
        let service = service();
        let r1 = service
            .search(
                "mohan",
                QueryOptions {
                    limit: Some(1),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert!(r1.result.answers.len() <= 1);
        // Huge limits collapse to the configured maximum.
        let big = service
            .search(
                "mohan",
                QueryOptions {
                    limit: Some(10_000),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert_eq!(big.key.limit, service.banks().config().search.max_results);
    }

    #[test]
    fn install_snapshot_invalidates_stale_entries_lazily() {
        use banks_ingest::{DeltaBatch, SnapshotPublisher, TupleOp};
        use banks_storage::Value;

        let banks = Arc::new(Banks::new(dblp()).unwrap());
        let service = QueryService::new(Arc::clone(&banks), ServiceConfig::default());
        let mut publisher = SnapshotPublisher::new(banks);

        // Warm two entries at epoch 0.
        let r0 = service.search("mohan", QueryOptions::default()).unwrap();
        assert_eq!(r0.epoch, 0);
        service
            .search("sudarshan", QueryOptions::default())
            .unwrap();
        assert!(
            service
                .search("mohan", QueryOptions::default())
                .unwrap()
                .cached
        );

        // Publish a new author co-writing P1 and install epoch 1.
        let batch = DeltaBatch {
            ops: vec![
                TupleOp::Insert {
                    relation: "Author".into(),
                    values: vec![Value::text("GrayJ"), Value::text("Jim Gray")],
                },
                TupleOp::Insert {
                    relation: "Writes".into(),
                    values: vec![Value::text("GrayJ"), Value::text("P1")],
                },
            ],
        };
        let published = publisher.publish(&batch, Some("t1".into())).unwrap();
        service.install_snapshot(published.banks, published.info.epoch, Some("t1".into()));
        assert_eq!(service.epoch(), 1);

        // The stale entry is dropped on its next lookup — recomputed on
        // the new snapshot, stamped with the new epoch.
        let r1 = service.search("mohan", QueryOptions::default()).unwrap();
        assert!(!r1.cached, "stale epoch-0 entry must not be served");
        assert_eq!(r1.epoch, 1);
        // And the new tuples are searchable.
        assert_eq!(
            service
                .search("gray", QueryOptions::default())
                .unwrap()
                .result
                .answers
                .len(),
            1
        );

        let stats = service.stats();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.last_publish.as_deref(), Some("t1"));
        assert_eq!(stats.cache.invalidations, 1);
        assert_eq!(stats.invalidations_by_epoch, vec![(1, 1)]);
        assert_eq!(
            stats.cache.hits + stats.cache.misses,
            stats.queries,
            "lookup accounting survives invalidation"
        );
        // The untouched "sudarshan" entry invalidates on its own lookup.
        assert!(
            !service
                .search("sudarshan", QueryOptions::default())
                .unwrap()
                .cached
        );
        assert_eq!(service.stats().cache.invalidations, 2);
    }

    #[test]
    fn worker_arena_reuse_across_epochs_matches_fresh_search() {
        use banks_ingest::{DeltaBatch, SnapshotPublisher, TupleOp};
        use banks_storage::Value;

        // Every cache miss on this thread reuses one thread-local arena;
        // across an epoch change the graph grows, the arena blocks
        // resize, and results must still equal a fresh-allocation search.
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        let service = QueryService::new(Arc::clone(&banks), ServiceConfig::default());
        let mut publisher = SnapshotPublisher::new(banks);

        let check = |service: &QueryService, queries: &[&str]| {
            for q in queries {
                let via_service = service.search(q, QueryOptions::default()).unwrap();
                let direct = service.banks().search(q).unwrap();
                assert_eq!(via_service.result.answers.len(), direct.len());
                for (a, b) in direct.iter().zip(&via_service.result.answers) {
                    assert_eq!(a.tree.signature(), b.tree.signature());
                    assert_eq!(a.relevance.to_bits(), b.relevance.to_bits());
                }
            }
        };
        check(&service, &["mohan", "sudarshan", "mohan sudarshan"]);

        let batch = DeltaBatch {
            ops: vec![
                TupleOp::Insert {
                    relation: "Author".into(),
                    values: vec![Value::text("GrayJ"), Value::text("Jim Gray")],
                },
                TupleOp::Insert {
                    relation: "Writes".into(),
                    values: vec![Value::text("GrayJ"), Value::text("P1")],
                },
            ],
        };
        let published = publisher.publish(&batch, None).unwrap();
        service.install_snapshot(published.banks, published.info.epoch, None);
        check(
            &service,
            &["mohan", "gray", "gray sudarshan", "mohan sudarshan gray"],
        );
    }

    #[test]
    fn parallel_service_matches_sequential_and_counts_shards() {
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        let sequential = QueryService::new(Arc::clone(&banks), ServiceConfig::default());
        // Force the parallel executor even on this tiny fixture.
        let mut para_banks_config = banks.config().clone();
        para_banks_config.search.parallel_min_origins = 0;
        let para_banks = Arc::new(Banks::with_config(dblp(), para_banks_config).unwrap());
        let parallel = QueryService::new(
            para_banks,
            ServiceConfig {
                search_threads: 4,
                ..ServiceConfig::default()
            },
        );
        for q in ["mohan sudarshan", "transaction sudarshan", "mohan"] {
            let a = sequential.search(q, QueryOptions::default()).unwrap();
            let b = parallel.search(q, QueryOptions::default()).unwrap();
            assert_eq!(a.result.answers.len(), b.result.answers.len(), "{q}");
            for (x, y) in a.result.answers.iter().zip(&b.result.answers) {
                assert_eq!(x.tree, y.tree, "{q}");
                assert_eq!(x.relevance.to_bits(), y.relevance.to_bits(), "{q}");
            }
        }
        let seq_stats = sequential.stats();
        assert_eq!(seq_stats.search_threads, 1);
        assert_eq!(seq_stats.shards_spawned, 0);
        let par_stats = parallel.stats();
        assert_eq!(par_stats.search_threads, 4);
        assert!(
            par_stats.shards_spawned >= 4,
            "two 2-keyword cold queries spawn ≥ 4 shards, saw {}",
            par_stats.shards_spawned
        );
        assert_eq!(
            par_stats.sequential_fallbacks, 1,
            "the single-keyword query falls back"
        );
    }

    #[test]
    fn in_flight_snapshot_handles_survive_publication() {
        use banks_ingest::{DeltaBatch, SnapshotPublisher, TupleOp};
        use banks_storage::Value;

        let banks = Arc::new(Banks::new(dblp()).unwrap());
        let service = QueryService::new(Arc::clone(&banks), ServiceConfig::default());
        let mut publisher = SnapshotPublisher::new(banks);

        // A "reader" pins the epoch-0 snapshot (as a worker thread would
        // mid-query).
        let pinned = service.banks();
        let batch = DeltaBatch {
            ops: vec![TupleOp::Insert {
                relation: "Author".into(),
                values: vec![Value::text("NewA"), Value::text("Newcomer")],
            }],
        };
        let published = publisher.publish(&batch, None).unwrap();
        service.install_snapshot(published.banks, 1, None);

        // The pinned snapshot still answers on the old database.
        assert!(pinned.search("newcomer").unwrap().is_empty());
        assert_eq!(service.banks().search("newcomer").unwrap().len(), 1);
    }

    #[test]
    fn concurrent_searches_share_the_snapshot() {
        let service = Arc::new(service());
        let queries = ["mohan", "sudarshan", "mohan sudarshan", "transaction"];
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    for q in queries {
                        for _ in 0..8 {
                            let resp = service.search(q, QueryOptions::default()).unwrap();
                            assert!(!resp.result.answers.is_empty() || q == "transaction");
                        }
                    }
                });
            }
        });
        let stats = service.stats();
        assert_eq!(stats.queries, 4 * 4 * 8);
        // Every distinct query computed at least once, repeats hit.
        assert!(stats.cache.hits >= stats.queries - 4 * 4);
        assert_eq!(stats.cache.entries, 4);
    }

    #[test]
    fn cold_queries_record_spans_slow_log_and_latency() {
        let service = service();
        let cold = service
            .search("mohan sudarshan", QueryOptions::default())
            .unwrap();
        assert!(!cold.cached);
        let names: Vec<&str> = cold.result.spans.iter().map(|s| s.name).collect();
        for phase in ["parse", "match", "expand", "score"] {
            assert!(names.contains(&phase), "missing {phase} span in {names:?}");
        }
        for span in &cold.result.spans {
            assert!(span.end_ns >= span.start_ns, "span {span:?} runs backwards");
        }
        // A hit serves the cold run's spans and records hit latency.
        let hit = service
            .search("mohan sudarshan", QueryOptions::default())
            .unwrap();
        assert!(hit.cached);
        assert_eq!(hit.result.spans.len(), cold.result.spans.len());
        assert_eq!(service.cold_latency().snapshot().count(), 1);
        assert_eq!(service.hit_latency().snapshot().count(), 1);
        // The slow log retained the cold query under its normalized text.
        let slow = service.slow_log().snapshot();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].query, "mohan sudarshan");
        assert!(!slow[0].spans.is_empty());
        assert!(slow[0].total_us <= cold.result.cold_elapsed.as_micros() as u64);
    }

    #[test]
    fn span_recording_can_be_disabled_and_forced_per_query() {
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        let service = QueryService::new(
            banks,
            ServiceConfig {
                record_spans: false,
                ..ServiceConfig::default()
            },
        );
        let untraced = service.search("mohan", QueryOptions::default()).unwrap();
        assert!(untraced.result.spans.is_empty());
        // `?trace=1` overrides a service-wide off switch for one query.
        let traced = service
            .search(
                "sudarshan",
                QueryOptions {
                    trace: true,
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert!(!traced.result.spans.is_empty());
    }
}
