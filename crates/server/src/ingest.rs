//! Server-side ingestion: glue between a [`SnapshotPublisher`] (the
//! write side) and a [`QueryService`] (the read side).
//!
//! One mutex serializes writers; each successful publication is
//! installed into the query service under that same lock, so epochs
//! install in publication order and `GET /epochs` can never observe the
//! service ahead of the publisher.

use crate::service::QueryService;
use banks_ingest::{DeltaBatch, EpochInfo, IngestError, SnapshotPublisher};
use banks_persist::PersistentStore;
use banks_util::json::Json;
use std::sync::{Arc, Mutex};

/// The write path of a running server: owns the publisher, installs
/// published snapshots into the query service.
pub struct IngestEndpoint {
    service: Arc<QueryService>,
    publisher: Mutex<SnapshotPublisher>,
    /// `(current epoch, history)` mirror, refreshed after each publish
    /// under its own short-lived lock so `GET /epochs` never waits for
    /// an in-flight publish (which holds the publisher mutex for a
    /// whole database clone + derive).
    epochs: Mutex<(u64, Vec<EpochInfo>)>,
    /// The durable store behind the publisher's WAL hook, when the
    /// server runs with a data directory: consulted for `/stats`
    /// persistence counters and poked for background compaction after
    /// each publish.
    store: Option<Arc<PersistentStore>>,
}

impl IngestEndpoint {
    /// Wire an ingest endpoint to a freshly built service (both start at
    /// epoch 0, sharing the same snapshot, no durability).
    pub fn new(service: Arc<QueryService>) -> Arc<IngestEndpoint> {
        let publisher = SnapshotPublisher::new(service.banks());
        IngestEndpoint::with_publisher(service, publisher, None)
    }

    /// Wire an ingest endpoint around an explicitly constructed
    /// publisher — the durable path: `banks-cli serve --data-dir` seeds
    /// the publisher at the recovered epoch, installs the store's WAL
    /// hook on it, and passes the store here so `/stats` can report
    /// persistence counters and publications can trigger compaction.
    ///
    /// The publisher's current snapshot and epoch must match the query
    /// service's (both sides are built from the same recovery result).
    pub fn with_publisher(
        service: Arc<QueryService>,
        publisher: SnapshotPublisher,
        store: Option<Arc<PersistentStore>>,
    ) -> Arc<IngestEndpoint> {
        let epoch = publisher.epoch();
        debug_assert_eq!(epoch, service.epoch(), "publisher/service epoch drift");
        Arc::new(IngestEndpoint {
            service,
            publisher: Mutex::new(publisher),
            epochs: Mutex::new((epoch, Vec::new())),
            store,
        })
    }

    /// The durable store, when this endpoint persists its writes.
    pub fn store(&self) -> Option<&Arc<PersistentStore>> {
        self.store.as_ref()
    }

    /// Apply a delta batch: make it durable (when a store is wired —
    /// the publisher's hook appends to the WAL *before* promotion),
    /// publish a successor snapshot, and install it. `published_at` is
    /// the caller-supplied wall-clock timestamp surfaced by `/stats`
    /// and `/epochs`.
    pub fn ingest(
        &self,
        batch: &DeltaBatch,
        published_at: Option<String>,
    ) -> Result<EpochInfo, IngestError> {
        let mut publisher = self.publisher.lock().expect("publisher lock");
        let published = publisher.publish(batch, published_at.clone())?;
        self.service.install_snapshot(
            Arc::clone(&published.banks),
            published.info.epoch,
            published_at,
        );
        *self.epochs.lock().expect("epochs lock") =
            (publisher.epoch(), publisher.history().cloned().collect());
        drop(publisher);
        if let Some(store) = &self.store {
            // Cheap threshold check; actual snapshot rolls happen on the
            // store's background thread, off the ingest path.
            store.maybe_compact(&published.banks, published.info.epoch);
        }
        Ok(published.info)
    }

    /// Current epoch plus the recent publication history, as the
    /// `/epochs` JSON document. Reads the post-publish mirror — O(size
    /// of history), never blocked by a publish in progress.
    pub fn epochs_json(&self) -> Json {
        let (epoch, history) = {
            let mirror = self.epochs.lock().expect("epochs lock");
            (mirror.0, mirror.1.clone())
        };
        Json::obj([
            ("epoch", Json::Uint(epoch)),
            (
                "history",
                Json::Arr(history.iter().map(epoch_info_json).collect()),
            ),
        ])
    }
}

/// JSON rendering of one [`EpochInfo`] (shared by `/ingest` responses
/// and `/epochs` history entries).
pub fn epoch_info_json(info: &EpochInfo) -> Json {
    Json::obj([
        ("epoch", Json::Uint(info.epoch)),
        ("ops", Json::Uint(info.ops as u64)),
        ("inserted", Json::Uint(info.counts.inserted as u64)),
        ("updated", Json::Uint(info.counts.updated as u64)),
        ("deleted", Json::Uint(info.counts.deleted as u64)),
        ("nodes", Json::Uint(info.nodes as u64)),
        ("edges", Json::Uint(info.edges as u64)),
        ("incremental", Json::Bool(info.incremental)),
        (
            "published_at",
            match &info.published_at {
                Some(ts) => Json::Str(ts.clone()),
                None => Json::Null,
            },
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{QueryOptions, ServiceConfig};
    use banks_core::Banks;
    use banks_ingest::TupleOp;
    use banks_storage::{ColumnType, Database, RelationSchema, Value};

    fn service() -> Arc<QueryService> {
        let mut db = Database::new("t");
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("Id", ColumnType::Text)
                .column("Title", ColumnType::Text)
                .primary_key(&["Id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert(
            "Paper",
            vec![Value::text("p1"), Value::text("Recovery Concepts")],
        )
        .unwrap();
        Arc::new(QueryService::new(
            Arc::new(Banks::new(db).unwrap()),
            ServiceConfig::default(),
        ))
    }

    #[test]
    fn ingest_installs_into_service_and_records_history() {
        let service = service();
        let endpoint = IngestEndpoint::new(Arc::clone(&service));
        let batch = DeltaBatch {
            ops: vec![TupleOp::Insert {
                relation: "Paper".into(),
                values: vec![Value::text("p2"), Value::text("Transaction Models")],
            }],
        };
        let info = endpoint.ingest(&batch, Some("now".into())).unwrap();
        assert_eq!(info.epoch, 1);
        assert_eq!(service.epoch(), 1);
        assert_eq!(
            service
                .search("models", QueryOptions::default())
                .unwrap()
                .epoch,
            1
        );

        let doc = endpoint.epochs_json().compact();
        assert!(doc.contains(r#""epoch":1"#), "{doc}");
        assert!(doc.contains(r#""published_at":"now""#), "{doc}");

        // A failing batch changes nothing.
        let bad = DeltaBatch {
            ops: vec![TupleOp::Delete {
                relation: "Paper".into(),
                key: vec![Value::text("missing")],
            }],
        };
        assert!(endpoint.ingest(&bad, None).is_err());
        assert_eq!(service.epoch(), 1);
    }
}
