//! # banks-server
//!
//! A concurrent query service over a BANKS instance — the serving layer
//! the original system ran as a web application (§1: "BANKS … can be
//! invoked from a browser"), rebuilt for multi-user traffic:
//!
//! * **Epoch-versioned shared snapshot** — one immutable
//!   [`banks_core::Banks`] system (database + text index + data graph)
//!   behind an `Arc`, queried from any number of threads without
//!   synchronization. Queries never block each other; the graph is
//!   built (or restored from a `banks_graph::snapshot`) once at
//!   startup, and live writes publish *successor* snapshots through
//!   `banks-ingest` — [`service::QueryService::install_snapshot`] swaps
//!   the pointer while in-flight queries finish on their old epoch.
//! * **Sharded result cache** — [`cache::ShardedLruCache`] keyed on the
//!   normalized query ([`service::QueryKey`]: sorted lowercase keywords +
//!   strategy + limit + a ranking-parameter fingerprint), so `mohan
//!   sudarshan` and `Sudarshan  Mohan` share one entry. Entries are
//!   stamped with their snapshot's epoch and invalidated lazily after a
//!   publish. Per-instance hit/miss/insert/evict/invalidation counters
//!   feed the `/stats` endpoint.
//! * **Two front ends** — the in-process [`service::QueryService`] API
//!   (used by `banks-cli serve` and the `banks-bench` benches), and a
//!   std-only HTTP/1.1 JSON endpoint ([`http::BanksServer`]) with
//!   `GET /search`, `/node`, `/stats`, `/epochs`, `/health`, and
//!   `POST /ingest` (when wired with an [`ingest::IngestEndpoint`]),
//!   served by a fixed worker pool over `std::net::TcpListener` — no
//!   async runtime, no external dependencies.
//!
//! ```no_run
//! use std::sync::Arc;
//! use banks_core::Banks;
//! use banks_server::{BanksServer, QueryService, ServerConfig, ServiceConfig};
//! # fn db() -> banks_storage::Database { unimplemented!() }
//!
//! let banks = Arc::new(Banks::new(db()).unwrap());
//! let service = Arc::new(QueryService::new(banks, ServiceConfig::default()));
//! let server = BanksServer::bind(service, ServerConfig::default()).unwrap();
//! println!("listening on http://{}", server.local_addr());
//! server.join(); // serve until shutdown
//! ```

pub mod cache;
pub mod http;
pub mod ingest;
pub mod metrics;
pub mod service;

pub use cache::{CacheLookup, CacheStats, ShardedLruCache};
pub use http::{BanksServer, ServerConfig};
pub use ingest::IngestEndpoint;
pub use metrics::ServerMetrics;
pub use service::{
    CachedResult, QueryKey, QueryOptions, QueryService, SearchResponse, ServiceConfig, ServiceStats,
};
