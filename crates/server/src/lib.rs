//! # banks-server
//!
//! A concurrent query service over a BANKS instance — the serving layer
//! the original system ran as a web application (§1: "BANKS … can be
//! invoked from a browser"), rebuilt for multi-user traffic:
//!
//! * **Shared snapshot** — one immutable [`banks_core::Banks`] system
//!   (database + text index + data graph) behind an `Arc`, queried from
//!   any number of threads without synchronization. Queries never block
//!   each other; the graph is built (or restored from a
//!   `banks_graph::snapshot`) once at startup.
//! * **Sharded result cache** — [`cache::ShardedLruCache`] keyed on the
//!   normalized query ([`service::QueryKey`]: sorted lowercase keywords +
//!   strategy + limit + a ranking-parameter fingerprint), so `mohan
//!   sudarshan` and `Sudarshan  Mohan` share one entry. Per-instance
//!   hit/miss/insert/evict counters feed the `/stats` endpoint.
//! * **Two front ends** — the in-process [`service::QueryService`] API
//!   (used by `banks-cli serve` and the `banks-bench` throughput bench),
//!   and a std-only HTTP/1.1 JSON endpoint ([`http::BanksServer`]) with
//!   `GET /search`, `/node`, `/stats`, and `/health`, served by a fixed
//!   worker pool over `std::net::TcpListener` — no async runtime, no
//!   external dependencies.
//!
//! ```no_run
//! use std::sync::Arc;
//! use banks_core::Banks;
//! use banks_server::{BanksServer, QueryService, ServerConfig, ServiceConfig};
//! # fn db() -> banks_storage::Database { unimplemented!() }
//!
//! let banks = Arc::new(Banks::new(db()).unwrap());
//! let service = Arc::new(QueryService::new(banks, ServiceConfig::default()));
//! let server = BanksServer::bind(service, ServerConfig::default()).unwrap();
//! println!("listening on http://{}", server.local_addr());
//! server.join(); // serve until shutdown
//! ```

pub mod cache;
pub mod http;
pub mod service;

pub use cache::{CacheStats, ShardedLruCache};
pub use http::{BanksServer, ServerConfig};
pub use service::{
    CachedResult, QueryKey, QueryOptions, QueryService, SearchResponse, ServiceConfig, ServiceStats,
};
