//! The std-only HTTP/1.1 JSON front end.
//!
//! No async runtime and no HTTP library: a `TcpListener` acceptor thread
//! feeds connections through an `mpsc` channel to a fixed pool of worker
//! threads, each of which parses one request, runs it against the
//! shared [`QueryService`] (or the [`IngestEndpoint`] write path), and
//! writes a JSON response. One request per connection
//! (`Connection: close`) keeps the protocol surface tiny while still
//! exercising true multi-client concurrency.
//!
//! | route | parameters | response |
//! |---|---|---|
//! | `GET /search` | `q` (required), `limit`, `strategy` = `backward`\|`forward` | ranked connection trees + serving epoch |
//! | `GET /node` | `id` (graph node id) | the tuple behind one graph node |
//! | `GET /stats` | — | cache + service + graph counters, snapshot epoch |
//! | `GET /epochs` | — | current epoch + recent publication history |
//! | `POST /ingest` | `ts` (caller timestamp); body = delta JSON | publishes a new epoch |
//! | `GET /health` | — | liveness probe + current epoch, build version, uptime |
//! | `GET /metrics` | — | Prometheus text exposition (format 0.0.4) |
//! | `GET /debug/slow` | `limit` | worst cold queries with per-phase span breakdowns |
//! | `GET /replication/snapshot` | — | newest snapshot bundle, raw bytes (`X-Banks-Epoch` header) |
//! | `GET /replication/wal` | `from_epoch` (required), `wait_ms` | WAL frames past `from_epoch`, raw bytes; long-polls; `410` when compacted away |
//!
//! `/search` additionally accepts `min_epoch` (+ `wait_ms`): the
//! read-your-writes barrier for followers — wait until the serving epoch
//! reaches it, else `409` with a `Retry-After` header and a leader
//! redirect hint. `trace=1` adds a `trace` section with the per-phase
//! span breakdown of the result's cold run.
//!
//! The replication endpoints serve the **on-disk byte formats verbatim**
//! (bundle file, WAL frames), so a follower persists and parses exactly
//! what recovery would.

use crate::ingest::{epoch_info_json, IngestEndpoint};
use crate::metrics::{install_service_metrics, install_store_metrics, ServerMetrics};
use crate::service::{QueryOptions, QueryService};
use banks_core::SearchStrategy;
use banks_graph::NodeId;
use banks_ingest::DeltaBatch;
use banks_telemetry::Registry;
use banks_util::http::{parse_query_string, query_param};
use banks_util::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// HTTP server options.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the default, for tests).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Pending-connection queue depth before accepts block.
    pub backlog: usize,
    /// Where writes really go, when this server is a replication
    /// follower: surfaced as the `leader` redirect hint on `min_epoch`
    /// 409s and on rejected `POST /ingest`.
    pub leader_hint: Option<String>,
    /// Hard cap on a `POST /ingest` body (`--max-body-bytes`); larger
    /// declared bodies are rejected with 413 before any read.
    pub max_body_bytes: u64,
    /// Deadline budget granted to a request that does not carry an
    /// `X-Banks-Deadline-Ms` header (`--default-deadline-ms`). `None`
    /// disables deadlines for unannotated requests.
    pub default_deadline_ms: Option<u64>,
    /// Cap on a client-supplied `X-Banks-Deadline-Ms` budget, so a
    /// client cannot grant itself an unbounded hold on a worker.
    pub max_deadline_ms: u64,
    /// Admission bound: a connection that waited longer than this in
    /// the accept queue is shed with `503` + `Retry-After` instead of
    /// being served (the work it would trigger is already late, and the
    /// clients behind it are better served by fast failure). `/health`
    /// and `/metrics` are exempt.
    pub shed_after: Duration,
    /// Per-client (peer IP) token-bucket rate limit in requests/second;
    /// over-limit requests get `429` + `Retry-After`. `None` (the
    /// default) disables rate limiting. `/health` and `/metrics` are
    /// exempt.
    pub rate_limit_rps: Option<f64>,
    /// Budget for reading the request line + headers. A slowloris-style
    /// client that trickles header bytes is cut off after this long
    /// instead of pinning a worker for the full request timeout.
    pub header_read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            backlog: 256,
            leader_hint: None,
            max_body_bytes: 8 * 1024 * 1024,
            default_deadline_ms: None,
            max_deadline_ms: 60_000,
            shed_after: Duration::from_secs(5),
            rate_limit_rps: None,
            header_read_timeout: Duration::from_secs(2),
        }
    }
}

/// A running HTTP server; dropping it shuts the server down.
pub struct BanksServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl BanksServer {
    /// Bind and start serving on background threads (read-only: no
    /// ingest endpoint, `POST /ingest` answers 503).
    pub fn bind(service: Arc<QueryService>, config: ServerConfig) -> std::io::Result<BanksServer> {
        BanksServer::bind_with_ingest(service, None, config)
    }

    /// Bind with an optional write path: when `ingest` is provided,
    /// `POST /ingest` publishes delta batches and `GET /epochs` reports
    /// the publication history.
    pub fn bind_with_ingest(
        service: Arc<QueryService>,
        ingest: Option<Arc<IngestEndpoint>>,
        config: ServerConfig,
    ) -> std::io::Result<BanksServer> {
        BanksServer::bind_full(service, ingest, None, config)
    }

    /// Bind with an explicit durable store for `/stats` persistence
    /// counters. Usually the store rides along inside the ingest
    /// endpoint; this parameter covers the durable **read-only** shape
    /// (`serve --data-dir --no-ingest`), where recovery counters must
    /// still be observable even though no write path exists. When both
    /// are given, the explicit store wins.
    pub fn bind_full(
        service: Arc<QueryService>,
        ingest: Option<Arc<IngestEndpoint>>,
        store: Option<Arc<banks_persist::PersistentStore>>,
        config: ServerConfig,
    ) -> std::io::Result<BanksServer> {
        BanksServer::bind_with_registry(service, ingest, store, Arc::new(Registry::new()), config)
    }

    /// Bind against a caller-supplied metric registry. The server still
    /// installs its own families (HTTP, service, WAL); the caller may
    /// have pre-registered extra collectors — this is how a follower's
    /// replication counters reach the follower's `/metrics`.
    pub fn bind_with_registry(
        service: Arc<QueryService>,
        ingest: Option<Arc<IngestEndpoint>>,
        store: Option<Arc<banks_persist::PersistentStore>>,
        registry: Arc<Registry>,
        config: ServerConfig,
    ) -> std::io::Result<BanksServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        // Each queued connection carries its accept timestamp so the
        // worker that picks it up can measure queue latency — the load
        // signal behind shedding — and anchor the request's deadline at
        // arrival (queue time counts against the budget).
        type Queued = (TcpStream, Instant);
        let (tx, rx): (SyncSender<Queued>, Receiver<Queued>) = sync_channel(config.backlog);
        let rx = Arc::new(Mutex::new(rx));

        let metrics = ServerMetrics::new(registry);
        install_service_metrics(metrics.registry(), Arc::clone(&service));
        // `/stats` resolves the durable store the same way: explicit
        // binding first, else the one riding inside the ingest endpoint.
        let metric_store = store
            .clone()
            .or_else(|| ingest.as_ref().and_then(|i| i.store().cloned()));
        if let Some(store) = metric_store {
            install_store_metrics(metrics.registry(), store);
        }

        let shared = Arc::new(Shared {
            service,
            ingest,
            store,
            leader_hint: config.leader_hint.clone(),
            metrics,
            started: Instant::now(),
            max_body_bytes: config.max_body_bytes,
            default_deadline_ms: config.default_deadline_ms,
            max_deadline_ms: config.max_deadline_ms,
            shed_after: config.shed_after,
            limiter: config.rate_limit_rps.map(RateLimiter::new),
            header_read_timeout: config.header_read_timeout,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("banks-http-{i}"))
                    .spawn(move || worker_loop(rx, shared))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("banks-http-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match stream {
                            Ok(stream) => stream,
                            Err(_) => {
                                // Transient accept errors (EMFILE under
                                // fd exhaustion, ECONNABORTED) would
                                // otherwise busy-spin this thread at
                                // 100% CPU; back off briefly so workers
                                // can drain and free descriptors.
                                std::thread::sleep(Duration::from_millis(10));
                                continue;
                            }
                        };
                        // Depth counts connections sitting in the
                        // channel; the worker decrements on pickup.
                        shared.metrics.queue_depth.add(1);
                        // If all workers are gone the send fails; stop.
                        if tx.send((stream, Instant::now())).is_err() {
                            shared.metrics.queue_depth.sub(1);
                            break;
                        }
                    }
                    // tx drops here; workers drain the queue and exit.
                })
                .expect("spawn acceptor")
        };

        Ok(BanksServer {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown and wait for all threads to finish.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Block until the server is shut down from another thread (the CLI
    /// foreground mode).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the listener so the blocking accept wakes up and observes
        // the flag. A wildcard bind (0.0.0.0 / ::) is not connectable on
        // every platform, so the poke targets loopback on the bound port.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(if poke.is_ipv4() {
                std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
            } else {
                std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
            });
        }
        let poked = TcpStream::connect_timeout(&poke, Duration::from_secs(1)).is_ok();
        if !poked {
            // Could not reach our own listener (e.g. firewalled
            // interface-only bind): detach rather than deadlock the
            // caller — the threads exit with the process.
            self.acceptor.take();
            self.workers.drain(..);
            return;
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for BanksServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Everything a worker needs to answer any route, shared once per server.
struct Shared {
    service: Arc<QueryService>,
    ingest: Option<Arc<IngestEndpoint>>,
    store: Option<Arc<banks_persist::PersistentStore>>,
    leader_hint: Option<String>,
    metrics: ServerMetrics,
    /// Bind time, for `/health`'s `uptime_s`.
    started: Instant,
    max_body_bytes: u64,
    default_deadline_ms: Option<u64>,
    max_deadline_ms: u64,
    shed_after: Duration,
    limiter: Option<RateLimiter>,
    header_read_timeout: Duration,
}

/// Per-client token-bucket rate limiter, keyed by peer IP.
///
/// Buckets refill continuously at `rps` and hold at most `burst`
/// tokens (2× the rate, min 1), so a client gets a small surge
/// allowance but sustained traffic is clamped to the configured rate.
struct RateLimiter {
    rps: f64,
    burst: f64,
    buckets: Mutex<std::collections::HashMap<std::net::IpAddr, (f64, Instant)>>,
}

impl RateLimiter {
    /// Keys retained before the table is reset — an address-spoofing
    /// flood must not grow server memory without bound. Resetting hands
    /// every live client a fresh burst once, which is acceptable
    /// exactly because it takes tens of thousands of distinct IPs.
    const MAX_TRACKED_CLIENTS: usize = 65_536;

    fn new(rps: f64) -> RateLimiter {
        RateLimiter {
            rps: rps.max(f64::MIN_POSITIVE),
            burst: (rps * 2.0).max(1.0),
            buckets: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Take one token for `ip`; `false` means over limit (429).
    fn admit(&self, ip: std::net::IpAddr) -> bool {
        let now = Instant::now();
        let mut buckets = self.buckets.lock().expect("rate limiter lock");
        if buckets.len() >= Self::MAX_TRACKED_CLIENTS && !buckets.contains_key(&ip) {
            buckets.clear();
        }
        let (tokens, last) = buckets.entry(ip).or_insert((self.burst, now));
        *tokens = (*tokens + now.duration_since(*last).as_secs_f64() * self.rps).min(self.burst);
        *last = now;
        if *tokens >= 1.0 {
            *tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Seconds until one token exists again, for `Retry-After`.
    fn retry_after_secs(&self) -> u64 {
        (1.0 / self.rps).ceil().max(1.0) as u64
    }
}

fn worker_loop(rx: Arc<Mutex<Receiver<(TcpStream, Instant)>>>, shared: Arc<Shared>) {
    loop {
        let (stream, enqueued_at) = match rx.lock().expect("worker queue lock").recv() {
            Ok(queued) => queued,
            Err(_) => return, // acceptor gone and queue drained
        };
        shared.metrics.queue_depth.sub(1);
        // Contain per-request panics: a worker that dies is never
        // respawned, so an adversarial request that panicked the handler
        // would otherwise shrink the pool until the server is dead. The
        // service is immutable-plus-atomics, hence panic-safe to reuse.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = handle_connection(stream, enqueued_at, &shared);
        }));
    }
}

/// Hard cap on request-line + header bytes. A worker never reads more
/// than this per connection, bounding both memory and the time a slow
/// (or malicious) client can pin it.
const MAX_REQUEST_BYTES: u64 = 16 * 1024;

/// Longest a long-polling route (`/replication/wal`, `min_epoch` search)
/// may park before answering with whatever state exists.
const MAX_WAIT_MS: u64 = 30_000;

/// One response: status line tail, body, and whatever extra headers the
/// route wants on the wire. JSON by default; the replication routes ship
/// raw on-disk bytes as `application/octet-stream`.
struct Response {
    status: &'static str,
    content_type: &'static str,
    headers: Vec<(&'static str, String)>,
    body: Vec<u8>,
}

impl Response {
    fn json(status: &'static str, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Raw bytes stamped with the epoch they represent — even an empty
    /// WAL range carries `X-Banks-Epoch`, which is how a caught-up
    /// follower learns the leader's durable epoch without a second
    /// request.
    fn bytes(epoch: u64, body: Vec<u8>) -> Response {
        Response {
            status: "200 OK",
            content_type: "application/octet-stream",
            headers: vec![("X-Banks-Epoch", epoch.to_string())],
            body,
        }
    }

    fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }
}

fn handle_connection(
    stream: TcpStream,
    enqueued_at: Instant,
    shared: &Shared,
) -> std::io::Result<()> {
    let t0 = Instant::now();
    let queue_wait = t0.duration_since(enqueued_at);
    // The head is read under the (short) slowloris budget; the body
    // read below runs under the normal request timeout.
    stream.set_read_timeout(Some(shared.header_read_timeout))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let peer_ip = stream.peer_addr().ok().map(|a| a.ip());
    let mut reader = BufReader::new(stream.try_clone()?).take(MAX_REQUEST_BYTES);

    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers, remembering Content-Length for the write path and
    // the request's deadline budget. `take` above makes this loop
    // terminate even for a client that streams bytes forever.
    let mut complete = false;
    let mut content_length: u64 = 0;
    let mut bad_content_length = false;
    let mut deadline_ms: Option<u64> = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        if header == "\r\n" || header == "\n" {
            complete = true;
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                // An unparseable (or overflowing) length must be an
                // error, not a silent 0 that skips the size cap and
                // drops the body.
                match value.trim().parse() {
                    Ok(n) => content_length = n,
                    Err(_) => bad_content_length = true,
                }
            } else if name.eq_ignore_ascii_case("x-banks-deadline-ms") {
                deadline_ms = value.trim().parse().ok();
            }
        }
    }
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;

    let mut stream = stream;
    let path = request_line
        .split_whitespace()
        .nth(1)
        .map(|t| t.split_once('?').map_or(t, |(p, _)| p))
        .unwrap_or("")
        .to_string();
    // Probes and scrapes are exempt from every admission control: an
    // overloaded server must stay observable (and must not be restarted
    // by a health-checker that mistakes shedding for death).
    let exempt = path == "/health" || path == "/metrics";

    // The request's absolute deadline, anchored at *accept* time —
    // queue wait spends the same budget that searching does. A
    // client-supplied budget is capped; without one, the configured
    // default (if any) applies.
    let deadline = deadline_ms
        .map(|ms| ms.min(shared.max_deadline_ms))
        .or(shared.default_deadline_ms)
        .map(|ms| enqueued_at + Duration::from_millis(ms));

    // Only an *unterminated* head at the cap is oversized — a request
    // whose headers end exactly at the limit is complete and valid.
    // Only `POST /ingest` carries a meaningful body; draining (and
    // UTF-8 validating) up to the body cap for routes that will never
    // look at it would let any client pin a worker with useless work.
    // The connection is one-request (`Connection: close`), so an unread
    // body needs no draining for protocol correctness.
    let wants_body = request_line.starts_with("POST ") && path == "/ingest";

    let response = if !exempt && queue_wait > shared.shed_after {
        // Load shedding: this connection already waited so long that
        // serving it would only delay everything behind it further.
        shared.metrics.shed_total.inc();
        error_response("503 Service Unavailable", "server overloaded, request shed")
            .with_header("Retry-After", "1".to_string())
    } else if let Some(limiter) = shared
        .limiter
        .as_ref()
        .filter(|_| !exempt)
        .filter(|l| !peer_ip.is_none_or(|ip| l.admit(ip)))
    {
        shared.metrics.rate_limited_total.inc();
        error_response("429 Too Many Requests", "client rate limit exceeded")
            .with_header("Retry-After", limiter.retry_after_secs().to_string())
    } else if !exempt && deadline.is_some_and(|d| Instant::now() >= d) {
        // The budget lapsed before any work started (queue wait ate
        // it); answering 504 now is strictly cheaper than searching.
        shared.metrics.deadline_exceeded_total.inc();
        error_response("504 Gateway Timeout", "deadline exceeded before processing")
            .with_header("Retry-After", "1".to_string())
    } else if !complete && reader.limit() == 0 {
        error_response("431 Request Header Fields Too Large", "request too large")
    } else if bad_content_length {
        error_response("400 Bad Request", "bad Content-Length header")
    } else if wants_body && content_length > shared.max_body_bytes {
        error_response("413 Payload Too Large", "request body too large")
    } else {
        // The head reader's byte budget does not constrain the body. A
        // client closing early leaves a short body that fails JSON
        // parsing with a useful error; invalid UTF-8 is rejected rather
        // than silently replaced (the delta would otherwise publish
        // corrupted text).
        let request_body = if wants_body && content_length > 0 {
            reader.set_limit(content_length);
            let mut raw = Vec::with_capacity(content_length.min(64 * 1024) as usize);
            reader.read_to_end(&mut raw)?;
            String::from_utf8(raw).ok()
        } else {
            Some(String::new())
        };
        match request_body {
            Some(request_body) => route(&request_line, &request_body, deadline, shared),
            None => error_response("400 Bad Request", "request body is not valid UTF-8"),
        }
    };
    // Per-endpoint accounting: first read through computed response
    // (client write time excluded — a slow reader is not server time).
    {
        let path = request_line
            .split_whitespace()
            .nth(1)
            .map(|t| t.split_once('?').map_or(t, |(p, _)| p))
            .unwrap_or("");
        let endpoint = shared.metrics.endpoint(path);
        endpoint.requests.inc();
        endpoint.latency.record_duration(t0.elapsed());
    }
    let mut head = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        response.status,
        response.content_type,
        response.body.len(),
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

fn route(
    request_line: &str,
    request_body: &str,
    deadline: Option<Instant>,
    shared: &Shared,
) -> Response {
    let service = shared.service.as_ref();
    let ingest = shared.ingest.as_deref();
    let store = shared.store.as_deref();
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => return error_response("400 Bad Request", "malformed request line"),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = parse_query_string(query);
    match (method, path) {
        ("POST", "/ingest") => handle_ingest(&params, request_body, ingest, shared),
        (_, "/ingest") => error_response("405 Method Not Allowed", "/ingest requires POST"),
        ("GET", _) => match path {
            "/search" => handle_search(&params, deadline, service, shared),
            "/node" => handle_node(&params, service),
            "/stats" => Response::json("200 OK", stats_json(service, ingest, store).compact()),
            "/epochs" => handle_epochs(service, ingest),
            // The epoch rides in the liveness probe so a router can
            // track staleness with the request it already makes; the
            // build identity and uptime make probe output self-locating.
            "/health" => Response::json(
                "200 OK",
                Json::obj([
                    ("status", Json::Str("ok".into())),
                    ("epoch", Json::Uint(service.epoch())),
                    ("version", Json::Str(banks_util::build::version())),
                    ("uptime_s", Json::Uint(shared.started.elapsed().as_secs())),
                ])
                .compact(),
            ),
            "/metrics" => Response {
                status: "200 OK",
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                headers: Vec::new(),
                body: shared.metrics.registry().render().into_bytes(),
            },
            "/debug/slow" => handle_slow(&params, service),
            "/replication/snapshot" => handle_replication_snapshot(store),
            "/replication/wal" => handle_replication_wal(&params, store),
            _ => error_response("404 Not Found", "unknown path"),
        },
        _ => error_response("405 Method Not Allowed", "only GET is supported"),
    }
}

fn handle_ingest(
    params: &[(String, String)],
    request_body: &str,
    ingest: Option<&IngestEndpoint>,
    shared: &Shared,
) -> Response {
    let Some(endpoint) = ingest else {
        // A follower (or read-only server) points writers at the leader.
        let mut fields = vec![("error", Json::Str("ingestion is disabled".into()))];
        if let Some(leader) = &shared.leader_hint {
            fields.push(("leader", Json::Str(leader.clone())));
        }
        return Response::json("503 Service Unavailable", Json::obj(fields).compact());
    };
    let batch = match DeltaBatch::from_json(request_body) {
        Ok(batch) => batch,
        Err(e) => return error_response("400 Bad Request", &e.to_string()),
    };
    if batch.is_empty() {
        // Malformed request, not a data conflict: 409 is reserved for
        // batches the current database rejects.
        return error_response("400 Bad Request", "empty delta batch");
    }
    let published_at = query_param(params, "ts")
        .filter(|ts| !ts.is_empty())
        .map(str::to_string);
    match endpoint.ingest(&batch, published_at) {
        Ok(info) => Response::json("200 OK", epoch_info_json(&info).compact()),
        Err(e) => error_response("409 Conflict", &e.to_string()),
    }
}

fn handle_epochs(service: &QueryService, ingest: Option<&IngestEndpoint>) -> Response {
    let doc = match ingest {
        Some(endpoint) => endpoint.epochs_json(),
        None => Json::obj([
            ("epoch", Json::Uint(service.epoch())),
            ("history", Json::Arr(Vec::new())),
        ]),
    };
    Response::json("200 OK", doc.compact())
}

/// The follower-bootstrap feed: the newest snapshot bundle, byte for
/// byte as it sits on disk, stamped with its epoch.
fn handle_replication_snapshot(store: Option<&banks_persist::PersistentStore>) -> Response {
    let Some(store) = store else {
        return error_response(
            "503 Service Unavailable",
            "replication requires a data directory (serve --data-dir)",
        );
    };
    match store.newest_snapshot() {
        Ok((epoch, bytes)) => Response::bytes(epoch, bytes),
        Err(e) => error_response("500 Internal Server Error", &e.to_string()),
    }
}

/// The WAL tail feed: raw frames past `from_epoch`, long-polling up to
/// `wait_ms` when the follower is already caught up. `410 Gone` means
/// compaction dropped a needed frame — re-bootstrap from the snapshot.
fn handle_replication_wal(
    params: &[(String, String)],
    store: Option<&banks_persist::PersistentStore>,
) -> Response {
    let Some(store) = store else {
        return error_response(
            "503 Service Unavailable",
            "replication requires a data directory (serve --data-dir)",
        );
    };
    let Some(from_epoch) = query_param(params, "from_epoch").and_then(|v| v.parse::<u64>().ok())
    else {
        return error_response(
            "400 Bad Request",
            "missing or invalid required parameter `from_epoch`",
        );
    };
    let wait_ms = query_param(params, "wait_ms")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0)
        .min(MAX_WAIT_MS);
    let mut range = store.wal_since(from_epoch);
    if wait_ms > 0 && matches!(&range, Ok(Some(bytes)) if bytes.is_empty()) {
        // Caught up: park until a write lands (or the window closes),
        // then re-read — the long-poll half of the protocol.
        store.wait_past_epoch(from_epoch, Duration::from_millis(wait_ms));
        range = store.wal_since(from_epoch);
    }
    match range {
        Ok(Some(bytes)) => Response::bytes(store.durable_epoch(), bytes),
        Ok(None) => Response::json(
            "410 Gone",
            Json::obj([
                (
                    "error",
                    Json::Str(format!(
                        "WAL frames past epoch {from_epoch} were compacted away; \
                         re-bootstrap from /replication/snapshot"
                    )),
                ),
                ("from_epoch", Json::Uint(from_epoch)),
            ])
            .compact(),
        )
        .with_header("X-Banks-Epoch", store.durable_epoch().to_string()),
        Err(e) => error_response("500 Internal Server Error", &e.to_string()),
    }
}

fn error_response(status: &'static str, message: &str) -> Response {
    Response::json(
        status,
        Json::obj([("error", Json::Str(message.to_string()))]).compact(),
    )
}

fn handle_search(
    params: &[(String, String)],
    deadline: Option<Instant>,
    service: &QueryService,
    shared: &Shared,
) -> Response {
    let Some(q) = query_param(params, "q") else {
        return error_response("400 Bad Request", "missing required parameter `q`");
    };
    // Read-your-writes: a client that saw the leader ack epoch N asks a
    // follower for `min_epoch=N` and parks (bounded) until the tailer
    // catches up. On timeout: 409 + Retry-After + a leader hint, never a
    // silently stale answer.
    if let Some(raw) = query_param(params, "min_epoch").filter(|v| !v.is_empty()) {
        let Ok(min_epoch) = raw.parse::<u64>() else {
            return error_response("400 Bad Request", "min_epoch must be an unsigned integer");
        };
        let wait_ms = query_param(params, "wait_ms")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(2_000)
            .min(MAX_WAIT_MS);
        let reached = service.wait_for_min_epoch(min_epoch, Duration::from_millis(wait_ms));
        if reached < min_epoch {
            let mut fields = vec![
                (
                    "error",
                    Json::Str(format!(
                        "serving epoch {reached} has not reached min_epoch {min_epoch}"
                    )),
                ),
                ("epoch", Json::Uint(reached)),
                ("min_epoch", Json::Uint(min_epoch)),
            ];
            if let Some(leader) = &shared.leader_hint {
                fields.push(("leader", Json::Str(leader.clone())));
            }
            return Response::json("409 Conflict", Json::obj(fields).compact())
                .with_header("Retry-After", "1".to_string());
        }
    }
    let strategy = match query_param(params, "strategy") {
        None | Some("") | Some("backward") => SearchStrategy::Backward,
        Some("forward") => SearchStrategy::Forward,
        Some(other) => {
            return error_response(
                "400 Bad Request",
                &format!("unknown strategy `{other}` (backward|forward)"),
            )
        }
    };
    let limit = match query_param(params, "limit") {
        None | Some("") => None,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => return error_response("400 Bad Request", "limit must be a positive integer"),
        },
    };
    let trace = matches!(query_param(params, "trace"), Some("1") | Some("true"));

    let response = match service.search(
        q,
        QueryOptions {
            strategy,
            limit,
            trace,
            deadline,
        },
    ) {
        Ok(response) => response,
        Err(e) => return error_response("400 Bad Request", &e.to_string()),
    };

    // Deadline semantics: an expired search that still produced answers
    // returns them flagged `partial: true` (the prefix is correct, just
    // incomplete); an expired search with nothing to show is a 504 —
    // there is no useful body and the client should retry with a larger
    // budget or against a less loaded node.
    let partial = response.result.stats.deadline_expirations > 0;
    if partial {
        shared.metrics.deadline_exceeded_total.inc();
        if response.result.answers.is_empty() {
            return error_response("504 Gateway Timeout", "deadline exceeded during search")
                .with_header("Retry-After", "1".to_string());
        }
    }

    // The heavy part of the body — rendered trees and search counters —
    // is identical for every request hitting this cache entry, so it is
    // serialized once and memoized on the entry; repeat hits only build
    // the small volatile envelope around it. Rendering goes through the
    // snapshot that produced the result (`response.banks`): node ids are
    // snapshot-relative, and the current snapshot may already be a newer
    // epoch by the time this executes.
    let render_t0 = Instant::now();
    let fragment = response
        .result
        .http_fragment
        .get_or_init(|| answers_fragment(&response.banks, &response.result));
    let render_ns = render_t0.elapsed().as_nanos() as u64;

    let mut fields = vec![
        ("query", Json::Str(q.to_string())),
        (
            "normalized",
            Json::Arr(
                response
                    .key
                    .terms
                    .iter()
                    .map(|t| Json::Str(t.clone()))
                    .collect(),
            ),
        ),
        ("cached", Json::Bool(response.cached)),
        ("partial", Json::Bool(partial)),
        ("epoch", Json::Uint(response.epoch)),
        (
            "elapsed_us",
            Json::Uint(response.elapsed.as_micros() as u64),
        ),
        (
            "cold_elapsed_us",
            Json::Uint(response.result.cold_elapsed.as_micros() as u64),
        ),
    ];
    if trace {
        // The spans describe the *cold* run that produced this result —
        // on a hit, that run happened earlier; `render_ns` is this
        // request's own (usually memoized-away) serialization cost.
        fields.push((
            "trace",
            Json::obj([
                ("spans", spans_json(&response.result.spans)),
                ("render_ns", Json::Uint(render_ns)),
            ]),
        ));
    }
    let volatile = Json::obj(fields).compact();
    // Splice: `{volatile…,fragment…}`.
    let body = format!("{},{fragment}}}", &volatile[..volatile.len() - 1]);
    Response::json("200 OK", body)
}

fn spans_json(spans: &[banks_telemetry::Span]) -> Json {
    Json::Arr(
        spans
            .iter()
            .map(|s| {
                Json::obj([
                    ("name", Json::Str(s.name.to_string())),
                    ("index", Json::Uint(s.index as u64)),
                    ("start_ns", Json::Uint(s.start_ns)),
                    ("end_ns", Json::Uint(s.end_ns)),
                ])
            })
            .collect(),
    )
}

/// `GET /debug/slow`: the worst cold queries with span breakdowns,
/// slowest first. `limit` trims the list (default: everything retained).
fn handle_slow(params: &[(String, String)], service: &QueryService) -> Response {
    let limit = query_param(params, "limit")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(usize::MAX);
    let mut entries = service.slow_log().snapshot();
    entries.truncate(limit);
    let body = Json::obj([
        ("capacity", Json::Uint(service.slow_log().capacity() as u64)),
        ("count", Json::Uint(entries.len() as u64)),
        (
            "slowest",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("query", Json::Str(e.query.clone())),
                            ("total_us", Json::Uint(e.total_us)),
                            ("epoch", Json::Uint(e.epoch)),
                            ("unix_ms", Json::Uint(e.unix_ms)),
                            ("spans", spans_json(&e.spans)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Response::json("200 OK", body.compact())
}

/// Serialize the cacheable part of a search response:
/// `"count":…,"answers":[…],"search_stats":{…}` (no braces), against
/// the snapshot that computed it.
fn answers_fragment(banks: &banks_core::Banks, result: &crate::service::CachedResult) -> String {
    let answers: Vec<Json> = result
        .answers
        .iter()
        .enumerate()
        .map(|(rank, answer)| {
            let tree = &answer.tree;
            Json::obj([
                ("rank", Json::Uint(rank as u64 + 1)),
                ("relevance", Json::Num(answer.relevance)),
                ("root", node_json(banks, tree.root)),
                ("weight", Json::Num(tree.weight)),
                (
                    "keyword_nodes",
                    Json::Arr(
                        tree.keyword_nodes
                            .iter()
                            .map(|n| Json::Uint(n.0 as u64))
                            .collect(),
                    ),
                ),
                (
                    "edges",
                    Json::Arr(
                        tree.edges
                            .iter()
                            .map(|&(f, t, w)| {
                                Json::Arr(vec![
                                    Json::Uint(f.0 as u64),
                                    Json::Uint(t.0 as u64),
                                    Json::Num(w),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("rendered", Json::Str(banks.render_answer(answer))),
            ])
        })
        .collect();
    let stats = &result.stats;
    format!(
        r#""count":{},"answers":{},"search_stats":{}"#,
        answers.len(),
        Json::Arr(answers).compact(),
        Json::obj([
            ("iterators", Json::Uint(stats.iterators as u64)),
            ("pops", Json::Uint(stats.pops as u64)),
            ("trees_generated", Json::Uint(stats.trees_generated as u64)),
            ("trees_emitted", Json::Uint(stats.trees_emitted as u64)),
            ("early_terminated", Json::Bool(stats.early_terminations > 0),),
            ("shards", Json::Uint(stats.shards as u64)),
            (
                "sequential_fallback",
                Json::Bool(stats.sequential_fallbacks > 0),
            ),
            ("merge_stall_us", Json::Uint(stats.merge_stall_ns / 1_000)),
        ])
        .compact(),
    )
}

fn handle_node(params: &[(String, String)], service: &QueryService) -> Response {
    let Some(raw) = query_param(params, "id") else {
        return error_response("400 Bad Request", "missing required parameter `id`");
    };
    let Ok(id) = raw.parse::<u32>() else {
        return error_response("400 Bad Request", "id must be a graph node id (u32)");
    };
    // Pin one snapshot for both the bounds check and the rendering.
    let banks = service.banks();
    if (id as usize) >= banks.tuple_graph().node_count() {
        return error_response("404 Not Found", "no such node");
    }
    Response::json("200 OK", node_json(&banks, NodeId(id)).compact())
}

/// JSON description of one graph node: its tuple, relation, prestige,
/// and connectivity — enough for a client to browse the neighbourhood.
fn node_json(banks: &banks_core::Banks, node: NodeId) -> Json {
    let tg = banks.tuple_graph();
    let graph = tg.graph();
    let rid = tg.rid(node);
    let table = banks.db().table(rid.relation);
    let values: Vec<Json> = match banks.db().tuple(rid) {
        Ok(tuple) => tuple
            .values()
            .iter()
            .map(|v| Json::Str(v.to_string()))
            .collect(),
        Err(_) => Vec::new(),
    };
    Json::obj([
        ("id", Json::Uint(node.0 as u64)),
        ("relation", Json::Str(table.schema().name.clone())),
        ("slot", Json::Uint(rid.slot as u64)),
        ("values", Json::Arr(values)),
        ("prestige", Json::Num(graph.node_weight(node))),
        ("in_degree", Json::Uint(graph.in_degree(node) as u64)),
        ("out_degree", Json::Uint(graph.out_degree(node) as u64)),
    ])
}

fn stats_json(
    service: &QueryService,
    ingest: Option<&IngestEndpoint>,
    store: Option<&banks_persist::PersistentStore>,
) -> Json {
    // One atomic counter snapshot + the snapshot it was read against.
    // Storage figures below reuse `banks` instead of re-pinning the
    // current snapshot, so the document can't mix two epochs when a
    // publish lands mid-request.
    let (stats, banks) = service.stats_with_snapshot();
    let mut doc = Json::obj([
        ("queries", Json::Uint(stats.queries)),
        ("errors", Json::Uint(stats.errors)),
        ("epoch", Json::Uint(stats.epoch)),
        (
            "last_publish",
            match &stats.last_publish {
                Some(ts) => Json::Str(ts.clone()),
                None => Json::Null,
            },
        ),
        (
            "last_publish_unix_ms",
            match stats.last_publish_unix_ms {
                Some(ms) => Json::Uint(ms),
                None => Json::Null,
            },
        ),
        (
            "epoch_lag",
            match stats.epoch_lag {
                Some(lag) => Json::Uint(lag),
                None => Json::Null,
            },
        ),
        (
            "cache",
            Json::obj([
                ("hits", Json::Uint(stats.cache.hits)),
                ("misses", Json::Uint(stats.cache.misses)),
                ("insertions", Json::Uint(stats.cache.insertions)),
                ("evictions", Json::Uint(stats.cache.evictions)),
                ("invalidations", Json::Uint(stats.cache.invalidations)),
                ("entries", Json::Uint(stats.cache.entries as u64)),
                ("capacity", Json::Uint(stats.cache.capacity as u64)),
                ("hit_ratio", Json::Num(stats.cache.hit_ratio())),
                (
                    "invalidations_by_epoch",
                    Json::Obj(
                        stats
                            .invalidations_by_epoch
                            .iter()
                            .map(|&(e, n)| (e.to_string(), Json::Uint(n)))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "graph",
            Json::obj([
                ("nodes", Json::Uint(stats.graph_nodes as u64)),
                ("edges", Json::Uint(stats.graph_edges as u64)),
                ("memory_bytes", Json::Uint(stats.memory_bytes as u64)),
            ]),
        ),
        (
            "parallel",
            Json::obj([
                ("search_threads", Json::Uint(stats.search_threads as u64)),
                ("shards_spawned", Json::Uint(stats.shards_spawned)),
                (
                    "sequential_fallbacks",
                    Json::Uint(stats.sequential_fallbacks),
                ),
                ("merge_stall_us", Json::Uint(stats.merge_stall_us)),
                ("early_terminations", Json::Uint(stats.early_terminations)),
            ]),
        ),
        ("uptime_secs", Json::Num(stats.uptime_secs)),
    ]);
    // Storage backend: how the stats snapshot holds its graph and
    // text index. In-RAM is the classic fully-decoded backend; a paged
    // backend (serve --paged) reports its budget and paging counters.
    {
        let storage = match banks.tuple_graph().graph().storage_stats() {
            Some(s) => {
                let mut pairs = vec![
                    ("backend".to_string(), Json::Str("paged".into())),
                    (
                        "budget_bytes".to_string(),
                        Json::Uint(s.budget_bytes as u64),
                    ),
                    (
                        "resident_bytes".to_string(),
                        Json::Uint(s.resident_bytes as u64),
                    ),
                    (
                        "pinned_bytes".to_string(),
                        Json::Uint(s.pinned_bytes as u64),
                    ),
                    (
                        "segments".to_string(),
                        Json::obj([
                            ("total", Json::Uint(s.segment_count as u64)),
                            ("resident", Json::Uint(s.resident_segments as u64)),
                            ("pinned", Json::Uint(s.pinned_segments as u64)),
                        ]),
                    ),
                    ("page_ins".to_string(), Json::Uint(s.page_ins)),
                    ("evictions".to_string(), Json::Uint(s.evictions)),
                    (
                        "decode_micros".to_string(),
                        Json::Uint(s.decode_nanos / 1_000),
                    ),
                ];
                if let Some((cached, total, cached_bytes)) = banks.text_index().lazy_cache_stats() {
                    pairs.push((
                        "text_index".to_string(),
                        Json::obj([
                            ("cached_terms", Json::Uint(cached as u64)),
                            ("total_terms", Json::Uint(total as u64)),
                            ("cached_bytes", Json::Uint(cached_bytes as u64)),
                        ]),
                    ));
                }
                // Lazy tuple store (v3 bundles): block residency under
                // the same shared budget as the graph segments.
                if let Some(t) = banks.db().tuple_store_stats() {
                    pairs.push((
                        "tuples".to_string(),
                        Json::obj([
                            ("resident_bytes", Json::Uint(t.resident_bytes as u64)),
                            ("pinned_bytes", Json::Uint(t.pinned_bytes as u64)),
                            (
                                "blocks",
                                Json::obj([
                                    ("total", Json::Uint(t.block_count as u64)),
                                    ("resident", Json::Uint(t.resident_blocks as u64)),
                                    ("pinned", Json::Uint(t.pinned_blocks as u64)),
                                ]),
                            ),
                            ("page_ins", Json::Uint(t.page_ins)),
                            ("evictions", Json::Uint(t.evictions)),
                            ("decode_micros", Json::Uint(t.decode_nanos / 1_000)),
                        ]),
                    ));
                }
                Json::Obj(pairs)
            }
            None => Json::obj([("backend", Json::Str("in-ram".into()))]),
        };
        if let Json::Obj(pairs) = &mut doc {
            pairs.push(("storage".to_string(), storage));
        }
    }
    // Persistence counters, when the server runs with a data directory
    // — either via the write path's store or (durable read-only mode)
    // the explicitly bound one.
    if let Some(store) = store.or_else(|| ingest.and_then(|i| i.store().map(Arc::as_ref))) {
        let p = store.stats();
        let section = Json::obj([
            ("wal_bytes", Json::Uint(p.wal_bytes)),
            ("wal_batches", Json::Uint(p.wal_batches)),
            ("compactions", Json::Uint(p.compactions)),
            (
                "last_compaction",
                match p.last_compaction_epoch {
                    Some(e) => Json::Uint(e),
                    None => Json::Null,
                },
            ),
            (
                "recovered_epoch",
                match p.recovered_epoch {
                    Some(e) => Json::Uint(e),
                    None => Json::Null,
                },
            ),
            ("replayed_batches", Json::Uint(p.replayed_batches)),
            ("truncated_wal_bytes", Json::Uint(p.truncated_wal_bytes)),
            ("fsync", Json::Bool(p.fsync)),
            ("fsync_count", Json::Uint(p.fsync_count)),
            ("fsync_us", Json::Uint(p.fsync_nanos / 1_000)),
        ]);
        if let Json::Obj(pairs) = &mut doc {
            pairs.push(("persistence".to_string(), section));
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use banks_core::Banks;
    use banks_storage::{ColumnType, Database, RelationSchema, Value};
    use banks_util::http::{http_request, HttpResponse};

    fn dblp() -> Database {
        let mut db = Database::new("dblp");
        db.create_relation(
            RelationSchema::builder("Author")
                .column("AuthorId", ColumnType::Text)
                .column("AuthorName", ColumnType::Text)
                .primary_key(&["AuthorId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Paper")
                .column("PaperId", ColumnType::Text)
                .column("PaperName", ColumnType::Text)
                .primary_key(&["PaperId"])
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_relation(
            RelationSchema::builder("Writes")
                .column("AuthorId", ColumnType::Text)
                .column("PaperId", ColumnType::Text)
                .primary_key(&["AuthorId", "PaperId"])
                .foreign_key(&["AuthorId"], "Author")
                .foreign_key(&["PaperId"], "Paper")
                .build()
                .unwrap(),
        )
        .unwrap();
        for (id, name) in [("MohanC", "C. Mohan"), ("SudarshanS", "S. Sudarshan")] {
            db.insert("Author", vec![Value::text(id), Value::text(name)])
                .unwrap();
        }
        db.insert(
            "Paper",
            vec![
                Value::text("P1"),
                Value::text("Transaction Recovery Methods"),
            ],
        )
        .unwrap();
        for a in ["MohanC", "SudarshanS"] {
            db.insert("Writes", vec![Value::text(a), Value::text("P1")])
                .unwrap();
        }
        db
    }

    fn server(workers: usize) -> BanksServer {
        server_with(ServerConfig {
            workers,
            ..ServerConfig::default()
        })
    }

    fn server_with(config: ServerConfig) -> BanksServer {
        let banks = Arc::new(Banks::new(dblp()).unwrap());
        let service = Arc::new(crate::service::QueryService::new(
            banks,
            ServiceConfig::default(),
        ));
        BanksServer::bind(service, config).unwrap()
    }

    /// One raw request with arbitrary extra header lines — for the
    /// admission-control tests (`X-Banks-Deadline-Ms`, oversized
    /// `Content-Length`) that the plain client helper cannot send.
    fn raw_request(addr: SocketAddr, head: &str, body: &str) -> (u16, String) {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("{head}\r\n{body}").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        (status, response)
    }

    fn get(addr: SocketAddr, target: &str) -> HttpResponse {
        http_request(
            &addr.to_string(),
            "GET",
            target,
            None,
            Duration::from_secs(10),
        )
        .unwrap()
    }

    #[test]
    fn metrics_exposes_documented_families_after_traffic() {
        let server = server(2);
        let addr = server.local_addr();
        // One cold query, one hit.
        assert_eq!(get(addr, "/search?q=mohan+sudarshan").status, 200);
        assert_eq!(get(addr, "/search?q=sudarshan+mohan").status, 200);

        let resp = get(addr, "/metrics");
        assert_eq!(resp.status, 200);
        assert!(resp
            .header("content-type")
            .is_some_and(|ct| ct.starts_with("text/plain; version=0.0.4")));
        let body = resp.text();
        for family in [
            "banks_http_requests_total",
            "banks_http_request_seconds",
            "banks_http_queue_depth",
            "banks_shed_total",
            "banks_rate_limited_total",
            "banks_deadline_exceeded_total",
            "banks_query_seconds",
            "banks_queries_total",
            "banks_query_errors_total",
            "banks_cache_hits_total",
            "banks_cache_misses_total",
            "banks_cache_entries",
            "banks_epoch",
            "banks_graph_nodes",
            "banks_graph_edges",
            "banks_memory_bytes",
            "banks_search_shards_total",
            "banks_search_early_terminations_total",
            "banks_uptime_seconds",
            "banks_pager_budget_bytes",
            "banks_pager_resident_bytes",
            "banks_pager_page_ins_total",
            "banks_tuple_resident_bytes",
            "banks_tuple_page_ins_total",
            "banks_tuple_evictions_total",
        ] {
            assert!(
                body.contains(&format!("# TYPE {family} ")),
                "family {family} missing from /metrics:\n{body}"
            );
        }
        // The cold/hit split is labeled, histogram-shaped, and counted.
        assert!(body.contains(r#"banks_query_seconds_count{cache="miss"} 1"#));
        assert!(body.contains(r#"banks_query_seconds_count{cache="hit"} 1"#));
        assert!(body.contains(r#"banks_query_seconds_bucket{cache="miss",le="+Inf"} 1"#));
        // Per-endpoint request counters carry the endpoint label.
        assert!(body.contains(r#"banks_http_requests_total{endpoint="/search"} 2"#));
        // The in-RAM backend still exports pager families, as zeros.
        assert!(body.contains("banks_pager_budget_bytes 0"));
        assert!(body.contains("banks_tuple_resident_bytes 0"));
    }

    #[test]
    fn unknown_paths_fold_into_other_endpoint_label() {
        let server = server(1);
        let addr = server.local_addr();
        assert_eq!(get(addr, "/no/such/path").status, 404);
        assert_eq!(get(addr, "/another?x=1").status, 404);
        let body = get(addr, "/metrics").text();
        assert!(body.contains(r#"banks_http_requests_total{endpoint="other"} 2"#));
    }

    #[test]
    fn search_trace_param_returns_span_breakdown() {
        let server = server(1);
        let addr = server.local_addr();
        // Without trace: no trace object in the envelope.
        let plain = get(addr, "/search?q=mohan").text();
        assert!(!plain.contains(r#""trace""#));
        // With trace=1: spans + this request's render time.
        let traced = get(addr, "/search?q=mohan&trace=1").text();
        assert!(traced.contains(r#""trace":{"spans":["#), "{traced}");
        assert!(traced.contains(r#""render_ns""#));
        for span in ["parse", "match", "expand", "score"] {
            assert!(
                traced.contains(&format!(r#""name":"{span}""#)),
                "span {span} missing: {traced}"
            );
        }
        // A cache hit replays the cold run's spans.
        let hit = get(addr, "/search?q=mohan&trace=true").text();
        assert!(hit.contains(r#""cached":true"#));
        assert!(hit.contains(r#""name":"parse""#));
    }

    #[test]
    fn debug_slow_lists_recorded_queries() {
        let server = server(1);
        let addr = server.local_addr();
        get(addr, "/search?q=mohan+sudarshan");
        get(addr, "/search?q=sudarshan");
        let body = get(addr, "/debug/slow").text();
        assert!(body.contains(r#""capacity":16"#), "{body}");
        assert!(body.contains(r#""count":2"#), "{body}");
        assert!(body.contains(r#""query":"mohan sudarshan""#));
        assert!(body.contains(r#""spans""#));
        // `limit` trims the list to the slowest entries.
        let trimmed = get(addr, "/debug/slow?limit=1").text();
        assert!(trimmed.contains(r#""count":1"#), "{trimmed}");
    }

    #[test]
    fn health_reports_version_and_uptime() {
        let server = server(1);
        let addr = server.local_addr();
        let body = get(addr, "/health").text();
        assert!(body.contains(r#""status":"ok""#), "{body}");
        assert!(
            body.contains(&format!(r#""version":"{}""#, banks_util::build::version())),
            "{body}"
        );
        assert!(body.contains(r#""uptime_s""#), "{body}");
    }

    /// The saturation regression: with the shedding bound at zero every
    /// regular request is "too late" the moment a worker picks it up —
    /// 503 + `Retry-After` — but `/health` and `/metrics` are exempt
    /// from all admission control and keep answering 200, and the
    /// scrape taken *during* the shedding reports it.
    #[test]
    fn health_and_metrics_answer_while_everything_else_sheds() {
        let server = server_with(ServerConfig {
            workers: 2,
            shed_after: Duration::ZERO,
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        for _ in 0..3 {
            let resp = get(addr, "/search?q=mohan");
            assert_eq!(resp.status, 503, "{}", resp.text());
            assert_eq!(resp.header("retry-after"), Some("1"));
            assert!(resp.text().contains("shed"), "{}", resp.text());
        }
        assert_eq!(get(addr, "/stats").status, 503, "stats is not exempt");
        let health = get(addr, "/health");
        assert_eq!(health.status, 200, "{}", health.text());
        let scrape = get(addr, "/metrics");
        assert_eq!(scrape.status, 200);
        let body = scrape.text();
        assert!(body.contains("banks_shed_total 4"), "{body}");
    }

    /// Per-client token-bucket rate limiting: a burst past the bucket
    /// answers 429 + `Retry-After`; probes stay exempt; the metric
    /// counts the rejections.
    #[test]
    fn rate_limit_answers_429_and_exempts_probes() {
        let server = server_with(ServerConfig {
            workers: 1,
            rate_limit_rps: Some(1.0), // burst = 2 tokens
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        let mut statuses = Vec::new();
        for _ in 0..5 {
            statuses.push(get(addr, "/search?q=mohan").status);
        }
        assert_eq!(
            statuses.iter().filter(|&&s| s == 200).count(),
            2,
            "{statuses:?}"
        );
        assert_eq!(
            statuses.iter().filter(|&&s| s == 429).count(),
            3,
            "{statuses:?}"
        );
        // Probes never count against (or get caught by) the bucket.
        for _ in 0..4 {
            assert_eq!(get(addr, "/health").status, 200);
        }
        let body = get(addr, "/metrics").text();
        assert!(body.contains("banks_rate_limited_total 3"), "{body}");
    }

    /// A declared body over the cap is refused with 413 before any read;
    /// the limit applies only to routes that consume a body.
    #[test]
    fn oversized_ingest_body_is_rejected_413() {
        let server = server_with(ServerConfig {
            workers: 1,
            max_body_bytes: 64,
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        let body = "x".repeat(256);
        let (status, response) = raw_request(
            addr,
            &format!(
                "POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n",
                body.len()
            ),
            &body,
        );
        assert_eq!(status, 413, "{response}");
        // A tiny body passes the size gate (and fails later, on parsing).
        let (status, response) = raw_request(
            addr,
            "POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\nConnection: close\r\n",
            "{}",
        );
        assert_ne!(status, 413, "{response}");
    }

    /// An exhausted deadline budget answers 504 before any search work,
    /// and the client-supplied budget is capped by the server.
    #[test]
    fn zero_deadline_budget_answers_504_before_work() {
        let server = server_with(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let addr = server.local_addr();
        let (status, response) = raw_request(
            addr,
            "GET /search?q=mohan HTTP/1.1\r\nHost: x\r\nX-Banks-Deadline-Ms: 0\r\nConnection: close\r\n",
            "",
        );
        assert_eq!(status, 504, "{response}");
        assert!(response.contains("Retry-After"), "{response}");
        assert!(response.contains("deadline exceeded"), "{response}");
        // A generous budget on the same server serves normally.
        let (status, _) = raw_request(
            addr,
            "GET /search?q=mohan HTTP/1.1\r\nHost: x\r\nX-Banks-Deadline-Ms: 30000\r\nConnection: close\r\n",
            "",
        );
        assert_eq!(status, 200);
        let body = get(addr, "/metrics").text();
        assert!(body.contains("banks_deadline_exceeded_total 1"), "{body}");
    }

    /// Regression: `/stats` and `/metrics` must answer from counter
    /// snapshots, never behind a lock a slow query can hold. One worker
    /// parks in a `min_epoch` wait; the remaining worker must keep
    /// serving observability endpoints promptly.
    #[test]
    fn stats_and_metrics_stay_responsive_while_query_parks_a_worker() {
        let server = server(2);
        let addr = server.local_addr();
        let parked = std::thread::spawn(move || {
            // Epoch 999 never arrives; this holds its worker for ~3s.
            get(addr, "/search?q=mohan&min_epoch=999&wait_ms=3000")
        });
        // Give the parked request time to reach its worker.
        std::thread::sleep(Duration::from_millis(200));
        let t0 = Instant::now();
        assert_eq!(get(addr, "/stats").status, 200);
        assert_eq!(get(addr, "/metrics").status, 200);
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(1500),
            "observability endpoints stalled {elapsed:?} behind a parked query"
        );
        assert_eq!(parked.join().unwrap().status, 409);
    }
}
