//! A sharded LRU cache for query results.
//!
//! Result caching is the first lever for serving heavy traffic: keyword
//! query streams are heavily skewed (popular entities are searched over
//! and over), so a small cache absorbs most of the load. The cache is
//! split into independently locked shards — a query only contends with
//! queries hashing to the same shard — and every shard keeps an exact
//! LRU order via an intrusive doubly-linked list over a slab, so both
//! `get` and `insert` are O(1).
//!
//! Counters (hits, misses, insertions, evictions) are lock-free atomics
//! observable while the cache is under load; `/stats` reports them.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sentinel for "no slot" in the intrusive list.
const NIL: usize = usize::MAX;

/// Snapshot of cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written (including overwrites of an existing key).
    pub insertions: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries dropped because a [`ShardedLruCache::get_validate`]
    /// predicate rejected them (e.g. stamped with a superseded snapshot
    /// epoch). Each invalidation also counts as a miss.
    pub invalidations: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Maximum live entries across all shards.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when no lookups yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// One shard: an exact-LRU map guarded by its own mutex.
struct Shard<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used (eviction end).
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity.min(1024)),
            slots: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(self.slots[idx].value.clone())
    }

    /// Borrow the entry for `key` without touching its recency.
    fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slots[idx].value)
    }

    /// Drop the entry for `key`, if present.
    fn remove(&mut self, key: &K) {
        if let Some(idx) = self.map.remove(key) {
            self.unlink(idx);
            self.free.push(idx);
        }
    }

    /// Insert or overwrite; returns whether an entry was evicted.
    fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.free.push(victim);
            evicted = true;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Keys from most to least recently used (test/debug aid).
    fn lru_order(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.head;
        while idx != NIL {
            out.push(self.slots[idx].key.clone());
            idx = self.slots[idx].next;
        }
        out
    }
}

/// Verdict a [`ShardedLruCache::get_validate`] predicate passes on an
/// entry it found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Validity {
    /// Serve the entry.
    Valid,
    /// The entry is superseded: drop it and count an invalidation.
    Stale,
    /// The entry is *ahead of* the caller (e.g. a reader still pinned
    /// on an older snapshot finds a newer-epoch result): leave it for
    /// the callers it is valid for and treat this lookup as a miss.
    Newer,
}

/// Outcome of a validated lookup ([`ShardedLruCache::get_validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup<V> {
    /// A live entry passed the predicate (counted as a hit).
    Hit(V),
    /// An entry existed but was superseded; it was removed and counted
    /// as a miss plus an invalidation.
    Stale,
    /// An entry exists but is newer than the caller can use; it was
    /// left in place and the lookup counted as a plain miss.
    Newer,
    /// No entry (counted as a miss).
    Miss,
}

/// A concurrent LRU cache split into independently locked shards.
pub struct ShardedLruCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    hasher: RandomState,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLruCache<K, V> {
    /// A cache of `shards` independent shards (floored at 1, rounded up
    /// to a power of two), each holding `ceil(capacity / shards)`
    /// entries. The effective total — reported by [`Self::capacity`] —
    /// is therefore rounded up to a multiple of the shard count and can
    /// exceed the requested `capacity` by up to `shards - 1` entries.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shard_count = shards.max(1).next_power_of_two();
        let per_shard = capacity.max(1).div_ceil(shard_count);
        ShardedLruCache {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            hasher: RandomState::new(),
            capacity: per_shard * shard_count,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &K) -> &Mutex<Shard<K, V>> {
        // High bits pick the shard so the map's low-bit bucketing inside
        // a shard stays independent of shard selection.
        let idx = (self.hasher.hash_one(key) >> 32) as usize & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Look up a key, refreshing its recency. Counts a hit or miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let found = self.shard_of(key).lock().expect("cache lock").get(key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Look up a key, letting `judge` decide what to do with a found
    /// entry (see [`Validity`]).
    ///
    /// A [`Validity::Stale`] entry is removed under the same shard lock
    /// — no other thread can hit it in between — and counted as a miss
    /// plus an invalidation; the caller is expected to recompute and
    /// re-insert. This is the epoch check of the serving layer: entries
    /// are stamped with the snapshot epoch they were computed on, and a
    /// publish makes older stamps invalidate lazily, entry by entry,
    /// instead of flushing the whole cache at once. [`Validity::Newer`]
    /// protects the reverse race — a reader still pinned on an older
    /// snapshot must not destroy an entry that is perfectly valid for
    /// current readers.
    pub fn get_validate(&self, key: &K, judge: impl FnOnce(&V) -> Validity) -> CacheLookup<V> {
        let outcome = {
            let mut shard = self.shard_of(key).lock().expect("cache lock");
            match shard.get(key) {
                Some(v) => match judge(&v) {
                    Validity::Valid => CacheLookup::Hit(v),
                    Validity::Stale => {
                        shard.remove(key);
                        CacheLookup::Stale
                    }
                    Validity::Newer => CacheLookup::Newer,
                },
                None => CacheLookup::Miss,
            }
        };
        match &outcome {
            CacheLookup::Hit(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            CacheLookup::Stale => {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed)
            }
            CacheLookup::Newer | CacheLookup::Miss => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        outcome
    }

    /// Retract one previously counted miss. For callers whose lookup
    /// missed but whose query then failed to execute: the entry was
    /// never computable, so keeping the miss would leave the counters
    /// claiming more cacheable lookups than answered queries.
    pub fn forget_miss(&self) {
        self.misses.fetch_sub(1, Ordering::Relaxed);
    }

    /// Insert (or overwrite) an entry, possibly evicting the shard's
    /// least recently used entry.
    pub fn insert(&self, key: K, value: V) {
        let evicted = self
            .shard_of(&key)
            .lock()
            .expect("cache lock")
            .insert(key, value);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Insert unless an existing entry for the key makes `may_replace`
    /// return `false` — checked and written under one shard lock, so a
    /// racing writer cannot slip a fresher entry in between.
    ///
    /// This closes the laggard-writer race of epoch caching: a reader
    /// that pinned an old snapshot, missed, and computed slowly must not
    /// clobber the newer-epoch result another reader cached meanwhile.
    pub fn insert_if(&self, key: K, value: V, may_replace: impl FnOnce(&V) -> bool) {
        let mut shard = self.shard_of(&key).lock().expect("cache lock");
        if let Some(existing) = shard.peek(&key) {
            if !may_replace(existing) {
                return;
            }
        }
        let evicted = shard.insert(key, value);
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Live entry count (sums shard sizes; approximate under concurrency).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock").map.len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
        }
    }

    /// Keys of one shard from most to least recently used — exposed for
    /// eviction-order tests; meaningful only for single-shard caches.
    pub fn lru_order_of_shard(&self, shard: usize) -> Vec<K> {
        self.shards[shard].lock().expect("cache lock").lru_order()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn evicts_least_recently_used_first() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(3, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(3, 30);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get(&1), Some(10));
        cache.insert(4, 40);
        assert_eq!(cache.lru_order_of_shard(0), vec![4, 1, 3]);
        assert_eq!(cache.get(&2), None, "LRU entry was evicted");
        assert_eq!(cache.get(&3), Some(30));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn overwrite_refreshes_without_eviction() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.lru_order_of_shard(0), vec![1, 2]);
        assert_eq!(cache.get(&1), Some(11));
    }

    #[test]
    fn capacity_rounds_to_shards() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(10, 4);
        assert_eq!(cache.shard_count(), 4);
        assert!(cache.capacity() >= 10);
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(0, 0);
        assert_eq!(cache.capacity(), 1);
    }

    #[test]
    fn concurrent_hits_and_misses_count_exactly() {
        let cache: Arc<ShardedLruCache<u64, u64>> = Arc::new(ShardedLruCache::new(1024, 8));
        for k in 0..64 {
            cache.insert(k, k);
        }
        let threads: u64 = 8;
        let lookups_per_thread = 1000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..lookups_per_thread {
                        // Even iterations hit (keys 0..64), odd ones miss.
                        let key = if i % 2 == 0 { (i + t) % 64 } else { 1000 + i };
                        let _ = cache.get(&key);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits, threads * lookups_per_thread / 2);
        assert_eq!(stats.misses, threads * lookups_per_thread / 2);
        assert_eq!(stats.hit_ratio(), 0.5);
    }

    /// Epoch-style judge: serve matching stamps, drop older, skip newer.
    fn against(current: u64) -> impl Fn(&(u64, u32)) -> Validity {
        move |&(e, _)| match e.cmp(&current) {
            std::cmp::Ordering::Equal => Validity::Valid,
            std::cmp::Ordering::Less => Validity::Stale,
            std::cmp::Ordering::Greater => Validity::Newer,
        }
    }

    #[test]
    fn get_validate_invalidates_stale_entries() {
        let cache: ShardedLruCache<u32, (u64, u32)> = ShardedLruCache::new(8, 1);
        cache.insert(1, (0, 10)); // stamped epoch 0
        cache.insert(2, (0, 20));

        // Epoch 0 current: both hit.
        assert_eq!(
            cache.get_validate(&1, against(0)),
            CacheLookup::Hit((0, 10))
        );
        // Epoch bumps to 1: the entry is dropped, not served.
        assert_eq!(cache.get_validate(&1, against(1)), CacheLookup::Stale);
        // And it is really gone — the next lookup is a plain miss.
        assert_eq!(cache.get_validate(&1, against(1)), CacheLookup::Miss);
        // Re-inserted at the new epoch, it hits again.
        cache.insert(1, (1, 11));
        assert_eq!(
            cache.get_validate(&1, against(1)),
            CacheLookup::Hit((1, 11))
        );
        // Untouched entry 2 stays resident until looked up.
        assert_eq!(cache.len(), 2);

        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2, "stale + plain miss");
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.hits + stats.misses, 4, "every lookup accounted");
    }

    #[test]
    fn newer_entries_survive_laggard_lookups() {
        let cache: ShardedLruCache<u32, (u64, u32)> = ShardedLruCache::new(8, 1);
        cache.insert(1, (1, 11)); // computed at epoch 1
                                  // A reader still pinned on epoch 0 can't use it, but must not
                                  // destroy it either.
        assert_eq!(cache.get_validate(&1, against(0)), CacheLookup::Newer);
        assert_eq!(
            cache.get_validate(&1, against(1)),
            CacheLookup::Hit((1, 11))
        );
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 0, "a newer entry is not stale");
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn insert_if_refuses_to_clobber_newer_entries() {
        let cache: ShardedLruCache<u32, (u64, u32)> = ShardedLruCache::new(8, 1);
        // Laggard (epoch 0) computed after a fresher entry landed.
        cache.insert(1, (1, 11));
        cache.insert_if(1, (0, 10), |&(e, _)| e == 0);
        assert_eq!(
            cache.get_validate(&1, against(1)),
            CacheLookup::Hit((1, 11))
        );
        // Same-or-newer epoch may replace.
        cache.insert_if(1, (1, 12), |&(e, _)| e <= 1);
        assert_eq!(
            cache.get_validate(&1, against(1)),
            CacheLookup::Hit((1, 12))
        );
        // Absent keys insert unconditionally.
        cache.insert_if(2, (0, 20), |_| false);
        assert_eq!(
            cache.get_validate(&2, against(0)),
            CacheLookup::Hit((0, 20))
        );
        assert_eq!(cache.stats().insertions, 3, "skipped insert not counted");
    }

    #[test]
    fn remove_recycles_slots() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(2, 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(
            cache.get_validate(&1, |_| Validity::Stale),
            CacheLookup::Stale
        );
        cache.insert(3, 30);
        assert_eq!(cache.stats().evictions, 0, "freed slot reused, no eviction");
        assert_eq!(cache.lru_order_of_shard(0), vec![3, 2]);
    }

    #[test]
    fn sharded_cache_keeps_all_entries_within_capacity() {
        let cache: ShardedLruCache<u32, u32> = ShardedLruCache::new(64, 8);
        for k in 0..64 {
            cache.insert(k, k);
        }
        // Shards may be imbalanced, so some evictions are possible, but
        // the live count can never exceed capacity.
        assert!(cache.len() <= cache.capacity());
        assert!(cache.len() >= 32, "hashing should spread keys broadly");
    }
}
