//! A browsing session: view state plus history, driving the §4
//! interaction loop ("following hyperlinks, and interacting with controls
//! on the displayed results").

use crate::hyperlink::{backref_summaries, BackRefSummary, Hyperlink};
use crate::view::{render, JoinSpec, RenderedView, ReverseJoinSpec, ViewSpec};
use banks_storage::{Database, Predicate, RelationId, Rid, StorageResult, Value};

/// An interactive browsing session over one database.
#[derive(Debug)]
pub struct Session<'db> {
    db: &'db Database,
    history: Vec<ViewSpec>,
    cursor: usize,
}

impl<'db> Session<'db> {
    /// Start a session viewing `relation`.
    pub fn open(db: &'db Database, relation: &str) -> StorageResult<Session<'db>> {
        let rel = db.relation_id(relation)?;
        Ok(Session {
            db,
            history: vec![ViewSpec::relation(rel)],
            cursor: 0,
        })
    }

    /// The current view specification.
    pub fn current(&self) -> &ViewSpec {
        &self.history[self.cursor]
    }

    /// Render the current view.
    pub fn render(&self) -> StorageResult<RenderedView> {
        render(self.db, self.current())
    }

    /// Push a new view onto the history (dropping any forward entries).
    fn push(&mut self, spec: ViewSpec) {
        self.history.truncate(self.cursor + 1);
        self.history.push(spec);
        self.cursor += 1;
    }

    /// Modify the current view in place via a copy-push (so Back undoes
    /// the control interaction too).
    fn modify(&mut self, f: impl FnOnce(&mut ViewSpec)) {
        let mut spec = self.current().clone();
        f(&mut spec);
        self.push(spec);
    }

    /// Go back one step. Returns false at the start of history.
    pub fn back(&mut self) -> bool {
        if self.cursor == 0 {
            return false;
        }
        self.cursor -= 1;
        true
    }

    /// Go forward one step (after Back). Returns false at the end.
    pub fn forward(&mut self) -> bool {
        if self.cursor + 1 >= self.history.len() {
            return false;
        }
        self.cursor += 1;
        true
    }

    /// Follow a hyperlink.
    pub fn follow(&mut self, link: &Hyperlink) -> StorageResult<()> {
        match link {
            Hyperlink::Tuple(rid) => self.view_tuple(*rid),
            Hyperlink::BackRefs {
                target,
                relation,
                fk_index,
            } => self.view_backrefs(*target, *relation, *fk_index),
            Hyperlink::Relation(rel) => {
                self.push(ViewSpec::relation(*rel));
                Ok(())
            }
            Hyperlink::GroupValue {
                relation,
                column,
                value,
            } => {
                let mut spec = ViewSpec::relation(*relation);
                spec.selections = vec![(*column, Predicate::Eq(value.clone()))];
                self.push(spec);
                Ok(())
            }
            Hyperlink::Template(_) => Ok(()), // resolved by the caller's template registry
        }
    }

    /// View a single tuple (selection on its primary key).
    pub fn view_tuple(&mut self, rid: Rid) -> StorageResult<()> {
        let schema = self.db.table(rid.relation).schema().clone();
        let tuple = self.db.tuple(rid)?;
        let mut spec = ViewSpec::relation(rid.relation);
        spec.selections = schema
            .primary_key
            .iter()
            .map(|&k| (k as u32, Predicate::Eq(tuple.values()[k].clone())))
            .collect();
        self.push(spec);
        Ok(())
    }

    /// View the tuples referencing `target` through `(relation, fk_index)`.
    pub fn view_backrefs(
        &mut self,
        target: Rid,
        relation: RelationId,
        fk_index: usize,
    ) -> StorageResult<()> {
        let ref_schema = self.db.table(relation).schema().clone();
        let fk = ref_schema
            .foreign_keys
            .get(fk_index)
            .ok_or_else(|| {
                banks_storage::StorageError::InvalidSchema(format!(
                    "relation `{}` has no foreign key #{fk_index}",
                    ref_schema.name
                ))
            })?
            .clone();
        let target_tuple = self.db.tuple(target)?;
        let target_schema = self.db.table(target.relation).schema();
        let key_values: Vec<Value> = target_schema
            .primary_key
            .iter()
            .map(|&k| target_tuple.values()[k].clone())
            .collect();
        let mut spec = ViewSpec::relation(relation);
        spec.selections = fk
            .columns
            .iter()
            .zip(key_values)
            .map(|(&col, v)| (col as u32, Predicate::Eq(v)))
            .collect();
        self.push(spec);
        Ok(())
    }

    /// The backward-browsing menu for a tuple (§4: "organized by
    /// referencing relations").
    pub fn backref_menu(&self, target: Rid) -> Vec<BackRefSummary> {
        backref_summaries(self.db, target)
    }

    // ---- §4 table controls -------------------------------------------------

    /// Drop (project away) a column of the base relation.
    pub fn drop_column(&mut self, column: u32) {
        self.modify(|s| {
            if !s.dropped.contains(&column) {
                s.dropped.push(column);
            }
        });
    }

    /// Impose a selection on a column.
    pub fn select(&mut self, column: u32, predicate: Predicate) {
        self.modify(|s| s.selections.push((column, predicate)));
    }

    /// Join in the relation referenced by the base relation's `fk_index`.
    pub fn join(&mut self, fk_index: usize) {
        self.modify(|s| s.joins.push(JoinSpec { fk_index }));
    }

    /// Join in the tuples of `relation` referencing the base rows.
    pub fn reverse_join(&mut self, relation: RelationId, fk_index: usize) {
        self.modify(|s| s.reverse_join = Some(ReverseJoinSpec { relation, fk_index }));
    }

    /// Group the view by a column.
    pub fn group_by(&mut self, column: u32) {
        self.modify(|s| s.group_by = Some(column));
    }

    /// Sort by a rendered column.
    pub fn sort(&mut self, column: usize, ascending: bool) {
        self.modify(|s| s.sort = Some((column, ascending)));
    }

    /// Move to a page.
    pub fn page(&mut self, page: usize) {
        self.modify(|s| s.page = page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_datagen::thesis::{generate, ThesisConfig};

    #[test]
    fn figure4_flow_student_join_thesis() {
        // The paper's Fig. 4 narration: browse students, join the thesis
        // relation through its student reference, drop columns.
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let mut session = Session::open(&d.db, "Student").unwrap();
        let thesis_rel = d.db.relation_id("Thesis").unwrap();
        session.reverse_join(thesis_rel, 0);
        session.drop_column(3); // ProgramId
        let view = session.render().unwrap();
        assert!(view.columns.contains(&"Thesis.Title".to_string()));
        assert!(!view.columns.contains(&"Student.ProgramId".to_string()));
    }

    #[test]
    fn follow_tuple_link_shows_single_tuple() {
        let d = generate(ThesisConfig::tiny(2)).unwrap();
        let mut session = Session::open(&d.db, "Thesis").unwrap();
        let view = session.render().unwrap();
        // RollNo column (index 2) links to the student.
        let link = view.rows[0][2].link.clone().expect("fk link");
        session.follow(&link).unwrap();
        let tuple_view = session.render().unwrap();
        assert_eq!(tuple_view.total_rows, 1);
        assert_eq!(tuple_view.title, "Student");
    }

    #[test]
    fn backref_menu_and_follow() {
        let d = generate(ThesisConfig::tiny(3)).unwrap();
        let dept = d.db.relation("Department").unwrap();
        let cse = dept.lookup_pk(&[Value::text(&d.planted.cse_dept)]).unwrap();
        let session = Session::open(&d.db, "Department").unwrap();
        let menu = session.backref_menu(cse);
        assert!(menu.len() >= 2, "faculty and students reference CSE");
        let mut session = Session::open(&d.db, "Department").unwrap();
        let students = menu
            .iter()
            .find(|s| s.relation_name == "Student")
            .expect("student entry");
        session
            .view_backrefs(cse, students.relation, students.fk_index)
            .unwrap();
        let view = session.render().unwrap();
        assert_eq!(view.total_rows, students.count);
    }

    #[test]
    fn history_back_and_forward() {
        let d = generate(ThesisConfig::tiny(4)).unwrap();
        let mut session = Session::open(&d.db, "Student").unwrap();
        session.group_by(2);
        let grouped = session.render().unwrap();
        assert!(grouped.columns[1] == "count");
        assert!(session.back());
        let plain = session.render().unwrap();
        assert_eq!(plain.columns.len(), 4);
        assert!(session.forward());
        assert_eq!(session.render().unwrap().columns[1], "count");
        assert!(!session.forward());
        session.back();
        assert!(!session.back(), "at start of history");
    }

    #[test]
    fn group_drill_down_via_link() {
        let d = generate(ThesisConfig::tiny(5)).unwrap();
        let mut session = Session::open(&d.db, "Student").unwrap();
        session.group_by(2);
        let grouped = session.render().unwrap();
        let link = grouped.rows[0][0].link.clone().unwrap();
        let expected: usize = grouped.rows[0][1].text.parse().unwrap();
        session.follow(&link).unwrap();
        let drilled = session.render().unwrap();
        assert_eq!(drilled.total_rows, expected);
    }

    #[test]
    fn selection_control() {
        let d = generate(ThesisConfig::tiny(6)).unwrap();
        let mut session = Session::open(&d.db, "Faculty").unwrap();
        session.select(2, Predicate::Eq(Value::text(&d.planted.cse_dept)));
        let view = session.render().unwrap();
        assert!(view.total_rows > 0);
        for row in &view.rows {
            assert_eq!(row[2].text, d.planted.cse_dept);
        }
    }
}
