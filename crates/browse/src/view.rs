//! Browsable table views: the §4 interaction model as data.
//!
//! "Each table displayed comes with a variety of tools for interacting
//! with data": drop columns, impose selections, join referenced/referencing
//! tables, group by a column, sort by a column, paginate. A [`ViewSpec`]
//! captures those choices declaratively; [`render`] evaluates it against a
//! database into a [`RenderedView`] whose cells carry [`Hyperlink`]s.

use crate::hyperlink::Hyperlink;
use banks_storage::{Database, Predicate, RelationId, Rid, StorageError, StorageResult, Value};

/// A forward join: pull in the relation referenced by the base relation's
/// foreign key `fk_index` ("clicking on 'join' results in the referenced
/// table being joined in").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinSpec {
    /// Foreign key of the base relation to follow.
    pub fk_index: usize,
}

/// A reverse join: pull in the tuples of `relation` whose foreign key
/// `fk_index` references the base row ("the join feature can also be used
/// in the other direction, from a primary key to a referencing foreign
/// key"). Multiplies rows; base rows with no referents are kept with NULL
/// padding (outer-join semantics, friendlier for browsing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReverseJoinSpec {
    /// The referencing relation.
    pub relation: RelationId,
    /// The foreign key of that relation pointing at the base relation.
    pub fk_index: usize,
}

/// Declarative state of one browsing view.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewSpec {
    /// Base relation.
    pub relation: RelationId,
    /// Columns of the base relation projected away.
    pub dropped: Vec<u32>,
    /// Selections on base columns (ANDed).
    pub selections: Vec<(u32, Predicate)>,
    /// Forward joins, applied in order.
    pub joins: Vec<JoinSpec>,
    /// Optional reverse join.
    pub reverse_join: Option<ReverseJoinSpec>,
    /// Group-by column (base relation): the view shows distinct values
    /// with counts instead of tuples.
    pub group_by: Option<u32>,
    /// Sort column (index into the *rendered* columns) and ascending flag.
    pub sort: Option<(usize, bool)>,
    /// Zero-based page number.
    pub page: usize,
    /// Rows per page ("displayed data is paginated").
    pub page_size: usize,
}

impl ViewSpec {
    /// A plain first-page view of a relation.
    pub fn relation(relation: RelationId) -> ViewSpec {
        ViewSpec {
            relation,
            dropped: Vec::new(),
            selections: Vec::new(),
            joins: Vec::new(),
            reverse_join: None,
            group_by: None,
            sort: None,
            page: 0,
            page_size: 25,
        }
    }
}

/// One rendered cell: display text plus an optional navigation link.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Display text.
    pub text: String,
    /// Attached hyperlink, if any.
    pub link: Option<Hyperlink>,
}

impl Cell {
    fn plain(text: impl Into<String>) -> Cell {
        Cell {
            text: text.into(),
            link: None,
        }
    }
}

/// A fully evaluated view, ready for text or HTML rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedView {
    /// View title.
    pub title: String,
    /// Column headers (qualified as `Relation.Column` once joins add
    /// columns from several relations).
    pub columns: Vec<String>,
    /// The current page of rows.
    pub rows: Vec<Vec<Cell>>,
    /// Zero-based page number rendered.
    pub page: usize,
    /// Total number of pages.
    pub page_count: usize,
    /// Total rows across all pages.
    pub total_rows: usize,
}

/// Evaluate a view against the database.
pub fn render(db: &Database, spec: &ViewSpec) -> StorageResult<RenderedView> {
    let table = db.table(spec.relation);
    let schema = table.schema();
    for &(col, _) in &spec.selections {
        if col as usize >= schema.arity() {
            return Err(StorageError::UnknownColumn {
                relation: schema.name.clone(),
                column: format!("#{col}"),
            });
        }
    }

    // Base row set after selections.
    let base: Vec<(Rid, &banks_storage::Tuple)> = table
        .scan()
        .filter(|(_, tuple)| {
            spec.selections
                .iter()
                .all(|(col, pred)| pred.matches(&tuple.values()[*col as usize]))
        })
        .collect();

    if let Some(group_col) = spec.group_by {
        return render_grouped(db, spec, group_col, &base);
    }

    // Column plan: base columns (minus dropped), then joined columns.
    let mut columns: Vec<String> = Vec::new();
    let kept: Vec<usize> = (0..schema.arity())
        .filter(|i| !spec.dropped.contains(&(*i as u32)))
        .collect();
    for &i in &kept {
        columns.push(format!("{}.{}", schema.name, schema.columns[i].name));
    }
    for join in &spec.joins {
        let fk = schema.foreign_keys.get(join.fk_index).ok_or_else(|| {
            StorageError::InvalidSchema(format!(
                "relation `{}` has no foreign key #{}",
                schema.name, join.fk_index
            ))
        })?;
        let joined = db.relation(&fk.ref_relation)?.schema();
        for c in &joined.columns {
            columns.push(format!("{}.{}", joined.name, c.name));
        }
    }
    if let Some(rj) = spec.reverse_join {
        let joined = db.table(rj.relation).schema();
        if joined.foreign_keys.len() <= rj.fk_index {
            return Err(StorageError::InvalidSchema(format!(
                "relation `{}` has no foreign key #{}",
                joined.name, rj.fk_index
            )));
        }
        for c in &joined.columns {
            columns.push(format!("{}.{}", joined.name, c.name));
        }
    }

    // Row assembly.
    let mut rows: Vec<Vec<Cell>> = Vec::new();
    for &(rid, tuple) in &base {
        let mut row: Vec<Cell> = Vec::with_capacity(columns.len());
        for &i in &kept {
            row.push(cell_for(db, spec.relation, rid, tuple.values(), i));
        }
        for join in &spec.joins {
            match db.resolve_fk(rid, join.fk_index)? {
                Some(target) => {
                    let joined = db.tuple(target)?;
                    for ci in 0..joined.arity() {
                        row.push(cell_for(db, target.relation, target, joined.values(), ci));
                    }
                }
                None => {
                    let joined = db
                        .relation(&schema.foreign_keys[join.fk_index].ref_relation)?
                        .schema();
                    for _ in 0..joined.arity() {
                        row.push(Cell::plain("NULL"));
                    }
                }
            }
        }
        match spec.reverse_join {
            None => rows.push(row),
            Some(rj) => {
                let referents: Vec<Rid> = db
                    .referencing(rid)
                    .iter()
                    .filter(|b| b.from.relation == rj.relation && b.fk_index == rj.fk_index)
                    .map(|b| b.from)
                    .collect();
                if referents.is_empty() {
                    let arity = db.table(rj.relation).schema().arity();
                    let mut padded = row.clone();
                    padded.extend((0..arity).map(|_| Cell::plain("NULL")));
                    rows.push(padded);
                } else {
                    for referent in referents {
                        let tuple = db.tuple(referent)?;
                        let mut expanded = row.clone();
                        for (ci, _) in tuple.values().iter().enumerate() {
                            expanded.push(cell_for(
                                db,
                                referent.relation,
                                referent,
                                tuple.values(),
                                ci,
                            ));
                        }
                        rows.push(expanded);
                    }
                }
            }
        }
    }

    if let Some((col, ascending)) = spec.sort {
        if col < columns.len() {
            rows.sort_by(|a, b| {
                let ord = a[col].text.cmp(&b[col].text);
                if ascending {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
    }

    Ok(paginate(
        schema.name.to_string(),
        columns,
        rows,
        spec.page,
        spec.page_size,
    ))
}

/// Grouped rendering: distinct values of the grouping column with counts
/// and drill-down links.
fn render_grouped(
    db: &Database,
    spec: &ViewSpec,
    group_col: u32,
    base: &[(Rid, &banks_storage::Tuple)],
) -> StorageResult<RenderedView> {
    let schema = db.table(spec.relation).schema();
    if group_col as usize >= schema.arity() {
        return Err(StorageError::UnknownColumn {
            relation: schema.name.clone(),
            column: format!("#{group_col}"),
        });
    }
    let mut groups: Vec<(Value, usize)> = Vec::new();
    for (_, tuple) in base {
        let v = tuple.values()[group_col as usize].clone();
        match groups.iter_mut().find(|(g, _)| *g == v) {
            Some((_, count)) => *count += 1,
            None => groups.push((v, 1)),
        }
    }
    groups.sort_by(|a, b| a.0.cmp(&b.0));
    let col_name = &schema.columns[group_col as usize].name;
    let columns = vec![format!("{}.{col_name}", schema.name), "count".to_string()];
    let rows: Vec<Vec<Cell>> = groups
        .into_iter()
        .map(|(value, count)| {
            vec![
                Cell {
                    text: value.to_string(),
                    link: Some(Hyperlink::GroupValue {
                        relation: spec.relation,
                        column: group_col,
                        value,
                    }),
                },
                Cell::plain(count.to_string()),
            ]
        })
        .collect();
    Ok(paginate(
        format!("{} grouped by {col_name}", schema.name),
        columns,
        rows,
        spec.page,
        spec.page_size,
    ))
}

/// Build the cell for column `col` of a tuple, attaching the hyperlink the
/// schema implies: FK columns link to the referenced tuple, PK columns
/// link backwards.
fn cell_for(db: &Database, relation: RelationId, rid: Rid, values: &[Value], col: usize) -> Cell {
    let schema = db.table(relation).schema();
    let value = &values[col];
    let text = value.to_string();
    if value.is_null() {
        return Cell::plain(text);
    }
    // FK column → link to referenced tuple.
    for (fk_index, fk) in schema.foreign_keys.iter().enumerate() {
        if fk.columns.contains(&col) {
            if let Ok(Some(target)) = db.resolve_fk(rid, fk_index) {
                return Cell {
                    text,
                    link: Some(Hyperlink::Tuple(target)),
                };
            }
        }
    }
    // PK column → backward browsing menu (represented as a link to the
    // first referencing relation; the session exposes the full menu).
    if schema.primary_key.contains(&col) {
        if let Some(backref) = db.referencing(rid).first() {
            return Cell {
                text,
                link: Some(Hyperlink::BackRefs {
                    target: rid,
                    relation: backref.from.relation,
                    fk_index: backref.fk_index,
                }),
            };
        }
    }
    Cell::plain(text)
}

fn paginate(
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
    page: usize,
    page_size: usize,
) -> RenderedView {
    let page_size = page_size.max(1);
    let total_rows = rows.len();
    let page_count = total_rows.div_ceil(page_size).max(1);
    let page = page.min(page_count - 1);
    let start = page * page_size;
    let end = (start + page_size).min(total_rows);
    let rows = rows[start..end].to_vec();
    RenderedView {
        title,
        columns,
        rows,
        page,
        page_count,
        total_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_datagen::thesis::{generate, ThesisConfig};

    fn fixture() -> banks_datagen::thesis::ThesisDataset {
        generate(ThesisConfig::tiny(1)).unwrap()
    }

    #[test]
    fn plain_view_lists_rows_with_links() {
        let d = fixture();
        let student_rel = d.db.relation_id("Student").unwrap();
        let spec = ViewSpec::relation(student_rel);
        let view = render(&d.db, &spec).unwrap();
        assert_eq!(view.columns.len(), 4);
        assert_eq!(view.rows.len(), 25, "first page");
        assert_eq!(view.total_rows, 80);
        assert_eq!(view.page_count, 4);
        // DeptId cells are FK links.
        let dept_col = 2;
        assert!(matches!(
            view.rows[0][dept_col].link,
            Some(Hyperlink::Tuple(_))
        ));
        // RollNo (pk) cells of students *with* theses link backwards.
        let linked_pk = view
            .rows
            .iter()
            .filter(|r| matches!(r[0].link, Some(Hyperlink::BackRefs { .. })))
            .count();
        assert!(linked_pk > 0, "some students are referenced by theses");
    }

    #[test]
    fn selection_filters_rows() {
        let d = fixture();
        let student_rel = d.db.relation_id("Student").unwrap();
        let mut spec = ViewSpec::relation(student_rel);
        spec.selections = vec![(2, Predicate::Eq(Value::text(&d.planted.cse_dept)))];
        let view = render(&d.db, &spec).unwrap();
        assert!(view.total_rows > 0);
        assert!(view.total_rows < 80);
        for row in &view.rows {
            assert_eq!(row[2].text, d.planted.cse_dept);
        }
    }

    #[test]
    fn drop_column_projects_away() {
        let d = fixture();
        let student_rel = d.db.relation_id("Student").unwrap();
        let mut spec = ViewSpec::relation(student_rel);
        spec.dropped = vec![1, 3];
        let view = render(&d.db, &spec).unwrap();
        assert_eq!(view.columns, vec!["Student.RollNo", "Student.DeptId"]);
        assert_eq!(view.rows[0].len(), 2);
    }

    #[test]
    fn forward_join_appends_referenced_columns() {
        let d = fixture();
        let thesis_rel = d.db.relation_id("Thesis").unwrap();
        let mut spec = ViewSpec::relation(thesis_rel);
        spec.joins = vec![JoinSpec { fk_index: 0 }]; // join Student
        let view = render(&d.db, &spec).unwrap();
        assert!(view.columns.contains(&"Student.StudentName".to_string()));
        // Joined row count equals base row count for a forward join.
        assert_eq!(view.total_rows, d.db.relation("Thesis").unwrap().len());
    }

    #[test]
    fn reverse_join_expands_rows() {
        let d = fixture();
        let faculty_rel = d.db.relation_id("Faculty").unwrap();
        let thesis_rel = d.db.relation_id("Thesis").unwrap();
        let mut spec = ViewSpec::relation(faculty_rel);
        spec.reverse_join = Some(ReverseJoinSpec {
            relation: thesis_rel,
            fk_index: 1, // Thesis.Advisor
        });
        let view = render(&d.db, &spec).unwrap();
        // Every thesis contributes a row; advisor-less faculty keep one
        // NULL-padded row each.
        let theses = d.db.relation("Thesis").unwrap().len();
        let faculty = d.db.relation("Faculty").unwrap().len();
        assert!(view.total_rows >= theses);
        assert!(view.total_rows <= theses + faculty);
        assert!(view.columns.contains(&"Thesis.Title".to_string()));
    }

    #[test]
    fn group_by_counts_distinct_values() {
        let d = fixture();
        let student_rel = d.db.relation_id("Student").unwrap();
        let mut spec = ViewSpec::relation(student_rel);
        spec.group_by = Some(2); // DeptId
        let view = render(&d.db, &spec).unwrap();
        assert_eq!(view.columns[1], "count");
        let total: usize = view
            .rows
            .iter()
            .map(|r| r[1].text.parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 80, "group counts partition the relation");
        for row in &view.rows {
            assert!(matches!(row[0].link, Some(Hyperlink::GroupValue { .. })));
        }
    }

    #[test]
    fn sort_and_paginate() {
        let d = fixture();
        let student_rel = d.db.relation_id("Student").unwrap();
        let mut spec = ViewSpec::relation(student_rel);
        spec.sort = Some((0, false));
        spec.page_size = 10;
        spec.page = 1;
        let view = render(&d.db, &spec).unwrap();
        assert_eq!(view.rows.len(), 10);
        assert_eq!(view.page, 1);
        assert_eq!(view.page_count, 8);
        let mut texts: Vec<String> = view.rows.iter().map(|r| r[0].text.clone()).collect();
        let mut sorted = texts.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(texts, sorted, "descending by RollNo");
        texts.dedup();
        assert_eq!(texts.len(), 10);
    }

    #[test]
    fn page_out_of_range_clamps() {
        let d = fixture();
        let student_rel = d.db.relation_id("Student").unwrap();
        let mut spec = ViewSpec::relation(student_rel);
        spec.page = 999;
        let view = render(&d.db, &spec).unwrap();
        assert_eq!(view.page, view.page_count - 1);
        assert!(!view.rows.is_empty());
    }

    #[test]
    fn bad_join_index_errors() {
        let d = fixture();
        let student_rel = d.db.relation_id("Student").unwrap();
        let mut spec = ViewSpec::relation(student_rel);
        spec.joins = vec![JoinSpec { fk_index: 9 }];
        assert!(render(&d.db, &spec).is_err());
    }
}
