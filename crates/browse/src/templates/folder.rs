//! Folder-view template (§4).
//!
//! "Folder views are similar to grouping, but are modeled after the folder
//! view of files and directories supported in many environments such as
//! Windows Explorer." Where the group-by template is drilled lazily one
//! level at a time, the folder view materializes the whole tree up front
//! (folders = group values, leaves = tuples).

use banks_storage::{Database, RelationId, Rid, StorageError, StorageResult, Value};

/// Specification: a relation, grouping attributes, and a leaf cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FolderSpec {
    /// Relation to organize.
    pub relation: RelationId,
    /// Folder levels, outermost first.
    pub levels: Vec<u32>,
    /// Maximum tuples listed per innermost folder (0 = unlimited).
    pub max_leaves: usize,
}

/// A folder node: a labelled group with sub-folders or leaf tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct FolderNode {
    /// Folder label (the group value; root uses the relation name).
    pub label: String,
    /// Total tuples under this folder.
    pub count: usize,
    /// Sub-folders (empty at the innermost level).
    pub children: Vec<FolderNode>,
    /// Leaf tuples (populated only at the innermost level, capped by
    /// `max_leaves`).
    pub leaves: Vec<Rid>,
}

impl FolderNode {
    /// Depth of the tree under this node (a leaf-only node has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Total folders in the subtree (including self).
    pub fn folder_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| c.folder_count())
            .sum::<usize>()
    }
}

/// Materialize the folder tree.
pub fn evaluate(db: &Database, spec: &FolderSpec) -> StorageResult<FolderNode> {
    let table = db.table(spec.relation);
    for &level in &spec.levels {
        if level as usize >= table.schema().arity() {
            return Err(StorageError::UnknownColumn {
                relation: table.schema().name.clone(),
                column: format!("#{level}"),
            });
        }
    }
    let all: Vec<Rid> = table.scan().map(|(rid, _)| rid).collect();
    build(db, spec, table.schema().name.clone(), &all, 0)
}

fn build(
    db: &Database,
    spec: &FolderSpec,
    label: String,
    rids: &[Rid],
    depth: usize,
) -> StorageResult<FolderNode> {
    if depth == spec.levels.len() {
        let mut leaves = rids.to_vec();
        if spec.max_leaves > 0 {
            leaves.truncate(spec.max_leaves);
        }
        return Ok(FolderNode {
            label,
            count: rids.len(),
            children: Vec::new(),
            leaves,
        });
    }
    let attr = spec.levels[depth] as usize;
    let mut groups: Vec<(Value, Vec<Rid>)> = Vec::new();
    for &rid in rids {
        let v = db.tuple(rid)?.values()[attr].clone();
        match groups.iter_mut().find(|(g, _)| *g == v) {
            Some((_, members)) => members.push(rid),
            None => groups.push((v, vec![rid])),
        }
    }
    groups.sort_by(|a, b| a.0.cmp(&b.0));
    let mut children = Vec::with_capacity(groups.len());
    for (value, members) in groups {
        children.push(build(db, spec, value.to_string(), &members, depth + 1)?);
    }
    Ok(FolderNode {
        label,
        count: rids.len(),
        children,
        leaves: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_datagen::thesis::{generate, ThesisConfig};

    #[test]
    fn two_level_tree_structure() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let spec = FolderSpec {
            relation: d.db.relation_id("Student").unwrap(),
            levels: vec![2, 3],
            max_leaves: 0,
        };
        let root = evaluate(&d.db, &spec).unwrap();
        assert_eq!(root.label, "Student");
        assert_eq!(root.count, 80);
        assert_eq!(root.depth(), 3, "root → dept → program");
        // Counts are consistent at every level.
        let dept_sum: usize = root.children.iter().map(|c| c.count).sum();
        assert_eq!(dept_sum, 80);
        for dept in &root.children {
            let prog_sum: usize = dept.children.iter().map(|c| c.count).sum();
            assert_eq!(prog_sum, dept.count);
            for prog in &dept.children {
                assert_eq!(prog.leaves.len(), prog.count);
            }
        }
    }

    #[test]
    fn max_leaves_caps_listing_not_count() {
        let d = generate(ThesisConfig::tiny(2)).unwrap();
        let spec = FolderSpec {
            relation: d.db.relation_id("Student").unwrap(),
            levels: vec![2],
            max_leaves: 3,
        };
        let root = evaluate(&d.db, &spec).unwrap();
        for dept in &root.children {
            assert!(dept.leaves.len() <= 3);
            assert!(dept.count >= dept.leaves.len());
        }
    }

    #[test]
    fn zero_levels_gives_flat_listing() {
        let d = generate(ThesisConfig::tiny(3)).unwrap();
        let spec = FolderSpec {
            relation: d.db.relation_id("Department").unwrap(),
            levels: vec![],
            max_leaves: 0,
        };
        let root = evaluate(&d.db, &spec).unwrap();
        assert_eq!(root.depth(), 1);
        assert_eq!(root.leaves.len(), root.count);
        assert_eq!(root.folder_count(), 1);
    }

    #[test]
    fn bad_level_errors() {
        let d = generate(ThesisConfig::tiny(4)).unwrap();
        let spec = FolderSpec {
            relation: d.db.relation_id("Student").unwrap(),
            levels: vec![42],
            max_leaves: 0,
        };
        assert!(evaluate(&d.db, &spec).is_err());
    }
}
