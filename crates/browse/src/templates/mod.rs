//! The four predefined display templates of §4.
//!
//! "BANKS templates provide several predefined ways of displaying any
//! data. Template instances are customized, stored in the database, and
//! given a hyperlink name": cross-tabs, group-by hierarchies, folder
//! views, and graphical charts. Templates can be *composed*: a chart
//! point or folder can link to another template instead of raw tuples.

pub mod chart;
pub mod crosstab;
pub mod folder;
pub mod groupby;

pub use chart::{ChartData, ChartKind, ChartPoint, ChartSpec};
pub use crosstab::{Crosstab, CrosstabSpec};
pub use folder::{FolderNode, FolderSpec};
pub use groupby::{GroupByLevel, GroupBySpec};

use crate::hyperlink::Hyperlink;
use banks_storage::{Database, StorageResult};
use std::collections::HashMap;

/// How a numeric value is derived from a set of tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// Number of tuples.
    Count,
    /// Sum of a numeric column.
    Sum(u32),
}

impl Measure {
    /// Evaluate the measure over the values of `column` (already filtered
    /// tuples' values are streamed in by the caller).
    pub(crate) fn add(&self, acc: &mut f64, values: &[banks_storage::Value]) {
        match self {
            Measure::Count => *acc += 1.0,
            Measure::Sum(col) => {
                if let Some(v) = values[*col as usize].as_f64() {
                    *acc += v;
                }
            }
        }
    }
}

/// A named, stored template instance (§4: "stored in the database, and
/// given a hyperlink name, which is used to access the template").
#[derive(Debug, Clone)]
pub enum TemplateSpec {
    /// Cross-tab template.
    Crosstab(CrosstabSpec),
    /// Hierarchical group-by template.
    GroupBy(GroupBySpec),
    /// Folder-view template.
    Folder(FolderSpec),
    /// Chart template.
    Chart(ChartSpec),
}

/// A registry of named template instances, the target of
/// [`Hyperlink::Template`] links.
#[derive(Debug, Clone, Default)]
pub struct TemplateRegistry {
    templates: HashMap<String, TemplateSpec>,
}

impl TemplateRegistry {
    /// Empty registry.
    pub fn new() -> TemplateRegistry {
        TemplateRegistry::default()
    }

    /// Store a template under a hyperlink name.
    pub fn register(&mut self, name: impl Into<String>, spec: TemplateSpec) {
        self.templates.insert(name.into(), spec);
    }

    /// Fetch a template by name.
    pub fn get(&self, name: &str) -> Option<&TemplateSpec> {
        self.templates.get(name)
    }

    /// Resolve a [`Hyperlink::Template`] link.
    pub fn resolve(&self, link: &Hyperlink) -> Option<&TemplateSpec> {
        match link {
            Hyperlink::Template(name) => self.get(name),
            _ => None,
        }
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.templates.keys().map(|s| s.as_str()).collect();
        names.sort();
        names
    }
}

/// Evaluate any template to a displayable result.
#[derive(Debug, Clone)]
pub enum TemplateOutput {
    /// Cross-tab grid.
    Crosstab(Crosstab),
    /// One level of a group-by hierarchy.
    GroupBy(GroupByLevel),
    /// Folder tree.
    Folder(FolderNode),
    /// Chart data.
    Chart(ChartData),
}

/// Evaluate a template at its root (group-by templates start at the top
/// level; use [`groupby::drill`] to descend).
pub fn evaluate(db: &Database, spec: &TemplateSpec) -> StorageResult<TemplateOutput> {
    Ok(match spec {
        TemplateSpec::Crosstab(s) => TemplateOutput::Crosstab(crosstab::evaluate(db, s)?),
        TemplateSpec::GroupBy(s) => TemplateOutput::GroupBy(groupby::drill(db, s, &[])?),
        TemplateSpec::Folder(s) => TemplateOutput::Folder(folder::evaluate(db, s)?),
        TemplateSpec::Chart(s) => TemplateOutput::Chart(chart::evaluate(db, s)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_datagen::thesis::{generate, ThesisConfig};
    use banks_storage::RelationId;

    #[test]
    fn registry_roundtrip_and_link_resolution() {
        let mut reg = TemplateRegistry::new();
        reg.register(
            "students-by-dept",
            TemplateSpec::GroupBy(GroupBySpec {
                relation: RelationId(3),
                levels: vec![2],
            }),
        );
        assert_eq!(reg.names(), vec!["students-by-dept"]);
        let link = Hyperlink::Template("students-by-dept".into());
        assert!(reg.resolve(&link).is_some());
        assert!(reg.get("missing").is_none());
        assert!(reg.resolve(&Hyperlink::Relation(RelationId(0))).is_none());
    }

    #[test]
    fn evaluate_dispatches_all_variants() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let student = d.db.relation_id("Student").unwrap();
        let specs = [
            TemplateSpec::Crosstab(CrosstabSpec {
                relation: student,
                row_attr: 2,
                col_attr: 3,
                measure: Measure::Count,
            }),
            TemplateSpec::GroupBy(GroupBySpec {
                relation: student,
                levels: vec![2, 3],
            }),
            TemplateSpec::Folder(FolderSpec {
                relation: student,
                levels: vec![2],
                max_leaves: 5,
            }),
            TemplateSpec::Chart(ChartSpec {
                relation: student,
                label_attr: 2,
                measure: Measure::Count,
                kind: ChartKind::Bar,
            }),
        ];
        for spec in &specs {
            evaluate(&d.db, spec).unwrap();
        }
    }
}
