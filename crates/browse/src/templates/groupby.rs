//! Hierarchical group-by template (§4).
//!
//! "The group by template provides for hierarchical view of data, by
//! specifying a sequence of grouping attributes. For example, grouping a
//! student relation by department and program attributes initially
//! displays all departments; clicking on a department shows all programs
//! in the department, and clicking on a program then shows all students in
//! that program in the selected department."

use banks_storage::{Database, RelationId, Rid, StorageError, StorageResult, Value};

/// Specification: a relation and an ordered list of grouping attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupBySpec {
    /// Relation to group.
    pub relation: RelationId,
    /// Grouping attributes, outermost first.
    pub levels: Vec<u32>,
}

/// One level of the drilled hierarchy: either further group values or, at
/// the deepest level, the matching tuples.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupByLevel {
    /// Intermediate level: distinct values of the next grouping attribute
    /// (with tuple counts), to click on.
    Groups {
        /// Attribute whose values are listed.
        attribute: u32,
        /// `(value, count)` pairs, sorted by value.
        entries: Vec<(Value, usize)>,
    },
    /// Deepest level: the tuples selected by the full drill path.
    Tuples(Vec<Rid>),
}

/// Drill into the hierarchy along `path` (values chosen for the first
/// `path.len()` levels).
pub fn drill(db: &Database, spec: &GroupBySpec, path: &[Value]) -> StorageResult<GroupByLevel> {
    let table = db.table(spec.relation);
    let arity = table.schema().arity();
    for &level in &spec.levels {
        if level as usize >= arity {
            return Err(StorageError::UnknownColumn {
                relation: table.schema().name.clone(),
                column: format!("#{level}"),
            });
        }
    }
    if path.len() > spec.levels.len() {
        return Err(StorageError::InvalidSchema(format!(
            "drill path has {} entries but the template has {} levels",
            path.len(),
            spec.levels.len()
        )));
    }

    let matches = table.scan().filter(|(_, tuple)| {
        path.iter()
            .zip(&spec.levels)
            .all(|(v, &level)| &tuple.values()[level as usize] == v)
    });

    if path.len() == spec.levels.len() {
        return Ok(GroupByLevel::Tuples(matches.map(|(rid, _)| rid).collect()));
    }

    let attribute = spec.levels[path.len()];
    let mut entries: Vec<(Value, usize)> = Vec::new();
    for (_, tuple) in matches {
        let v = tuple.values()[attribute as usize].clone();
        match entries.iter_mut().find(|(g, _)| *g == v) {
            Some((_, count)) => *count += 1,
            None => entries.push((v, 1)),
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(GroupByLevel::Groups { attribute, entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_datagen::thesis::{generate, ThesisConfig};

    fn spec(db: &Database) -> GroupBySpec {
        GroupBySpec {
            relation: db.relation_id("Student").unwrap(),
            levels: vec![2, 3], // DeptId then ProgramId
        }
    }

    #[test]
    fn top_level_lists_departments() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let level = drill(&d.db, &spec(&d.db), &[]).unwrap();
        let GroupByLevel::Groups { attribute, entries } = level else {
            panic!("expected groups");
        };
        assert_eq!(attribute, 2);
        let total: usize = entries.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 80);
    }

    #[test]
    fn drill_to_programs_then_tuples() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let s = spec(&d.db);
        let cse = Value::text(&d.planted.cse_dept);
        let level = drill(&d.db, &s, std::slice::from_ref(&cse)).unwrap();
        let GroupByLevel::Groups { attribute, entries } = level else {
            panic!("expected groups");
        };
        assert_eq!(attribute, 3);
        assert!(!entries.is_empty());
        let (program, count) = entries[0].clone();
        let leaf = drill(&d.db, &s, &[cse, program]).unwrap();
        let GroupByLevel::Tuples(rids) = leaf else {
            panic!("expected tuples");
        };
        assert_eq!(rids.len(), count);
        // Every returned tuple satisfies the drill path.
        for rid in rids {
            let t = d.db.tuple(rid).unwrap();
            assert_eq!(t.values()[2], Value::text(&d.planted.cse_dept));
        }
    }

    #[test]
    fn too_deep_path_errors() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let s = spec(&d.db);
        let err = drill(
            &d.db,
            &s,
            &[Value::text("a"), Value::text("b"), Value::text("c")],
        );
        assert!(err.is_err());
    }

    #[test]
    fn unknown_value_gives_empty_level() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let s = spec(&d.db);
        let level = drill(&d.db, &s, &[Value::text("NOSUCHDEPT")]).unwrap();
        let GroupByLevel::Groups { entries, .. } = level else {
            panic!()
        };
        assert!(entries.is_empty());
    }
}
