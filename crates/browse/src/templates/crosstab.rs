//! Cross-tab template ("similar to OLAP cross-tabs", §4).

use crate::templates::Measure;
use banks_storage::{Database, RelationId, StorageError, StorageResult, Value};

/// Specification: one relation, a row attribute, a column attribute, and a
/// measure aggregated in each cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CrosstabSpec {
    /// Relation to aggregate.
    pub relation: RelationId,
    /// Attribute whose values become rows.
    pub row_attr: u32,
    /// Attribute whose values become columns.
    pub col_attr: u32,
    /// Cell aggregate.
    pub measure: Measure,
}

/// An evaluated cross-tab.
#[derive(Debug, Clone, PartialEq)]
pub struct Crosstab {
    /// Distinct row-attribute values, sorted.
    pub row_labels: Vec<Value>,
    /// Distinct column-attribute values, sorted.
    pub col_labels: Vec<Value>,
    /// `cells[r][c]` = measure over tuples with row value `r`, col value `c`.
    pub cells: Vec<Vec<f64>>,
    /// Per-row totals.
    pub row_totals: Vec<f64>,
    /// Per-column totals.
    pub col_totals: Vec<f64>,
    /// Grand total.
    pub total: f64,
}

/// Evaluate a cross-tab.
pub fn evaluate(db: &Database, spec: &CrosstabSpec) -> StorageResult<Crosstab> {
    let table = db.table(spec.relation);
    let arity = table.schema().arity();
    for attr in [spec.row_attr, spec.col_attr] {
        if attr as usize >= arity {
            return Err(StorageError::UnknownColumn {
                relation: table.schema().name.clone(),
                column: format!("#{attr}"),
            });
        }
    }
    let mut row_labels: Vec<Value> = Vec::new();
    let mut col_labels: Vec<Value> = Vec::new();
    for (_, tuple) in table.scan() {
        let r = &tuple.values()[spec.row_attr as usize];
        let c = &tuple.values()[spec.col_attr as usize];
        if !row_labels.contains(r) {
            row_labels.push(r.clone());
        }
        if !col_labels.contains(c) {
            col_labels.push(c.clone());
        }
    }
    row_labels.sort();
    col_labels.sort();

    let mut cells = vec![vec![0f64; col_labels.len()]; row_labels.len()];
    for (_, tuple) in table.scan() {
        let r = row_labels
            .iter()
            .position(|v| v == &tuple.values()[spec.row_attr as usize])
            .expect("collected above");
        let c = col_labels
            .iter()
            .position(|v| v == &tuple.values()[spec.col_attr as usize])
            .expect("collected above");
        spec.measure.add(&mut cells[r][c], tuple.values());
    }
    let row_totals: Vec<f64> = cells.iter().map(|row| row.iter().sum()).collect();
    let col_totals: Vec<f64> = (0..col_labels.len())
        .map(|c| cells.iter().map(|row| row[c]).sum())
        .collect();
    let total = row_totals.iter().sum();
    Ok(Crosstab {
        row_labels,
        col_labels,
        cells,
        row_totals,
        col_totals,
        total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_datagen::thesis::{generate, ThesisConfig};

    #[test]
    fn counts_partition_the_relation() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let students = d.db.relation_id("Student").unwrap();
        let ct = evaluate(
            &d.db,
            &CrosstabSpec {
                relation: students,
                row_attr: 2, // DeptId
                col_attr: 3, // ProgramId
                measure: Measure::Count,
            },
        )
        .unwrap();
        assert_eq!(ct.total, 80.0);
        let sum_rows: f64 = ct.row_totals.iter().sum();
        let sum_cols: f64 = ct.col_totals.iter().sum();
        assert_eq!(sum_rows, 80.0);
        assert_eq!(sum_cols, 80.0);
        assert_eq!(ct.cells.len(), ct.row_labels.len());
        assert_eq!(ct.cells[0].len(), ct.col_labels.len());
    }

    #[test]
    fn sum_measure_aggregates_numeric_column() {
        let d = banks_datagen::tpcd::generate(banks_datagen::tpcd::TpcdConfig::tiny(1)).unwrap();
        let lineitem = d.db.relation_id("LineItem").unwrap();
        // Rows by part, columns by supplier, summing quantity.
        let ct = evaluate(
            &d.db,
            &CrosstabSpec {
                relation: lineitem,
                row_attr: 2,
                col_attr: 3,
                measure: Measure::Sum(4),
            },
        )
        .unwrap();
        assert!(ct.total > 0.0);
        // Grand total equals the sum over all line items.
        let expected: f64 =
            d.db.relation("LineItem")
                .unwrap()
                .scan()
                .map(|(_, t)| t.values()[4].as_f64().unwrap())
                .sum();
        assert_eq!(ct.total, expected);
    }

    #[test]
    fn bad_attr_errors() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let students = d.db.relation_id("Student").unwrap();
        let err = evaluate(
            &d.db,
            &CrosstabSpec {
                relation: students,
                row_attr: 99,
                col_attr: 0,
                measure: Measure::Count,
            },
        );
        assert!(err.is_err());
    }
}
