//! Graphical interface template (§4).
//!
//! "The graphical interface template permits information to be displayed
//! in bar chart, line chart or pie chart format. Hyperlinks are provided
//! on the graphical data via HTML image maps; clicking on a bar of a bar
//! chart, or a slice of a pie chart shows tuples with the associated
//! value." The library produces the chart *data* — labelled, measured
//! points each carrying the drill-down hyperlink; the HTML renderer turns
//! bar charts into div-bars with links (the image-map analogue).

use crate::hyperlink::Hyperlink;
use crate::templates::Measure;
use banks_storage::{Database, RelationId, StorageError, StorageResult};

/// Chart style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChartKind {
    /// Bar chart.
    Bar,
    /// Line chart.
    Line,
    /// Pie chart.
    Pie,
}

/// Specification: label attribute + measure over one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartSpec {
    /// Relation charted.
    pub relation: RelationId,
    /// Attribute providing point labels (one point per distinct value).
    pub label_attr: u32,
    /// Measured quantity per label.
    pub measure: Measure,
    /// Presentation style.
    pub kind: ChartKind,
}

/// One chart point: a label, its measure, and the image-map hyperlink.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartPoint {
    /// Display label.
    pub label: String,
    /// Measured value.
    pub value: f64,
    /// Fraction of the total (pie-slice angle / bar share).
    pub fraction: f64,
    /// Drill-down link to the tuples behind the point.
    pub link: Hyperlink,
}

/// Evaluated chart.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartData {
    /// Presentation style requested.
    pub kind: ChartKind,
    /// Chart title (relation + attribute).
    pub title: String,
    /// The points, sorted by label.
    pub points: Vec<ChartPoint>,
    /// Sum of all point values.
    pub total: f64,
}

/// Evaluate a chart template.
pub fn evaluate(db: &Database, spec: &ChartSpec) -> StorageResult<ChartData> {
    let table = db.table(spec.relation);
    let schema = table.schema();
    if spec.label_attr as usize >= schema.arity() {
        return Err(StorageError::UnknownColumn {
            relation: schema.name.clone(),
            column: format!("#{}", spec.label_attr),
        });
    }
    let mut groups: Vec<(banks_storage::Value, f64)> = Vec::new();
    for (_, tuple) in table.scan() {
        let label = tuple.values()[spec.label_attr as usize].clone();
        match groups.iter_mut().find(|(g, _)| *g == label) {
            Some((_, acc)) => spec.measure.add(acc, tuple.values()),
            None => {
                let mut acc = 0.0;
                spec.measure.add(&mut acc, tuple.values());
                groups.push((label, acc));
            }
        }
    }
    groups.sort_by(|a, b| a.0.cmp(&b.0));
    let total: f64 = groups.iter().map(|(_, v)| v).sum();
    let points = groups
        .into_iter()
        .map(|(value, measured)| ChartPoint {
            label: value.to_string(),
            fraction: if total > 0.0 { measured / total } else { 0.0 },
            link: Hyperlink::GroupValue {
                relation: spec.relation,
                column: spec.label_attr,
                value,
            },
            value: measured,
        })
        .collect();
    Ok(ChartData {
        kind: spec.kind,
        title: format!(
            "{} by {}",
            schema.name, schema.columns[spec.label_attr as usize].name
        ),
        points,
        total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use banks_datagen::thesis::{generate, ThesisConfig};

    #[test]
    fn bar_chart_counts() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let chart = evaluate(
            &d.db,
            &ChartSpec {
                relation: d.db.relation_id("Student").unwrap(),
                label_attr: 2,
                measure: Measure::Count,
                kind: ChartKind::Bar,
            },
        )
        .unwrap();
        assert_eq!(chart.total, 80.0);
        assert_eq!(chart.title, "Student by DeptId");
        let frac_sum: f64 = chart.points.iter().map(|p| p.fraction).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
        for p in &chart.points {
            assert!(matches!(p.link, Hyperlink::GroupValue { .. }));
        }
    }

    #[test]
    fn pie_chart_same_data_different_kind() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        let spec = ChartSpec {
            relation: d.db.relation_id("Student").unwrap(),
            label_attr: 3,
            measure: Measure::Count,
            kind: ChartKind::Pie,
        };
        let chart = evaluate(&d.db, &spec).unwrap();
        assert_eq!(chart.kind, ChartKind::Pie);
        assert!(chart.points.len() >= 2);
    }

    #[test]
    fn empty_relation_zero_total() {
        let mut db = banks_storage::Database::new("x");
        db.create_relation(
            banks_storage::RelationSchema::builder("T")
                .column("A", banks_storage::ColumnType::Text)
                .primary_key(&["A"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let chart = evaluate(
            &db,
            &ChartSpec {
                relation: db.relation_id("T").unwrap(),
                label_attr: 0,
                measure: Measure::Count,
                kind: ChartKind::Line,
            },
        )
        .unwrap();
        assert_eq!(chart.total, 0.0);
        assert!(chart.points.is_empty());
    }

    #[test]
    fn bad_attr_errors() {
        let d = generate(ThesisConfig::tiny(1)).unwrap();
        assert!(evaluate(
            &d.db,
            &ChartSpec {
                relation: d.db.relation_id("Student").unwrap(),
                label_attr: 77,
                measure: Measure::Count,
                kind: ChartKind::Bar,
            },
        )
        .is_err());
    }
}
